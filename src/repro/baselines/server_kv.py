"""Shared :class:`KVClient` adapter base for the server-hosted baselines.

The server chain and primary-backup clients expose the same
callback-based ``*_async`` surface and structurally identical result
objects (``ok`` / ``value`` / ``version`` / ``cas_failed`` /
``not_found`` / ``latency``), so one adapter maps both onto the unified
futures protocol.  Subclasses only name their backend; the not_found
heuristic and error mapping live here exactly once.
"""

from __future__ import annotations

from repro.core.client import KVClient, KVFuture, KVResult, _raw_key


class ServerBaselineKVClient(KVClient):
    """The unified protocol over a ``*_async``-style baseline client.

    ``insert`` maps to a write (both baselines create keys on first
    write); reads of keys the servers never stored surface as
    ``not_found`` (the wire protocol reports an empty value at
    version 0).
    """

    backend = "server"

    def __init__(self, client) -> None:
        self.client = client
        self.sim = client.sim

    def _wrap(self, op: str, key, submit) -> KVFuture:
        future = KVFuture(self.sim, op=op, key=_raw_key(key))

        def on_done(result) -> None:
            not_found = result.not_found or (
                op == "read" and result.version == 0 and not result.value)
            ok = result.ok and not not_found
            future.resolve(KVResult(
                ok=ok, op=op, key=_raw_key(key), value=result.value,
                not_found=not_found, cas_failed=result.cas_failed,
                error=None if ok else ("cas_failed" if result.cas_failed
                                       else "key_not_found" if not_found
                                       else "failed"),
                latency=result.latency, backend=self.backend, raw=result))

        submit(on_done)
        return future

    def read(self, key) -> KVFuture:
        return self._wrap("read", key,
                          lambda cb: self.client.read_async(_key_str(key), cb))

    def write(self, key, value) -> KVFuture:
        return self._wrap("write", key,
                          lambda cb: self.client.write_async(_key_str(key),
                                                             _value_bytes(value), cb))

    def cas(self, key, expected, new_value) -> KVFuture:
        return self._wrap("cas", key,
                          lambda cb: self.client.cas_async(_key_str(key),
                                                           _value_bytes(expected),
                                                           _value_bytes(new_value), cb))

    def delete(self, key) -> KVFuture:
        return self._wrap("delete", key,
                          lambda cb: self.client.delete_async(_key_str(key), cb))

    def insert(self, key, value=b"") -> KVFuture:
        return self._wrap("insert", key,
                          lambda cb: self.client.write_async(_key_str(key),
                                                             _value_bytes(value), cb))


def _key_str(key) -> str:
    return key.decode("utf-8", "replace") if isinstance(key, bytes) else str(key)


def _value_bytes(value) -> bytes:
    if isinstance(value, bytes):
        return value
    return str(value).encode("utf-8")
