"""Server-based chain replication (the design NetChain moves into switches).

Section 2.2 motivates chain replication over classical primary-backup: in a
chain of ``n`` nodes a write costs ``n+1`` messages and needs no per-query
bookkeeping at the primary, which is what makes it implementable in a
switch ASIC.  This module implements the original, server-hosted protocol
(Van Renesse & Schneider, FAWN-KV style) on simulated hosts over the
reliable transport, both as a functional baseline and for the
message-count/latency ablation against NetChain and primary-backup.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.baselines.server_kv import ServerBaselineKVClient
from repro.netsim.host import Host
from repro.netsim.tcp import TcpConfig, TcpConnection, TcpEndpoint

_request_ids = itertools.count(1)
_client_ids = itertools.count(1)


@dataclass
class ChainResult:
    """Outcome of one operation against the server chain."""

    ok: bool
    op: str
    key: str
    value: bytes = b""
    version: int = 0
    latency: float = 0.0
    #: A compare-and-swap lost (expected value did not match at the head).
    cas_failed: bool = False
    #: A delete targeted a key the chain never stored.
    not_found: bool = False


class ServerChainReplica:
    """One server in the chain."""

    def __init__(self, index: int, host: Host, message_bytes: int = 150) -> None:
        self.index = index
        self.host = host
        self.sim = host.sim
        self.message_bytes = message_bytes
        self.store: Dict[str, Tuple[bytes, int]] = {}
        self.next_endpoint: Optional[TcpEndpoint] = None
        self.client_endpoints: Dict[str, TcpEndpoint] = {}
        self.messages_processed = 0

    def connect_next(self, endpoint: TcpEndpoint) -> None:
        """Attach the transport to the chain successor."""
        self.next_endpoint = endpoint

    def accept_client(self, client_name: str, endpoint: TcpEndpoint) -> None:
        """Attach a client connection."""
        self.client_endpoints[client_name] = endpoint
        endpoint.on_message = self.handle_message

    def handle_message(self, message: Dict[str, Any]) -> None:
        """Process a read, a (possibly forwarded) write/cas, or a delete."""
        self.messages_processed += 1
        op = message["op"]
        if op == "read":
            value, version = self.store.get(message["key"], (b"", 0))
            self._reply(message, value=value, version=version)
        elif op in ("write", "cas"):
            stored_value, stored_version = self.store.get(message["key"], (b"", 0))
            if op == "cas" and "version" not in message:
                # Head of the chain: evaluate the comparison once; an
                # accepted CAS propagates down the chain exactly like a
                # write (the resolved version travels with it).
                if stored_value != message.get("expected", b""):
                    self._reply(message, ok=False, cas_failed=True,
                                value=stored_value, version=stored_version)
                    return
            version = message.get("version", stored_version + 1)
            self.store[message["key"]] = (message["value"], version)
            if self.next_endpoint is not None:
                forwarded = dict(message)
                forwarded["version"] = version
                self.next_endpoint.send(forwarded, self.message_bytes)
            else:
                self._reply(message, value=message["value"], version=version)
        elif op == "delete":
            if "existed" not in message:
                message = dict(message)
                message["existed"] = message["key"] in self.store
            self.store.pop(message["key"], None)
            if self.next_endpoint is not None:
                self.next_endpoint.send(dict(message), self.message_bytes)
            else:
                self._reply(message, not_found=not message["existed"])

    def _reply(self, message: Dict[str, Any], **fields: Any) -> None:
        endpoint = self.client_endpoints.get(message["client"])
        if endpoint is None:
            return
        reply = {"kind": "reply", "request_id": message["request_id"], "ok": True,
                 "op": message["op"], "key": message["key"]}
        reply.update(fields)
        endpoint.send(reply, self.message_bytes)


class ServerChainClient:
    """A client of the server chain: writes go to the head, reads to the tail."""

    def __init__(self, host: Host, cluster: "ServerChainCluster") -> None:
        self.host = host
        self.sim = host.sim
        self.cluster = cluster
        # The name keys the per-client reply endpoints on the replicas, so
        # several clients on one host must not collide.
        self.name = f"chain-client-{host.name}-{next(_client_ids)}"
        self._pending: Dict[int, Dict[str, Any]] = {}
        self.completed = 0
        self.latencies: List[float] = []
        # One connection to the head (writes) and one to the tail (replies
        # and reads), as in the original protocol.
        self._head_endpoint = self._connect(cluster.head())
        self._tail_endpoint = self._connect(cluster.tail())

    def _connect(self, replica: ServerChainReplica) -> TcpEndpoint:
        conn = TcpConnection(self.host, replica.host, config=self.cluster.tcp_config)
        replica.accept_client(self.name, conn.endpoint(replica.host))
        endpoint = conn.endpoint(self.host)
        endpoint.on_message = self._on_reply
        return endpoint

    def read_async(self, key: str, callback: Optional[Callable[[ChainResult], None]] = None) -> int:
        return self._submit("read", key, b"", self._tail_endpoint, callback)

    def write_async(self, key: str, value: bytes,
                    callback: Optional[Callable[[ChainResult], None]] = None) -> int:
        return self._submit("write", key, value, self._head_endpoint, callback)

    def cas_async(self, key: str, expected: bytes, new_value: bytes,
                  callback: Optional[Callable[[ChainResult], None]] = None) -> int:
        return self._submit("cas", key, new_value, self._head_endpoint, callback,
                            expected=expected)

    def delete_async(self, key: str,
                     callback: Optional[Callable[[ChainResult], None]] = None) -> int:
        return self._submit("delete", key, b"", self._head_endpoint, callback)

    def read(self, key: str, deadline: float = 5.0) -> ChainResult:
        return self._sync(lambda cb: self.read_async(key, cb), deadline)

    def write(self, key: str, value: bytes, deadline: float = 5.0) -> ChainResult:
        return self._sync(lambda cb: self.write_async(key, value, cb), deadline)

    def cas(self, key: str, expected: bytes, new_value: bytes,
            deadline: float = 5.0) -> ChainResult:
        return self._sync(lambda cb: self.cas_async(key, expected, new_value, cb),
                          deadline)

    def delete(self, key: str, deadline: float = 5.0) -> ChainResult:
        return self._sync(lambda cb: self.delete_async(key, cb), deadline)

    def _submit(self, op: str, key: str, value: bytes, endpoint: TcpEndpoint,
                callback: Optional[Callable[[ChainResult], None]],
                **extra: Any) -> int:
        request_id = next(_request_ids)
        message = {"kind": "request", "request_id": request_id, "op": op, "key": key,
                   "value": value, "client": self.name}
        message.update(extra)
        self._pending[request_id] = {"callback": callback, "op": op, "key": key,
                                     "sent_at": self.sim.now}
        endpoint.send(message, self.cluster.message_bytes)
        return request_id

    def _sync(self, submit, deadline: float) -> ChainResult:
        box: List[ChainResult] = []
        submit(box.append)
        limit = self.sim.now + deadline
        while not box and self.sim.pending() and self.sim.now < limit:
            self.sim.run(until=min(limit, self.sim.now + 0.05))
        if not box:
            raise TimeoutError("no reply from the server chain")
        return box[0]

    def _on_reply(self, message: Dict[str, Any]) -> None:
        if message.get("kind") != "reply":
            return
        pending = self._pending.pop(message.get("request_id"), None)
        if pending is None:
            return
        latency = self.sim.now - pending["sent_at"]
        self.completed += 1
        self.latencies.append(latency)
        result = ChainResult(ok=message.get("ok", False), op=pending["op"],
                             key=pending["key"], value=message.get("value", b""),
                             version=message.get("version", 0), latency=latency,
                             cas_failed=message.get("cas_failed", False),
                             not_found=message.get("not_found", False))
        if pending["callback"] is not None:
            pending["callback"](result)


class ServerChainCluster:
    """A chain of replicas on servers, plus client factory."""

    def __init__(self, hosts: List[Host], tcp_config: Optional[TcpConfig] = None,
                 message_bytes: int = 150) -> None:
        if not hosts:
            raise ValueError("a chain needs at least one server")
        self.tcp_config = tcp_config or TcpConfig()
        self.message_bytes = message_bytes
        self.replicas = [ServerChainReplica(i, host, message_bytes)
                         for i, host in enumerate(hosts)]
        for left, right in zip(self.replicas, self.replicas[1:], strict=False):
            conn = TcpConnection(left.host, right.host, config=self.tcp_config)
            left.connect_next(conn.endpoint(left.host))
            right_endpoint = conn.endpoint(right.host)
            right_endpoint.on_message = right.handle_message

    def head(self) -> ServerChainReplica:
        return self.replicas[0]

    def tail(self) -> ServerChainReplica:
        return self.replicas[-1]

    def client(self, host: Host) -> ServerChainClient:
        """Create a client attached to this chain."""
        return ServerChainClient(host, self)

    def kv_client(self, host: Host) -> "ServerChainKVClient":
        """A client adapted to the unified :class:`KVClient` protocol."""
        return ServerChainKVClient(self.client(host))

    def preload(self, items: Dict[str, bytes]) -> None:
        """Bulk-load keys on every replica without simulating the writes."""
        for key, value in items.items():
            for replica in self.replicas:
                replica.store[key] = (value, 1)

    def messages_per_write(self) -> int:
        """Messages a write costs end to end: n forwards + 1 reply
        (Section 2.2: n+1 for chain replication)."""
        return len(self.replicas) + 1


class ServerChainKVClient(ServerBaselineKVClient):
    """The unified :class:`~repro.core.client.KVClient` protocol over a
    chain client (see :class:`ServerBaselineKVClient`)."""

    backend = "server-chain"
