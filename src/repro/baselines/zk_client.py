"""ZooKeeper client library and recipes (the role Apache Curator plays in
the paper's evaluation, Section 8).

A client opens one TCP connection to an ensemble server, issues requests
identified by an ``xid``, and receives responses and watch events.  The
module also provides the standard exclusive-lock recipe used by the
transaction benchmark: an ephemeral sequential znode under the lock's
directory; the holder is the lowest sequence number (Section 8.5 notes that
ZooKeeper locks are "implemented by ephemeral znodes and ... directly
provided by Apache Curator").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.baselines.zookeeper import ZooKeeperEnsemble, ZooKeeperServer
from repro.netsim.host import Host
from repro.netsim.tcp import TcpConnection


@dataclass
class ZkResult:
    """Outcome of one client operation."""

    ok: bool
    op: str
    path: Optional[str] = None
    data: bytes = b""
    version: int = 0
    children: List[str] = field(default_factory=list)
    exists: bool = False
    error: Optional[str] = None
    latency: float = 0.0


class ZooKeeperClient:
    """One client session connected to one ensemble server."""

    def __init__(self, host: Host, ensemble: ZooKeeperEnsemble,
                 server_id: Optional[int] = None) -> None:
        self.host = host
        self.sim = host.sim
        self.ensemble = ensemble
        if server_id is None:
            live = ensemble.live_servers()
            server_id = live[hash(host.name) % len(live)].server_id
        self.server: ZooKeeperServer = ensemble.servers[server_id]
        self.session_id = ensemble.allocate_session()
        self._conn = TcpConnection(host, self.server.host, config=ensemble.config.tcp)
        self._endpoint = self._conn.endpoint(host)
        self._endpoint.on_message = self._on_message
        self.server.accept_client(self.session_id, self._conn.endpoint(self.server.host))
        self._xids = itertools.count(1)
        self._pending: Dict[int, Dict[str, Any]] = {}
        self.watch_events: List[Dict[str, Any]] = []
        self.on_watch: Optional[Callable[[Dict[str, Any]], None]] = None
        self.completed = 0
        self.latencies: List[float] = []

    # ------------------------------------------------------------------ #
    # Asynchronous API.
    # ------------------------------------------------------------------ #

    def submit(self, op: str, callback: Optional[Callable[[ZkResult], None]] = None,
               **fields: Any) -> int:
        """Send a request; ``callback`` receives the :class:`ZkResult`."""
        xid = next(self._xids)
        request = {"kind": "request", "xid": xid, "op": op}
        request.update(fields)
        self._pending[xid] = {"callback": callback, "op": op, "sent_at": self.sim.now}
        self._endpoint.send(request, self.ensemble.config.message_bytes)
        return xid

    def get_async(self, path: str, callback=None, watch: bool = False) -> int:
        return self.submit("get", callback, path=path, watch=watch)

    def set_async(self, path: str, data, callback=None, version: int = -1) -> int:
        return self.submit("set", callback, path=path, data=_to_bytes(data), version=version)

    def create_async(self, path: str, data=b"", callback=None, ephemeral: bool = False,
                     sequential: bool = False) -> int:
        return self.submit("create", callback, path=path, data=_to_bytes(data),
                           ephemeral=ephemeral, sequential=sequential)

    def delete_async(self, path: str, callback=None, version: int = -1) -> int:
        return self.submit("delete", callback, path=path, version=version)

    def children_async(self, path: str, callback=None, watch: bool = False) -> int:
        return self.submit("children", callback, path=path, watch=watch)

    def exists_async(self, path: str, callback=None, watch: bool = False) -> int:
        return self.submit("exists", callback, path=path, watch=watch)

    # ------------------------------------------------------------------ #
    # Synchronous API (drives the simulator).
    # ------------------------------------------------------------------ #

    def _sync(self, submit: Callable[[Callable[[ZkResult], None]], int],
              deadline: float = 10.0) -> ZkResult:
        box: List[ZkResult] = []
        submit(box.append)
        limit = self.sim.now + deadline
        while not box and self.sim.pending() and self.sim.now < limit:
            self.sim.run(until=min(limit, self.sim.now + 0.05))
        if not box:
            raise TimeoutError("no response from the ZooKeeper ensemble")
        return box[0]

    def get(self, path: str, watch: bool = False, deadline: float = 10.0) -> ZkResult:
        return self._sync(lambda cb: self.get_async(path, cb, watch=watch), deadline)

    def set(self, path: str, data, version: int = -1, deadline: float = 10.0) -> ZkResult:
        return self._sync(lambda cb: self.set_async(path, data, cb, version=version), deadline)

    def create(self, path: str, data=b"", ephemeral: bool = False, sequential: bool = False,
               deadline: float = 10.0) -> ZkResult:
        return self._sync(lambda cb: self.create_async(path, data, cb, ephemeral=ephemeral,
                                                       sequential=sequential), deadline)

    def delete(self, path: str, version: int = -1, deadline: float = 10.0) -> ZkResult:
        return self._sync(lambda cb: self.delete_async(path, cb, version=version), deadline)

    def children(self, path: str, watch: bool = False, deadline: float = 10.0) -> ZkResult:
        return self._sync(lambda cb: self.children_async(path, cb, watch=watch), deadline)

    def exists(self, path: str, watch: bool = False, deadline: float = 10.0) -> ZkResult:
        return self._sync(lambda cb: self.exists_async(path, cb, watch=watch), deadline)

    def ensure_path(self, path: str, deadline: float = 10.0) -> None:
        """Create ``path`` and any missing ancestors (Curator's creatingParentsIfNeeded)."""
        parts = [p for p in path.split("/") if p]
        current = ""
        for part in parts:
            current = f"{current}/{part}"
            if not self.exists(current, deadline=deadline).exists:
                self.create(current, deadline=deadline)

    def close(self) -> None:
        """Close the session: the ensemble removes its ephemeral nodes."""
        self.submit("close")
        self.server.drop_client(self.session_id)

    # ------------------------------------------------------------------ #
    # Message handling.
    # ------------------------------------------------------------------ #

    def _on_message(self, message: Dict[str, Any]) -> None:
        kind = message.get("kind")
        if kind == "watch_event":
            self.watch_events.append(message)
            if self.on_watch is not None:
                self.on_watch(message)
            return
        if kind != "response":
            return
        pending = self._pending.pop(message.get("xid"), None)
        if pending is None:
            return
        latency = self.sim.now - pending["sent_at"]
        self.completed += 1
        self.latencies.append(latency)
        result = ZkResult(ok=message.get("ok", False), op=pending["op"],
                          path=message.get("path"), data=message.get("data", b""),
                          version=message.get("version", 0),
                          children=message.get("children", []),
                          exists=message.get("exists", False),
                          error=message.get("error"), latency=latency)
        callback = pending["callback"]
        if callback is not None:
            callback(result)


class ZkLock:
    """The standard ZooKeeper exclusive-lock recipe."""

    def __init__(self, client: ZooKeeperClient, lock_path: str) -> None:
        self.client = client
        self.lock_path = lock_path
        self.my_node: Optional[str] = None

    def _ensure_parent(self) -> None:
        if not self.client.exists(self.lock_path).exists:
            self.client.ensure_path(self.lock_path)

    def acquire(self, max_attempts: int = 200) -> bool:
        """Block (in simulated time) until the lock is held."""
        self._ensure_parent()
        result = self.client.create(f"{self.lock_path}/lock-", ephemeral=True,
                                    sequential=True)
        if not result.ok:
            return False
        self.my_node = result.path
        my_name = self.my_node.rsplit("/", 1)[1]
        for _ in range(max_attempts):
            children = sorted(self.client.children(self.lock_path).children)
            if not children or children[0] == my_name:
                return True
            # Wait politely for the predecessor to go away, then re-check.
            index = children.index(my_name) if my_name in children else 0
            predecessor = children[max(0, index - 1)]
            self.client.exists(f"{self.lock_path}/{predecessor}", watch=True)
            self.client.sim.run(until=self.client.sim.now + 1e-3)
        return False

    def try_acquire(self) -> bool:
        """Single attempt: acquire only if no other contender is queued."""
        self._ensure_parent()
        result = self.client.create(f"{self.lock_path}/lock-", ephemeral=True,
                                    sequential=True)
        if not result.ok:
            return False
        self.my_node = result.path
        my_name = self.my_node.rsplit("/", 1)[1]
        children = sorted(self.client.children(self.lock_path).children)
        if children and children[0] == my_name:
            return True
        self.release()
        return False

    def release(self) -> None:
        """Delete this contender's node."""
        if self.my_node is not None:
            self.client.delete(self.my_node)
            self.my_node = None


def _to_bytes(value) -> bytes:
    if isinstance(value, bytes):
        return value
    return str(value).encode("utf-8")
