"""ZooKeeper client library and recipes (the role Apache Curator plays in
the paper's evaluation, Section 8).

A client opens one TCP connection to an ensemble server, issues requests
identified by an ``xid``, and receives responses and watch events.  Every
request returns a :class:`repro.core.client.KVFuture`; the synchronous
methods are thin wrappers that drive the simulator through the future.  The
module also provides the standard exclusive-lock recipe used by the
transaction benchmark: an ephemeral sequential znode under the lock's
directory; the holder is the lowest sequence number (Section 8.5 notes that
ZooKeeper locks are "implemented by ephemeral znodes and ... directly
provided by Apache Curator").

:class:`ZooKeeperKVClient` adapts a session to the backend-agnostic
:class:`repro.core.client.KVClient` protocol (keys become znodes under a
path prefix; compare-and-swap is the standard read-then-conditional-set
recipe using znode versions), so coordination primitives, load generators
and the transaction benchmark run unmodified against the ensemble.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.baselines.data_tree import ERR_NO_NODE, ERR_VERSION_MISMATCH
from repro.baselines.zookeeper import ZooKeeperEnsemble, ZooKeeperServer
from repro.core.client import KVClient, KVFuture, KVResult, KVTimeout, _raw_key
from repro.netsim.host import Host
from repro.netsim.node import stable_name_seed
from repro.netsim.tcp import TcpConnection


@dataclass
class ZkResult:
    """Outcome of one client operation."""

    ok: bool
    op: str
    path: Optional[str] = None
    data: bytes = b""
    version: int = 0
    children: List[str] = field(default_factory=list)
    exists: bool = False
    error: Optional[str] = None
    latency: float = 0.0


class ZooKeeperClient:
    """One client session connected to one ensemble server."""

    def __init__(self, host: Host, ensemble: ZooKeeperEnsemble,
                 server_id: Optional[int] = None) -> None:
        self.host = host
        self.sim = host.sim
        self.ensemble = ensemble
        if server_id is None:
            live = ensemble.live_servers()
            server_id = live[stable_name_seed(host.name) % len(live)].server_id
        self.server: ZooKeeperServer = ensemble.servers[server_id]
        self.session_id = ensemble.allocate_session()
        self._conn = TcpConnection(host, self.server.host, config=ensemble.config.tcp)
        self._endpoint = self._conn.endpoint(host)
        self._endpoint.on_message = self._on_message
        self.server.accept_client(self.session_id, self._conn.endpoint(self.server.host))
        self._xids = itertools.count(1)
        self._pending: Dict[int, Dict[str, Any]] = {}
        self.watch_events: List[Dict[str, Any]] = []
        self.on_watch: Optional[Callable[[Dict[str, Any]], None]] = None
        self.completed = 0
        self.latencies: List[float] = []

    # ------------------------------------------------------------------ #
    # Asynchronous API.
    # ------------------------------------------------------------------ #

    def submit(self, op: str, callback: Optional[Callable[[ZkResult], None]] = None,
               **fields: Any) -> KVFuture:
        """Send a request; the returned future resolves with the
        :class:`ZkResult`.

        The ``callback`` argument is deprecated: chain the callable with
        ``.then()`` on the returned future instead (it receives the same
        :class:`ZkResult`).
        """
        if callback is not None:
            warnings.warn(
                f"the callback= argument of ZooKeeperClient.{op}_async/"
                f"submit is deprecated; chain the callable with .then() on "
                f"the returned KVFuture instead",
                DeprecationWarning, stacklevel=3)
        xid = next(self._xids)
        request = {"kind": "request", "xid": xid, "op": op}
        request.update(fields)
        future = KVFuture(self.sim, op=op)
        future.xid = xid
        self._pending[xid] = {"callback": callback, "op": op, "sent_at": self.sim.now,
                              "future": future}
        self._endpoint.send(request, self.ensemble.config.message_bytes)
        return future

    def get_async(self, path: str, callback=None, watch: bool = False) -> KVFuture:
        return self.submit("get", callback, path=path, watch=watch)

    def set_async(self, path: str, data, callback=None, version: int = -1) -> KVFuture:
        return self.submit("set", callback, path=path, data=_to_bytes(data), version=version)

    def create_async(self, path: str, data=b"", callback=None, ephemeral: bool = False,
                     sequential: bool = False) -> KVFuture:
        return self.submit("create", callback, path=path, data=_to_bytes(data),
                           ephemeral=ephemeral, sequential=sequential)

    def delete_async(self, path: str, callback=None, version: int = -1) -> KVFuture:
        return self.submit("delete", callback, path=path, version=version)

    def children_async(self, path: str, callback=None, watch: bool = False) -> KVFuture:
        return self.submit("children", callback, path=path, watch=watch)

    def exists_async(self, path: str, callback=None, watch: bool = False) -> KVFuture:
        return self.submit("exists", callback, path=path, watch=watch)

    # ------------------------------------------------------------------ #
    # Synchronous API (thin wrappers that drive the simulator).
    # ------------------------------------------------------------------ #

    def _sync(self, future: KVFuture, deadline: float = 10.0) -> ZkResult:
        try:
            return future.result(deadline)
        except KVTimeout:
            raise TimeoutError("no response from the ZooKeeper ensemble") from None

    def get(self, path: str, watch: bool = False, deadline: float = 10.0) -> ZkResult:
        return self._sync(self.get_async(path, watch=watch), deadline)

    def set(self, path: str, data, version: int = -1, deadline: float = 10.0) -> ZkResult:
        return self._sync(self.set_async(path, data, version=version), deadline)

    def create(self, path: str, data=b"", ephemeral: bool = False, sequential: bool = False,
               deadline: float = 10.0) -> ZkResult:
        return self._sync(self.create_async(path, data, ephemeral=ephemeral,
                                            sequential=sequential), deadline)

    def delete(self, path: str, version: int = -1, deadline: float = 10.0) -> ZkResult:
        return self._sync(self.delete_async(path, version=version), deadline)

    def children(self, path: str, watch: bool = False, deadline: float = 10.0) -> ZkResult:
        return self._sync(self.children_async(path, watch=watch), deadline)

    def exists(self, path: str, watch: bool = False, deadline: float = 10.0) -> ZkResult:
        return self._sync(self.exists_async(path, watch=watch), deadline)

    def ensure_path(self, path: str, deadline: float = 10.0) -> None:
        """Create ``path`` and any missing ancestors (Curator's creatingParentsIfNeeded)."""
        parts = [p for p in path.split("/") if p]
        current = ""
        for part in parts:
            current = f"{current}/{part}"
            if not self.exists(current, deadline=deadline).exists:
                self.create(current, deadline=deadline)

    def close(self) -> None:
        """Close the session: the ensemble removes its ephemeral nodes."""
        self.submit("close")
        self.server.drop_client(self.session_id)

    # ------------------------------------------------------------------ #
    # Message handling.
    # ------------------------------------------------------------------ #

    def _on_message(self, message: Dict[str, Any]) -> None:
        kind = message.get("kind")
        if kind == "watch_event":
            self.watch_events.append(message)
            if self.on_watch is not None:
                self.on_watch(message)
            return
        if kind != "response":
            return
        pending = self._pending.pop(message.get("xid"), None)
        if pending is None:
            return
        latency = self.sim.now - pending["sent_at"]
        self.completed += 1
        self.latencies.append(latency)
        result = ZkResult(ok=message.get("ok", False), op=pending["op"],
                          path=message.get("path"), data=message.get("data", b""),
                          version=message.get("version", 0),
                          children=message.get("children", []),
                          exists=message.get("exists", False),
                          error=message.get("error"), latency=latency)
        callback = pending["callback"]
        if callback is not None:
            callback(result)
        future = pending.get("future")
        if future is not None:
            future.resolve(result)


class ZooKeeperKVClient(KVClient):
    """The :class:`~repro.core.client.KVClient` protocol over one session.

    Keys map to znodes under ``prefix``.  ``insert`` is ``create`` (the
    analogue of NetChain's control-plane insert), ``write`` is an
    unconditional ``set``, and ``cas`` is the standard ZooKeeper recipe:
    read the znode, compare its data, and conditionally ``set`` against the
    observed version -- atomic because a concurrent update bumps the version
    and fails the conditional set.
    """

    backend = "zookeeper"

    def __init__(self, client: ZooKeeperClient, prefix: str = "/kv/") -> None:
        self.client = client
        self.sim = client.sim
        self.prefix = prefix if prefix.endswith("/") else prefix + "/"
        #: Parent paths whose ancestor chain has already been created.
        self._ready_parents: set = set()

    def _path(self, key) -> str:
        name = key.decode("utf-8", "replace") if isinstance(key, bytes) else str(key)
        return f"{self.prefix}{name}"

    def _to_kv(self, result: ZkResult, op: str, key, started: float) -> KVResult:
        error = result.error
        return KVResult(ok=result.ok, op=op, key=_raw_key(key),
                        value=result.data or b"",
                        not_found=bool(error and ERR_NO_NODE in error),
                        cas_failed=bool(error and ERR_VERSION_MISMATCH in error),
                        error=None if result.ok else (error or "failed"),
                        latency=self.sim.now - started, backend=self.backend, raw=result)

    # -- the five protocol operations ------------------------------------ #

    def read(self, key) -> KVFuture:
        started = self.sim.now
        future = KVFuture(self.sim, op="read", key=_raw_key(key))
        self.client.get_async(self._path(key)).then(
            lambda r: future.resolve(self._to_kv(r, "read", key, started)))
        return future

    def write(self, key, value) -> KVFuture:
        started = self.sim.now
        future = KVFuture(self.sim, op="write", key=_raw_key(key))
        self.client.set_async(self._path(key), value).then(
            lambda r: future.resolve(self._to_kv(r, "write", key, started)))
        return future

    def cas(self, key, expected, new_value) -> KVFuture:
        started = self.sim.now
        future = KVFuture(self.sim, op="cas", key=_raw_key(key))
        path = self._path(key)
        expected = _to_bytes(expected) if expected else b""

        def on_get(get_result: ZkResult) -> None:
            if not get_result.ok:
                future.resolve(self._to_kv(get_result, "cas", key, started))
                return
            if (get_result.data or b"") != expected:
                future.resolve(KVResult(ok=False, op="cas", key=_raw_key(key),
                                        value=get_result.data or b"", cas_failed=True,
                                        error="cas_failed",
                                        latency=self.sim.now - started,
                                        backend=self.backend, raw=get_result))
                return
            self.client.set_async(path, new_value, version=get_result.version).then(
                lambda r: future.resolve(self._to_kv(r, "cas", key, started)))

        self.client.get_async(path).then(on_get)
        return future

    def delete(self, key) -> KVFuture:
        started = self.sim.now
        future = KVFuture(self.sim, op="delete", key=_raw_key(key))
        self.client.delete_async(self._path(key)).then(
            lambda r: future.resolve(self._to_kv(r, "delete", key, started)))
        return future

    def insert(self, key, value=b"") -> KVFuture:
        started = self.sim.now
        future = KVFuture(self.sim, op="insert", key=_raw_key(key))
        path = self._path(key)
        parent = path.rsplit("/", 1)[0]

        def do_create(_result=None) -> None:
            self.client.create_async(path, value).then(
                lambda r: future.resolve(self._to_kv(r, "insert", key, started)))

        if parent in self._ready_parents:
            do_create()
        else:
            def mark_and_create() -> None:
                self._ready_parents.add(parent)
                do_create()

            self._ensure_ancestors(path, done=mark_and_create)
        return future

    # -- ancestors of the key namespace ---------------------------------- #

    def _ensure_ancestors(self, path: str, done: Callable[[], None]) -> None:
        """Create the parent chain of ``path`` (ignoring already-exists)."""
        parts = [p for p in path.split("/") if p][:-1]
        ancestors = []
        current = ""
        for part in parts:
            current = f"{current}/{part}"
            ancestors.append(current)

        def create_next(index: int) -> None:
            if index >= len(ancestors):
                done()
                return
            self.client.create_async(ancestors[index]).then(
                lambda _r: create_next(index + 1))

        create_next(0)


class ZkLock:
    """The standard ZooKeeper exclusive-lock recipe."""

    def __init__(self, client: ZooKeeperClient, lock_path: str) -> None:
        self.client = client
        self.lock_path = lock_path
        self.my_node: Optional[str] = None

    def _ensure_parent(self) -> None:
        if not self.client.exists(self.lock_path).exists:
            self.client.ensure_path(self.lock_path)

    def acquire(self, max_attempts: int = 200) -> bool:
        """Block (in simulated time) until the lock is held."""
        self._ensure_parent()
        result = self.client.create(f"{self.lock_path}/lock-", ephemeral=True,
                                    sequential=True)
        if not result.ok:
            return False
        self.my_node = result.path
        my_name = self.my_node.rsplit("/", 1)[1]
        for _ in range(max_attempts):
            children = sorted(self.client.children(self.lock_path).children)
            if not children or children[0] == my_name:
                return True
            # Wait politely for the predecessor to go away, then re-check.
            index = children.index(my_name) if my_name in children else 0
            predecessor = children[max(0, index - 1)]
            self.client.exists(f"{self.lock_path}/{predecessor}", watch=True)
            self.client.sim.run(until=self.client.sim.now + 1e-3)
        return False

    def try_acquire(self) -> bool:
        """Single attempt: acquire only if no other contender is queued."""
        self._ensure_parent()
        result = self.client.create(f"{self.lock_path}/lock-", ephemeral=True,
                                    sequential=True)
        if not result.ok:
            return False
        self.my_node = result.path
        my_name = self.my_node.rsplit("/", 1)[1]
        children = sorted(self.client.children(self.lock_path).children)
        if children and children[0] == my_name:
            return True
        self.release()
        return False

    def release(self) -> None:
        """Delete this contender's node."""
        if self.my_node is not None:
            self.client.delete(self.my_node)
            self.my_node = None


def _to_bytes(value) -> bytes:
    if isinstance(value, bytes):
        return value
    return str(value).encode("utf-8")
