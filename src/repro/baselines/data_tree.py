"""The ZooKeeper data model: a tree of znodes.

This is the storage half of the ZooKeeper baseline (Section 8's comparison
system): hierarchical paths, per-node data and version, ephemeral nodes
owned by a session, sequential nodes, and one-shot watches.  It is a plain
in-memory structure; the replication and ordering of updates is provided by
the ZAB layer in :mod:`repro.baselines.zookeeper`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple


#: Stable error-message prefixes; clients classify failures by these, so
#: keep them in sync with the ``raise`` sites below.
ERR_NO_NODE = "no such znode"
ERR_VERSION_MISMATCH = "version mismatch"


class ZnodeError(Exception):
    """Raised for invalid znode operations (missing node, bad version, ...)."""


@dataclass
class Znode:
    """One node in the tree."""

    path: str
    data: bytes = b""
    version: int = 0
    ephemeral_owner: Optional[int] = None
    sequential_counter: int = 0
    children: Set[str] = field(default_factory=set)

    def is_ephemeral(self) -> bool:
        return self.ephemeral_owner is not None


def parent_path(path: str) -> str:
    """Parent of a path; the parent of "/a" is "/"."""
    if path == "/":
        return "/"
    parent = path.rsplit("/", 1)[0]
    return parent or "/"


def validate_path(path: str) -> None:
    """Reject malformed paths."""
    if not path.startswith("/"):
        raise ZnodeError(f"path must be absolute: {path!r}")
    if path != "/" and path.endswith("/"):
        raise ZnodeError(f"path must not end with '/': {path!r}")
    if "//" in path:
        raise ZnodeError(f"path must not contain empty components: {path!r}")


class DataTree:
    """The znode tree plus watch bookkeeping."""

    def __init__(self) -> None:
        self.nodes: Dict[str, Znode] = {"/": Znode(path="/")}
        #: path -> callbacks fired once when the node's data changes/deletes.
        self._data_watches: Dict[str, List[Callable[[str, str], None]]] = {}
        #: path -> callbacks fired once when the node's children change.
        self._child_watches: Dict[str, List[Callable[[str, str], None]]] = {}

    # ------------------------------------------------------------------ #
    # Reads.
    # ------------------------------------------------------------------ #

    def exists(self, path: str) -> bool:
        return path in self.nodes

    def get(self, path: str) -> Znode:
        validate_path(path)
        node = self.nodes.get(path)
        if node is None:
            raise ZnodeError(f"{ERR_NO_NODE}: {path}")
        return node

    def get_children(self, path: str) -> List[str]:
        return sorted(self.get(path).children)

    def ephemerals_of(self, session_id: int) -> List[str]:
        """Paths of the ephemeral nodes owned by a session."""
        return sorted(p for p, n in self.nodes.items() if n.ephemeral_owner == session_id)

    # ------------------------------------------------------------------ #
    # Writes (applied by the replication layer in committed order).
    # ------------------------------------------------------------------ #

    def create(self, path: str, data: bytes = b"", ephemeral_owner: Optional[int] = None,
               sequential: bool = False) -> str:
        """Create a znode; returns the actual path (sequential nodes get a
        zero-padded counter suffix, as in ZooKeeper)."""
        validate_path(path)
        parent = parent_path(path)
        parent_node = self.nodes.get(parent)
        if parent_node is None:
            raise ZnodeError(f"parent does not exist: {parent}")
        if parent_node.is_ephemeral():
            raise ZnodeError(f"ephemeral node {parent} cannot have children")
        actual_path = path
        if sequential:
            actual_path = f"{path}{parent_node.sequential_counter:010d}"
            parent_node.sequential_counter += 1
        if actual_path in self.nodes:
            raise ZnodeError(f"znode already exists: {actual_path}")
        self.nodes[actual_path] = Znode(path=actual_path, data=data,
                                        ephemeral_owner=ephemeral_owner)
        parent_node.children.add(actual_path.rsplit("/", 1)[1])
        self._fire_child_watches(parent)
        self._fire_data_watches(actual_path, "created")
        return actual_path

    def set_data(self, path: str, data: bytes, expected_version: int = -1) -> int:
        """Update a node's data; ``expected_version`` of -1 skips the check."""
        node = self.get(path)
        if expected_version not in (-1, node.version):
            raise ZnodeError(f"{ERR_VERSION_MISMATCH} on {path}: "
                             f"expected {expected_version}, have {node.version}")
        node.data = data
        node.version += 1
        self._fire_data_watches(path, "changed")
        return node.version

    def delete(self, path: str, expected_version: int = -1) -> None:
        """Delete a leaf node."""
        node = self.get(path)
        if path == "/":
            raise ZnodeError("cannot delete the root")
        if node.children:
            raise ZnodeError(f"znode {path} has children")
        if expected_version not in (-1, node.version):
            raise ZnodeError(f"{ERR_VERSION_MISMATCH} on {path}")
        del self.nodes[path]
        parent = parent_path(path)
        if parent in self.nodes:
            self.nodes[parent].children.discard(path.rsplit("/", 1)[1])
            self._fire_child_watches(parent)
        self._fire_data_watches(path, "deleted")

    def remove_session(self, session_id: int) -> List[str]:
        """Delete every ephemeral node of a closed/expired session."""
        removed = []
        for path in self.ephemerals_of(session_id):
            try:
                self.delete(path)
                removed.append(path)
            except ZnodeError:
                continue
        return removed

    # ------------------------------------------------------------------ #
    # Watches (one-shot, as in ZooKeeper).
    # ------------------------------------------------------------------ #

    def add_data_watch(self, path: str, callback: Callable[[str, str], None]) -> None:
        """Register a one-shot watch on a node's data/existence."""
        self._data_watches.setdefault(path, []).append(callback)

    def add_child_watch(self, path: str, callback: Callable[[str, str], None]) -> None:
        """Register a one-shot watch on a node's children."""
        self._child_watches.setdefault(path, []).append(callback)

    def _fire_data_watches(self, path: str, event: str) -> None:
        for callback in self._data_watches.pop(path, []):
            callback(path, event)

    def _fire_child_watches(self, path: str, event: str = "children") -> None:
        for callback in self._child_watches.pop(path, []):
            callback(path, event)

    # ------------------------------------------------------------------ #
    # Snapshot / restore (used when a follower re-syncs from the leader).
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, Tuple[bytes, int, Optional[int], int, List[str]]]:
        """A deep copy of the tree contents."""
        return {
            path: (node.data, node.version, node.ephemeral_owner,
                   node.sequential_counter, sorted(node.children))
            for path, node in self.nodes.items()
        }

    def restore(self, snapshot) -> None:
        """Replace the tree contents from a snapshot."""
        self.nodes = {}
        for path, (data, version, owner, counter, children) in snapshot.items():
            node = Znode(path=path, data=data, version=version, ephemeral_owner=owner,
                         sequential_counter=counter, children=set(children))
            self.nodes[path] = node
        if "/" not in self.nodes:
            self.nodes["/"] = Znode(path="/")

    def node_count(self) -> int:
        """Number of znodes including the root."""
        return len(self.nodes)
