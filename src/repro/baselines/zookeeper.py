"""A ZooKeeper-like coordination service: ZAB ensemble over TCP.

This is the server-based comparison system of Section 8.  It reproduces the
architectural properties that determine ZooKeeper's performance envelope,
which is what the evaluation contrasts NetChain against:

* every query crosses the servers' kernel TCP stack and is processed by
  server CPUs (Table 1: tens of microseconds and hundreds of thousands of
  messages per second, versus the switch ASIC's nanoseconds and billions),
* reads are served locally by the server a client is connected to,
* writes are forwarded to the **leader**, which runs a ZAB-style atomic
  broadcast: log-sync, proposal to the followers, quorum of ACKs, commit --
  several messages per write all funnelled through the leader, plus a group
  commit (fsync) delay,
* all communication uses the reliable transport of
  :mod:`repro.netsim.tcp`, whose retransmission timeouts are what collapses
  throughput under packet loss (Figure 9(d)).

The data model (znodes, ephemerals, sequentials, watches) lives in
:mod:`repro.baselines.data_tree`; the client and recipes in
:mod:`repro.baselines.zk_client`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.baselines.data_tree import DataTree, ZnodeError
from repro.netsim.host import Host
from repro.netsim.tcp import TcpConfig, TcpConnection, TcpEndpoint

_session_ids = itertools.count(1)


@dataclass
class ZooKeeperConfig:
    """Ensemble parameters.

    ``server_msgs_per_sec`` is the per-server message-processing capacity
    *after* the simulation scale factor has been applied; 160K messages/s
    unscaled reproduces the measured 230 KQPS read-only and 27 KQPS
    write-only throughput of a 3-server ensemble (Section 8.1).
    """

    #: Per-server message processing capacity (already scaled), msgs/sec.
    server_msgs_per_sec: Optional[float] = 160e3
    #: Transaction log sync (group commit / fsync) latency before a server
    #: acknowledges a proposal.  Latency-only: group commit keeps it off the
    #: throughput path.
    log_sync_delay: float = 1.9e-3
    #: Approximate size of a request/response message on the wire.
    message_bytes: int = 150
    #: TCP parameters for all ensemble and client connections.
    tcp: TcpConfig = field(default_factory=TcpConfig)


class _ServerCpu:
    """Single-server queue modelling a server's message-processing capacity."""

    def __init__(self, sim, rate: Optional[float]) -> None:
        self.sim = sim
        self.rate = rate
        self._busy_until = 0.0
        self.units = 0

    def charge(self, units: float = 1.0) -> float:
        """Charge ``units`` of work; returns the queueing delay to apply."""
        self.units += units
        if not self.rate:
            return 0.0
        now = self.sim.now
        backlog = max(0.0, self._busy_until - now)
        self._busy_until = max(now, self._busy_until) + units / self.rate
        return backlog


class ZooKeeperServer:
    """One ensemble member."""

    def __init__(self, server_id: int, host: Host, config: ZooKeeperConfig) -> None:
        self.server_id = server_id
        self.host = host
        self.sim = host.sim
        self.config = config
        self.tree = DataTree()
        self.is_leader = False
        self.leader_id: Optional[int] = None
        self.peers: Dict[int, TcpEndpoint] = {}
        self.cpu = _ServerCpu(self.sim, config.server_msgs_per_sec)
        self.failed = False
        # Leader state.
        self.epoch = 0
        self.next_zxid = 1
        self._proposals: Dict[int, Dict[str, Any]] = {}
        # Per-server state.
        self.last_committed_zxid = 0
        self._client_endpoints: Dict[int, TcpEndpoint] = {}
        self._pending_client_requests: Dict[Tuple[int, int], int] = {}
        # Statistics.
        self.reads_served = 0
        self.writes_committed = 0
        self.proposals_sent = 0
        self.messages_handled = 0

    # ------------------------------------------------------------------ #
    # Wiring.
    # ------------------------------------------------------------------ #

    def connect_peer(self, peer_id: int, endpoint: TcpEndpoint) -> None:
        """Attach the transport endpoint leading to another ensemble member."""
        self.peers[peer_id] = endpoint
        endpoint.on_message = lambda message: self._receive(message, peer=peer_id)

    def accept_client(self, session_id: int, endpoint: TcpEndpoint) -> None:
        """Attach a client connection (the client library calls this)."""
        self._client_endpoints[session_id] = endpoint
        endpoint.on_message = lambda message: self._receive(message, session=session_id)

    def drop_client(self, session_id: int) -> None:
        """Forget a client connection (the session's ephemerals are removed
        by the ``close`` transaction, not here)."""
        self._client_endpoints.pop(session_id, None)

    # ------------------------------------------------------------------ #
    # Transport helpers (all sends/receives pay the server CPU).
    # ------------------------------------------------------------------ #

    def _send(self, endpoint: Optional[TcpEndpoint], message: Dict[str, Any]) -> None:
        if endpoint is None or self.failed:
            return
        delay = self.cpu.charge()
        self.sim.schedule(delay, lambda: endpoint.send(message, self.config.message_bytes))

    def _receive(self, message: Dict[str, Any], peer: Optional[int] = None,
                 session: Optional[int] = None) -> None:
        if self.failed:
            return
        delay = self.cpu.charge()
        self.sim.schedule(delay, lambda: self._handle(message, peer, session))

    # ------------------------------------------------------------------ #
    # Message handling.
    # ------------------------------------------------------------------ #

    def _handle(self, message: Dict[str, Any], peer: Optional[int],
                session: Optional[int]) -> None:
        if self.failed:
            return
        self.messages_handled += 1
        kind = message.get("kind")
        if kind == "request":
            self._handle_client_request(message, session)
        elif kind == "forward":
            self._handle_forward(message, peer)
        elif kind == "proposal":
            self._handle_proposal(message, peer)
        elif kind == "ack":
            self._handle_ack(message, peer)
        elif kind == "commit":
            self._handle_commit(message)

    # -- client requests ------------------------------------------------ #

    READ_OPS = {"get", "exists", "children"}

    def _handle_client_request(self, message: Dict[str, Any], session: Optional[int]) -> None:
        op = message["op"]
        if op in self.READ_OPS:
            self._serve_read(message, session)
            return
        # Write path: turn the request into a transaction and get it
        # committed through the leader.
        txn = self._txn_from_request(message, session)
        origin = {"server": self.server_id, "session": session, "xid": message["xid"]}
        if self.is_leader:
            self._propose(txn, origin)
        else:
            self._send(self.peers.get(self.leader_id),
                       {"kind": "forward", "txn": txn, "origin": origin})

    def _txn_from_request(self, message: Dict[str, Any], session: Optional[int]) -> Dict[str, Any]:
        op = message["op"]
        txn: Dict[str, Any] = {"op": op, "path": message.get("path")}
        if op == "create":
            txn["data"] = message.get("data", b"")
            txn["ephemeral_owner"] = session if message.get("ephemeral") else None
            txn["sequential"] = bool(message.get("sequential"))
        elif op == "set":
            txn["data"] = message.get("data", b"")
            txn["version"] = message.get("version", -1)
        elif op == "delete":
            txn["version"] = message.get("version", -1)
        elif op == "close":
            txn["op"] = "close_session"
            txn["session"] = session
        return txn

    def _serve_read(self, message: Dict[str, Any], session: Optional[int]) -> None:
        op = message["op"]
        path = message.get("path")
        endpoint = self._client_endpoints.get(session)
        response: Dict[str, Any] = {"kind": "response", "xid": message["xid"], "ok": True}
        try:
            if op == "get":
                node = self.tree.get(path)
                response.update(data=node.data, version=node.version)
            elif op == "exists":
                response.update(exists=self.tree.exists(path))
            elif op == "children":
                response.update(children=self.tree.get_children(path))
            if message.get("watch") and endpoint is not None:
                self._register_watch(op, path, session)
        except ZnodeError as exc:
            response.update(ok=False, error=str(exc))
        self.reads_served += 1
        self._send(endpoint, response)

    def _register_watch(self, op: str, path: str, session: int) -> None:
        def fire(changed_path: str, event: str) -> None:
            endpoint = self._client_endpoints.get(session)
            self._send(endpoint, {"kind": "watch_event", "path": changed_path, "event": event})

        if op == "children":
            self.tree.add_child_watch(path, fire)
        else:
            self.tree.add_data_watch(path, fire)

    # -- ZAB: leader side ------------------------------------------------ #

    def _handle_forward(self, message: Dict[str, Any], peer: Optional[int]) -> None:
        if not self.is_leader:
            # Stale forward after a leader change: re-forward.
            self._send(self.peers.get(self.leader_id), message)
            return
        self._propose(message["txn"], message["origin"])

    def _propose(self, txn: Dict[str, Any], origin: Dict[str, Any]) -> None:
        zxid = (self.epoch << 32) | self.next_zxid
        self.next_zxid += 1
        self._proposals[zxid] = {"txn": txn, "origin": origin, "acks": {self.server_id}}
        proposal = {"kind": "proposal", "zxid": zxid, "txn": txn, "origin": origin}
        self.proposals_sent += 1
        for endpoint in self.peers.values():
            self._send(endpoint, proposal)
        # The leader logs the proposal too (group commit latency) before its
        # own ACK counts -- modelled by delaying the quorum check.
        self.sim.schedule(self.config.log_sync_delay, lambda: self._check_quorum(zxid))

    def _handle_ack(self, message: Dict[str, Any], peer: Optional[int]) -> None:
        proposal = self._proposals.get(message["zxid"])
        if proposal is None:
            return
        proposal["acks"].add(peer)
        self._check_quorum(message["zxid"])

    def _quorum(self) -> int:
        return (len(self.peers) + 1) // 2 + 1

    def _check_quorum(self, zxid: int) -> None:
        proposal = self._proposals.get(zxid)
        if proposal is None or proposal.get("committed"):
            return
        if len(proposal["acks"]) < self._quorum():
            return
        proposal["committed"] = True
        commit = {"kind": "commit", "zxid": zxid, "txn": proposal["txn"],
                  "origin": proposal["origin"]}
        for endpoint in self.peers.values():
            self._send(endpoint, commit)
        self._apply_commit(zxid, proposal["txn"], proposal["origin"])

    # -- ZAB: follower side ---------------------------------------------- #

    def _handle_proposal(self, message: Dict[str, Any], peer: Optional[int]) -> None:
        # Log-sync (group commit) before acknowledging.
        zxid = message["zxid"]
        self.sim.schedule(self.config.log_sync_delay,
                          lambda: self._send(self.peers.get(peer),
                                             {"kind": "ack", "zxid": zxid}))

    def _handle_commit(self, message: Dict[str, Any]) -> None:
        self._apply_commit(message["zxid"], message["txn"], message["origin"])

    # -- applying transactions ------------------------------------------- #

    def _apply_commit(self, zxid: int, txn: Dict[str, Any], origin: Dict[str, Any]) -> None:
        self.last_committed_zxid = max(self.last_committed_zxid, zxid)
        ok = True
        error = None
        result: Dict[str, Any] = {}
        try:
            op = txn["op"]
            if op == "create":
                actual = self.tree.create(txn["path"], txn.get("data", b""),
                                          ephemeral_owner=txn.get("ephemeral_owner"),
                                          sequential=txn.get("sequential", False))
                result["path"] = actual
            elif op == "set":
                result["version"] = self.tree.set_data(txn["path"], txn.get("data", b""),
                                                       txn.get("version", -1))
            elif op == "delete":
                self.tree.delete(txn["path"], txn.get("version", -1))
            elif op == "close_session":
                result["removed"] = self.tree.remove_session(txn.get("session"))
        except ZnodeError as exc:
            ok = False
            error = str(exc)
        self.writes_committed += 1
        # The server the client is connected to replies once it has applied
        # the committed transaction.
        if origin and origin.get("server") == self.server_id:
            endpoint = self._client_endpoints.get(origin.get("session"))
            response = {"kind": "response", "xid": origin.get("xid"), "ok": ok}
            if error:
                response["error"] = error
            response.update(result)
            self._send(endpoint, response)

    # ------------------------------------------------------------------ #
    # Failure injection.
    # ------------------------------------------------------------------ #

    def fail(self) -> None:
        """Fail-stop this server."""
        self.failed = True
        self.host.fail()


class ZooKeeperEnsemble:
    """A set of interconnected ZooKeeper servers."""

    def __init__(self, servers: List[ZooKeeperServer], config: ZooKeeperConfig) -> None:
        self.servers = {server.server_id: server for server in servers}
        self.config = config
        self._next_session = _session_ids
        if servers:
            self.set_leader(servers[0].server_id)

    def set_leader(self, leader_id: int) -> None:
        """Install a leader (initial election or after a failure)."""
        for server in self.servers.values():
            server.is_leader = server.server_id == leader_id
            server.leader_id = leader_id
            if server.is_leader:
                server.epoch += 1
                server.next_zxid = 1

    def leader(self) -> ZooKeeperServer:
        """The current leader."""
        for server in self.servers.values():
            if server.is_leader:
                return server
        raise RuntimeError("no leader elected")

    def live_servers(self) -> List[ZooKeeperServer]:
        return [s for s in self.servers.values() if not s.failed]

    def fail_server(self, server_id: int) -> None:
        """Fail a server; if it was the leader, elect the lowest live id."""
        server = self.servers[server_id]
        was_leader = server.is_leader
        server.fail()
        if was_leader:
            live = self.live_servers()
            if live:
                self.set_leader(min(s.server_id for s in live))

    def allocate_session(self) -> int:
        """A new globally unique client session id."""
        return next(self._next_session)

    def preload(self, items: Dict[str, bytes]) -> None:
        """Pre-populate znodes on every server, bypassing the protocol.

        Used by experiments to set up the store-size parameter without
        paying millions of simulated writes; equivalent to restoring all
        replicas from the same snapshot.
        """
        for path in sorted(items):
            for server in self.servers.values():
                parts = [p for p in path.split("/") if p]
                current = ""
                for part in parts[:-1]:
                    current = f"{current}/{part}"
                    if not server.tree.exists(current):
                        server.tree.create(current)
                if not server.tree.exists(path):
                    server.tree.create(path, items[path])
                else:
                    server.tree.set_data(path, items[path])

    def total_reads(self) -> int:
        return sum(s.reads_served for s in self.servers.values())

    def total_commits(self) -> int:
        return max((s.writes_committed for s in self.servers.values()), default=0)


def build_zookeeper_ensemble(hosts: List[Host],
                             config: Optional[ZooKeeperConfig] = None) -> ZooKeeperEnsemble:
    """Create servers on the given hosts and fully connect them."""
    config = config or ZooKeeperConfig()
    servers = [ZooKeeperServer(i, host, config) for i, host in enumerate(hosts)]
    for i, a in enumerate(servers):
        for b in servers[i + 1:]:
            conn = TcpConnection(a.host, b.host, config=config.tcp)
            a.connect_peer(b.server_id, conn.endpoint(a.host))
            b.connect_peer(a.server_id, conn.endpoint(b.host))
    return ZooKeeperEnsemble(servers, config)
