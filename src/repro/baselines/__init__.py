"""Server-based baselines that NetChain is evaluated against.

* :mod:`repro.baselines.zookeeper` / :mod:`repro.baselines.zk_client` --
  a ZooKeeper-like coordination service: a ZAB-style leader-based ensemble
  over TCP, with znodes, sessions, ephemeral/sequential nodes, watches and
  the standard lock recipe.  This is the comparison system of Section 8.
* :mod:`repro.baselines.chain_server` -- chain replication on servers
  (FAWN-KV style), the design NetChain moves into the network (Section 2.2).
* :mod:`repro.baselines.primary_backup` -- the classical primary-backup
  protocol of Figure 1(a), used for the message-count comparison.
"""

from repro.baselines.chain_server import ServerChainCluster, ServerChainKVClient, ServerChainReplica
from repro.baselines.data_tree import DataTree, Znode, ZnodeError
from repro.baselines.primary_backup import PrimaryBackupCluster, PrimaryBackupKVClient
from repro.baselines.zk_client import ZkLock, ZkResult, ZooKeeperClient, ZooKeeperKVClient
from repro.baselines.zookeeper import (
    ZooKeeperConfig,
    ZooKeeperEnsemble,
    ZooKeeperServer,
    build_zookeeper_ensemble,
)

__all__ = [
    "DataTree",
    "Znode",
    "ZnodeError",
    "ZooKeeperConfig",
    "ZooKeeperServer",
    "ZooKeeperEnsemble",
    "build_zookeeper_ensemble",
    "ZooKeeperClient",
    "ZooKeeperKVClient",
    "ZkLock",
    "ZkResult",
    "ServerChainReplica",
    "ServerChainCluster",
    "ServerChainKVClient",
    "PrimaryBackupCluster",
    "PrimaryBackupKVClient",
]
