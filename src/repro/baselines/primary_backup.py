"""Classical primary-backup replication (Figure 1(a)).

Included as the contrast case of Section 2.2: every query goes to the
primary, which must track each write at each backup and confirm with all of
them before replying.  A write therefore costs ``2n`` messages (versus
``n+1`` for chain replication) and requires per-query state at the primary
-- the two reasons the paper rules it out for a switch implementation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.baselines.server_kv import ServerBaselineKVClient
from repro.netsim.host import Host
from repro.netsim.tcp import TcpConfig, TcpConnection, TcpEndpoint

_request_ids = itertools.count(1)
_client_ids = itertools.count(1)


@dataclass
class PBResult:
    """Outcome of a primary-backup operation."""

    ok: bool
    op: str
    key: str
    value: bytes = b""
    version: int = 0
    latency: float = 0.0
    #: A compare-and-swap lost (expected value did not match at the primary).
    cas_failed: bool = False
    #: A delete targeted a key the primary never stored.
    not_found: bool = False


class _Backup:
    """A backup replica: applies updates and acknowledges them."""

    def __init__(self, index: int, host: Host, message_bytes: int) -> None:
        self.index = index
        self.host = host
        self.message_bytes = message_bytes
        self.store: Dict[str, Tuple[bytes, int]] = {}
        self.primary_endpoint: Optional[TcpEndpoint] = None
        self.updates_applied = 0

    def handle_message(self, message: Dict[str, Any]) -> None:
        if message.get("op") != "update":
            return
        if message.get("delete"):
            self.store.pop(message["key"], None)
        else:
            self.store[message["key"]] = (message["value"], message["version"])
        self.updates_applied += 1
        if self.primary_endpoint is not None:
            self.primary_endpoint.send({"op": "ack", "request_id": message["request_id"],
                                        "backup": self.index}, self.message_bytes)


class _Primary:
    """The primary: serves reads, coordinates writes with all backups."""

    def __init__(self, host: Host, message_bytes: int) -> None:
        self.host = host
        self.message_bytes = message_bytes
        self.store: Dict[str, Tuple[bytes, int]] = {}
        self.backup_endpoints: List[TcpEndpoint] = []
        self.client_endpoints: Dict[str, TcpEndpoint] = {}
        #: Per-query state the primary must keep: outstanding acks per write.
        self.pending_writes: Dict[int, Dict[str, Any]] = {}
        self.messages_sent = 0

    def accept_client(self, client_name: str, endpoint: TcpEndpoint) -> None:
        self.client_endpoints[client_name] = endpoint
        endpoint.on_message = self.handle_message

    def handle_message(self, message: Dict[str, Any]) -> None:
        op = message.get("op")
        if op == "read":
            value, version = self.store.get(message["key"], (b"", 0))
            self._reply(message["client"], message["request_id"], "read", message["key"],
                        value, version)
        elif op in ("write", "cas", "delete"):
            stored_value, stored_version = self.store.get(message["key"], (b"", 0))
            if op == "cas" and stored_value != message.get("expected", b""):
                self._reply(message["client"], message["request_id"], "cas",
                            message["key"], stored_value, stored_version,
                            ok=False, cas_failed=True)
                return
            not_found = False
            if op == "delete":
                not_found = message["key"] not in self.store
                self.store.pop(message["key"], None)
                version = stored_version
                value = b""
            else:
                version = stored_version + 1
                value = message["value"]
                self.store[message["key"]] = (value, version)
            self.pending_writes[message["request_id"]] = {
                "message": message, "version": version, "value": value,
                "not_found": not_found,
                "awaiting": set(range(len(self.backup_endpoints))),
            }
            update = {"op": "update", "request_id": message["request_id"],
                      "key": message["key"], "value": value, "version": version,
                      "delete": op == "delete"}
            for endpoint in self.backup_endpoints:
                endpoint.send(update, self.message_bytes)
                self.messages_sent += 1
            if not self.backup_endpoints:
                self._complete_write(message["request_id"])
        elif op == "ack":
            pending = self.pending_writes.get(message["request_id"])
            if pending is None:
                return
            pending["awaiting"].discard(message["backup"])
            if not pending["awaiting"]:
                self._complete_write(message["request_id"])

    def _complete_write(self, request_id: int) -> None:
        pending = self.pending_writes.pop(request_id, None)
        if pending is None:
            return
        message = pending["message"]
        self._reply(message["client"], request_id, message["op"], message["key"],
                    pending["value"], pending["version"],
                    not_found=pending["not_found"])

    def _reply(self, client: str, request_id: int, op: str, key: str,
               value: bytes, version: int, ok: bool = True,
               cas_failed: bool = False, not_found: bool = False) -> None:
        endpoint = self.client_endpoints.get(client)
        if endpoint is None:
            return
        endpoint.send({"kind": "reply", "request_id": request_id, "ok": ok, "op": op,
                       "key": key, "value": value, "version": version,
                       "cas_failed": cas_failed, "not_found": not_found},
                      self.message_bytes)
        self.messages_sent += 1


class PrimaryBackupCluster:
    """A primary plus ``n-1`` backups, with a client factory."""

    def __init__(self, hosts: List[Host], tcp_config: Optional[TcpConfig] = None,
                 message_bytes: int = 150) -> None:
        if not hosts:
            raise ValueError("primary-backup needs at least one server")
        self.tcp_config = tcp_config or TcpConfig()
        self.message_bytes = message_bytes
        self.primary = _Primary(hosts[0], message_bytes)
        self.backups = [_Backup(i, host, message_bytes) for i, host in enumerate(hosts[1:])]
        for backup in self.backups:
            conn = TcpConnection(self.primary.host, backup.host, config=self.tcp_config)
            primary_side = conn.endpoint(self.primary.host)
            backup_side = conn.endpoint(backup.host)
            backup.primary_endpoint = backup_side
            backup_side.on_message = backup.handle_message
            primary_side.on_message = self.primary.handle_message
            self.primary.backup_endpoints.append(primary_side)

    def messages_per_write(self) -> int:
        """Messages a write costs: request + n-1 updates + n-1 acks + reply
        (Section 2.2: 2n for primary-backup with n replicas)."""
        return 2 * (len(self.backups) + 1)

    def client(self, host: Host) -> "PrimaryBackupClient":
        return PrimaryBackupClient(host, self)

    def kv_client(self, host: Host) -> "PrimaryBackupKVClient":
        """A client adapted to the unified :class:`KVClient` protocol."""
        return PrimaryBackupKVClient(self.client(host))

    def preload(self, items: Dict[str, bytes]) -> None:
        """Bulk-load keys on the primary and every backup directly."""
        for key, value in items.items():
            self.primary.store[key] = (value, 1)
            for backup in self.backups:
                backup.store[key] = (value, 1)


class PrimaryBackupClient:
    """A client that talks to the primary for both reads and writes."""

    def __init__(self, host: Host, cluster: PrimaryBackupCluster) -> None:
        self.host = host
        self.sim = host.sim
        self.cluster = cluster
        # The name keys the per-client reply endpoint at the primary, so
        # several clients on one host must not collide.
        self.name = f"pb-client-{host.name}-{next(_client_ids)}"
        conn = TcpConnection(host, cluster.primary.host, config=cluster.tcp_config)
        cluster.primary.accept_client(self.name, conn.endpoint(cluster.primary.host))
        self._endpoint = conn.endpoint(host)
        self._endpoint.on_message = self._on_reply
        self._pending: Dict[int, Dict[str, Any]] = {}
        self.completed = 0
        self.latencies: List[float] = []

    def read_async(self, key: str, callback: Optional[Callable[[PBResult], None]] = None) -> int:
        return self._submit("read", key, b"", callback)

    def write_async(self, key: str, value: bytes,
                    callback: Optional[Callable[[PBResult], None]] = None) -> int:
        return self._submit("write", key, value, callback)

    def cas_async(self, key: str, expected: bytes, new_value: bytes,
                  callback: Optional[Callable[[PBResult], None]] = None) -> int:
        return self._submit("cas", key, new_value, callback, expected=expected)

    def delete_async(self, key: str,
                     callback: Optional[Callable[[PBResult], None]] = None) -> int:
        return self._submit("delete", key, b"", callback)

    def read(self, key: str, deadline: float = 5.0) -> PBResult:
        return self._sync(lambda cb: self.read_async(key, cb), deadline)

    def write(self, key: str, value: bytes, deadline: float = 5.0) -> PBResult:
        return self._sync(lambda cb: self.write_async(key, value, cb), deadline)

    def cas(self, key: str, expected: bytes, new_value: bytes,
            deadline: float = 5.0) -> PBResult:
        return self._sync(lambda cb: self.cas_async(key, expected, new_value, cb),
                          deadline)

    def delete(self, key: str, deadline: float = 5.0) -> PBResult:
        return self._sync(lambda cb: self.delete_async(key, cb), deadline)

    def _submit(self, op: str, key: str, value: bytes,
                callback: Optional[Callable[[PBResult], None]],
                **extra: Any) -> int:
        request_id = next(_request_ids)
        self._pending[request_id] = {"callback": callback, "op": op, "key": key,
                                     "sent_at": self.sim.now}
        message = {"op": op, "request_id": request_id, "key": key, "value": value,
                   "client": self.name}
        message.update(extra)
        self._endpoint.send(message, self.cluster.message_bytes)
        return request_id

    def _sync(self, submit, deadline: float) -> PBResult:
        box: List[PBResult] = []
        submit(box.append)
        limit = self.sim.now + deadline
        while not box and self.sim.pending() and self.sim.now < limit:
            self.sim.run(until=min(limit, self.sim.now + 0.05))
        if not box:
            raise TimeoutError("no reply from the primary")
        return box[0]

    def _on_reply(self, message: Dict[str, Any]) -> None:
        if message.get("kind") != "reply":
            return
        pending = self._pending.pop(message.get("request_id"), None)
        if pending is None:
            return
        latency = self.sim.now - pending["sent_at"]
        self.completed += 1
        self.latencies.append(latency)
        result = PBResult(ok=message.get("ok", False), op=pending["op"], key=pending["key"],
                          value=message.get("value", b""), version=message.get("version", 0),
                          latency=latency, cas_failed=message.get("cas_failed", False),
                          not_found=message.get("not_found", False))
        if pending["callback"] is not None:
            pending["callback"](result)


class PrimaryBackupKVClient(ServerBaselineKVClient):
    """The unified :class:`~repro.core.client.KVClient` protocol over a
    primary-backup client (see :class:`ServerBaselineKVClient`)."""

    backend = "primary-backup"
