"""Workload generation and load-driving clients.

* :mod:`repro.workloads.generators` -- key-value workload descriptions:
  key distributions, read/write mixes, value sizes, store sizes -- the knobs
  of Figures 9(a)-(d).
* :mod:`repro.workloads.clients` -- closed-loop and open-loop load drivers
  for NetChain agents and for the ZooKeeper baseline, plus throughput
  measurement helpers.
"""

from repro.workloads.generators import (
    WorkloadConfig,
    KeyValueWorkload,
    Operation,
    OpType,
    zipf_probabilities,
)
from repro.workloads.clients import (
    NetChainLoadClient,
    ZooKeeperLoadClient,
    measure_netchain_load,
    measure_zookeeper_load,
)

__all__ = [
    "WorkloadConfig",
    "KeyValueWorkload",
    "Operation",
    "OpType",
    "zipf_probabilities",
    "NetChainLoadClient",
    "ZooKeeperLoadClient",
    "measure_netchain_load",
    "measure_zookeeper_load",
]
