"""Workload generation and load-driving clients.

* :mod:`repro.workloads.generators` -- key-value workload descriptions:
  key distributions, read/write mixes, value sizes, store sizes -- the knobs
  of Figures 9(a)-(d).
* :mod:`repro.workloads.clients` -- the backend-generic closed-loop load
  driver over the :class:`repro.core.client.KVClient` protocol, plus
  throughput measurement helpers.
"""

from repro.workloads.clients import LoadClient, LoadMeasurement, measure_load
from repro.workloads.generators import (
    KeyValueWorkload,
    Operation,
    OpType,
    WorkloadConfig,
    zipf_probabilities,
)

__all__ = [
    "WorkloadConfig",
    "KeyValueWorkload",
    "Operation",
    "OpType",
    "zipf_probabilities",
    "LoadClient",
    "LoadMeasurement",
    "measure_load",
]
