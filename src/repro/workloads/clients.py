"""Load-driving clients and throughput measurement helpers.

Both systems are driven by **closed-loop** logical clients: each logical
client keeps a fixed number of queries outstanding and issues the next one
as soon as a reply (or a timeout) comes back.  This is how the paper's
evaluation generates load -- DPDK client processes for NetChain and 100
Curator client processes for ZooKeeper (Section 8.1) -- and it makes the
measured saturation throughput insensitive to the exact concurrency level
once the bottleneck resource is saturated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.agent import NetChainAgent, QueryResult
from repro.baselines.zk_client import ZooKeeperClient, ZkResult
from repro.netsim.stats import IntervalCounter, LatencyRecorder, ThroughputTimeSeries
from repro.workloads.generators import KeyValueWorkload, OpType


class NetChainLoadClient:
    """Closed-loop load generator driving one NetChain agent."""

    def __init__(self, agent: NetChainAgent, workload: KeyValueWorkload,
                 concurrency: int = 16,
                 time_series: Optional[ThroughputTimeSeries] = None) -> None:
        self.agent = agent
        self.workload = workload
        self.concurrency = concurrency
        self.completions = IntervalCounter()
        self.successes = IntervalCounter()
        self.read_latency = LatencyRecorder()
        self.write_latency = LatencyRecorder()
        self.time_series = time_series
        self.running = False
        self.failed_queries = 0

    def start(self) -> None:
        """Begin issuing queries (call before running the simulator)."""
        self.running = True
        for _ in range(self.concurrency):
            self._issue()

    def stop(self) -> None:
        """Stop issuing new queries; outstanding ones drain naturally."""
        self.running = False

    def _issue(self) -> None:
        if not self.running:
            return
        operation = self.workload.next_operation()
        if operation.op is OpType.WRITE:
            self.agent.write(operation.key, operation.value, callback=self._on_done)
        else:
            self.agent.read(operation.key, callback=self._on_done)

    def _on_done(self, result: QueryResult) -> None:
        now = self.agent.sim.now
        self.completions.record(now)
        if result.ok:
            self.successes.record(now)
            if self.time_series is not None:
                self.time_series.record(now)
            if result.op.name.startswith("READ"):
                self.read_latency.record(result.latency)
            else:
                self.write_latency.record(result.latency)
        else:
            self.failed_queries += 1
        self._issue()


class ZooKeeperLoadClient:
    """Closed-loop load generator driving one ZooKeeper client session."""

    def __init__(self, client: ZooKeeperClient, workload: KeyValueWorkload,
                 concurrency: int = 1, path_prefix: str = "/kv/",
                 time_series: Optional[ThroughputTimeSeries] = None) -> None:
        self.client = client
        self.workload = workload
        self.concurrency = concurrency
        self.path_prefix = path_prefix
        self.completions = IntervalCounter()
        self.successes = IntervalCounter()
        self.read_latency = LatencyRecorder()
        self.write_latency = LatencyRecorder()
        self.time_series = time_series
        self.running = False
        self.failed_queries = 0

    def _path(self, key: str) -> str:
        return f"{self.path_prefix}{key}"

    def start(self) -> None:
        """Begin issuing requests."""
        self.running = True
        for _ in range(self.concurrency):
            self._issue()

    def stop(self) -> None:
        self.running = False

    def _issue(self) -> None:
        if not self.running:
            return
        operation = self.workload.next_operation()
        if operation.op is OpType.WRITE:
            self.client.set_async(self._path(operation.key), operation.value,
                                  callback=lambda r: self._on_done(r, is_write=True))
        else:
            self.client.get_async(self._path(operation.key),
                                  callback=lambda r: self._on_done(r, is_write=False))

    def _on_done(self, result: ZkResult, is_write: bool) -> None:
        now = self.client.sim.now
        self.completions.record(now)
        if result.ok:
            self.successes.record(now)
            if self.time_series is not None:
                self.time_series.record(now)
            if is_write:
                self.write_latency.record(result.latency)
            else:
                self.read_latency.record(result.latency)
        else:
            self.failed_queries += 1
        self._issue()


@dataclass
class LoadMeasurement:
    """Throughput/latency over a measurement window, in simulated units."""

    qps: float
    success_qps: float
    mean_read_latency: float
    mean_write_latency: float
    window: float

    def scaled_qps(self, scale: float) -> float:
        """Throughput mapped back to the paper's absolute units."""
        return self.success_qps * scale


def _measure(sim, clients: List, warmup: float, duration: float) -> LoadMeasurement:
    start = sim.now
    for client in clients:
        client.start()
    sim.run(until=start + warmup + duration)
    for client in clients:
        client.stop()
    window_start = start + warmup
    window_end = start + warmup + duration
    total = sum(c.completions.rate_between(window_start, window_end) for c in clients)
    success = sum(c.successes.rate_between(window_start, window_end) for c in clients)
    read_lat = LatencyRecorder()
    write_lat = LatencyRecorder()
    for client in clients:
        read_lat.samples.extend(client.read_latency.samples)
        write_lat.samples.extend(client.write_latency.samples)
    return LoadMeasurement(qps=total, success_qps=success,
                           mean_read_latency=read_lat.mean(),
                           mean_write_latency=write_lat.mean(),
                           window=duration)


def measure_netchain_load(clients: List[NetChainLoadClient], warmup: float,
                          duration: float) -> LoadMeasurement:
    """Run NetChain load clients and measure the steady-state window."""
    if not clients:
        raise ValueError("need at least one load client")
    return _measure(clients[0].agent.sim, clients, warmup, duration)


def measure_zookeeper_load(clients: List[ZooKeeperLoadClient], warmup: float,
                           duration: float) -> LoadMeasurement:
    """Run ZooKeeper load clients and measure the steady-state window."""
    if not clients:
        raise ValueError("need at least one load client")
    return _measure(clients[0].client.sim, clients, warmup, duration)
