"""Load-driving clients and throughput measurement helpers.

Both systems are driven by **closed-loop** logical clients: each logical
client keeps a fixed number of queries outstanding and issues the next one
as soon as a reply (or a timeout) comes back.  This is how the paper's
evaluation generates load -- DPDK client processes for NetChain and 100
Curator client processes for ZooKeeper (Section 8.1) -- and it makes the
measured saturation throughput insensitive to the exact concurrency level
once the bottleneck resource is saturated.

There is one load client, :class:`LoadClient`, driven through the
backend-agnostic :class:`repro.core.client.KVClient` protocol; pass it a
NetChain agent or a :class:`repro.baselines.zk_client.ZooKeeperKVClient`
and the same code path exercises either system.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

from repro.core.client import KVClient, KVResult
from repro.core.history import History, HistoryOp
from repro.netsim.stats import IntervalCounter, LatencyRecorder, ThroughputTimeSeries
from repro.workloads.generators import KeyValueWorkload, OpType

_client_names = itertools.count()


class LoadClient:
    """Closed-loop load generator driving one :class:`KVClient`.

    With a :class:`repro.core.history.History` attached, every invocation
    and response is recorded for post-run consistency checking; with a
    non-zero ``think_time`` each logical client waits that long between a
    completion and the next issue, which turns the closed loop into a paced
    load suitable for long failure timelines.
    """

    def __init__(self, client: KVClient, workload: KeyValueWorkload,
                 concurrency: int = 16,
                 time_series: Optional[ThroughputTimeSeries] = None,
                 history: Optional[History] = None,
                 think_time: float = 0.0,
                 name: Optional[str] = None) -> None:
        self.client = client
        self.workload = workload
        self.concurrency = concurrency
        self.completions = IntervalCounter()
        self.successes = IntervalCounter()
        self.read_latency = LatencyRecorder()
        self.write_latency = LatencyRecorder()
        self.time_series = time_series
        self.history = history
        self.think_time = think_time
        self.name = name or f"load{next(_client_names)}"
        self.running = False
        self.failed_queries = 0

    @property
    def sim(self):
        return self.client.sim

    def start(self) -> None:
        """Begin issuing queries (call before running the simulator)."""
        self.running = True
        for _ in range(self.concurrency):
            self._issue()

    def stop(self) -> None:
        """Stop issuing new queries; outstanding ones drain naturally."""
        self.running = False

    def _issue(self) -> None:
        if not self.running:
            return
        operation = self.workload.next_operation()
        record: Optional[HistoryOp] = None
        if operation.op is OpType.WRITE:
            if self.history is not None:
                record = self.history.invoke(self.name, "write", operation.key,
                                             value=operation.value)
            future = self.client.write(operation.key, operation.value)
        else:
            if self.history is not None:
                record = self.history.invoke(self.name, "read", operation.key)
            future = self.client.read(operation.key)
        if record is None:
            future.then(self._on_done)
        else:
            future.then(lambda result: self._on_done(result, record))

    def _on_done(self, result: KVResult, record: Optional[HistoryOp] = None) -> None:
        now = self.sim.now
        if record is not None:
            self.history.complete(record, result)
        self.completions.record(now)
        if result.ok:
            self.successes.record(now)
            if self.time_series is not None:
                self.time_series.record(now)
            if result.is_read:
                self.read_latency.record(result.latency)
            else:
                self.write_latency.record(result.latency)
        else:
            self.failed_queries += 1
        if self.think_time > 0:
            self.sim.schedule(self.think_time, self._issue)
        else:
            self._issue()


@dataclass
class LoadMeasurement:
    """Throughput/latency over a measurement window, in simulated units."""

    qps: float
    success_qps: float
    mean_read_latency: float
    mean_write_latency: float
    window: float

    def scaled_qps(self, scale: float) -> float:
        """Throughput mapped back to the paper's absolute units."""
        return self.success_qps * scale


def measure_load(clients: List[LoadClient], warmup: float,
                 duration: float) -> LoadMeasurement:
    """Run load clients and measure the steady-state window."""
    if not clients:
        raise ValueError("need at least one load client")
    sim = clients[0].sim
    start = sim.now
    for client in clients:
        client.start()
    sim.run(until=start + warmup + duration)
    for client in clients:
        client.stop()
    window_start = start + warmup
    window_end = start + warmup + duration
    total = sum(c.completions.rate_between(window_start, window_end) for c in clients)
    success = sum(c.successes.rate_between(window_start, window_end) for c in clients)
    read_lat = LatencyRecorder()
    write_lat = LatencyRecorder()
    for client in clients:
        read_lat.merge(client.read_latency)
        write_lat.merge(client.write_latency)
    return LoadMeasurement(qps=total, success_qps=success,
                           mean_read_latency=read_lat.mean(),
                           mean_write_latency=write_lat.mean(),
                           window=duration)
