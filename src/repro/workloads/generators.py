"""Key-value workload generators.

The evaluation's default workload (Section 8.1) uses 64-byte values, a 20K
item store, a 1% write ratio and uniformly random keys; the individual
experiments sweep one knob at a time.  :class:`KeyValueWorkload` produces an
operation stream with exactly those knobs, plus an optional Zipf-skewed key
popularity (coordination workloads are often skewed; the default stays
uniform to match the paper).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum, auto
from typing import List, Optional, Sequence

import numpy as np


class OpType(Enum):
    """Operation kinds produced by the generator."""

    READ = auto()
    WRITE = auto()


@dataclass
class Operation:
    """One generated operation."""

    op: OpType
    key: str
    value: Optional[bytes] = None


@dataclass
class WorkloadConfig:
    """The workload knobs of Section 8.1."""

    #: Number of distinct keys ("store size").
    store_size: int = 20000
    #: Value size in bytes.
    value_size: int = 64
    #: Fraction of operations that are writes, in [0, 1].
    write_ratio: float = 0.01
    #: Zipf skew parameter; 0 means uniform key popularity.
    zipf_theta: float = 0.0
    #: Prefix for generated key names.
    key_prefix: str = "k"
    #: RNG seed.
    seed: int = 0

    def key_names(self) -> List[str]:
        """All key names of the store."""
        return [f"{self.key_prefix}{i:08d}" for i in range(self.store_size)]


def zipf_probabilities(n: int, theta: float) -> np.ndarray:
    """Zipf popularity distribution over ``n`` items (theta=0 is uniform)."""
    if n <= 0:
        raise ValueError("need at least one item")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-theta) if theta > 0 else np.ones(n)
    return weights / weights.sum()


class KeyValueWorkload:
    """Generates read/write operations according to a :class:`WorkloadConfig`."""

    def __init__(self, config: Optional[WorkloadConfig] = None) -> None:
        self.config = config or WorkloadConfig()
        self.rng = random.Random(self.config.seed)
        self.np_rng = np.random.default_rng(self.config.seed)
        self.keys = self.config.key_names()
        self._probabilities = zipf_probabilities(len(self.keys), self.config.zipf_theta)
        self._value = bytes(self.config.value_size)
        self._cumulative = np.cumsum(self._probabilities)

    def pick_key(self) -> str:
        """One key according to the configured popularity distribution."""
        if self.config.zipf_theta <= 0:
            return self.keys[self.rng.randrange(len(self.keys))]
        u = self.rng.random()
        index = int(np.searchsorted(self._cumulative, u))
        return self.keys[min(index, len(self.keys) - 1)]

    def make_value(self) -> bytes:
        """A value of the configured size (content is irrelevant to the systems)."""
        return self._value

    def next_operation(self) -> Operation:
        """Generate the next operation."""
        if self.rng.random() < self.config.write_ratio:
            return Operation(op=OpType.WRITE, key=self.pick_key(), value=self.make_value())
        return Operation(op=OpType.READ, key=self.pick_key())

    def operations(self, count: int) -> List[Operation]:
        """Generate a batch of operations."""
        return [self.next_operation() for _ in range(count)]

    def measured_write_fraction(self, count: int = 10000) -> float:
        """Empirical write fraction over a sample (useful in tests)."""
        sample = self.operations(count)
        return sum(1 for op in sample if op.op is OpType.WRITE) / count
