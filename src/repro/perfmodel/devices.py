"""Device capability constants (Table 1) and the simulation scale model.

The paper's argument rests on the capability gap between servers and
switches (Table 1): a Tofino switch processes a few billion packets per
second with sub-microsecond delay, while even a kernel-bypass server stack
handles tens of millions with tens of microseconds of delay.

The absolute rates are far too high to simulate packet by packet, so every
experiment uses a single ``scale`` factor: all *capacities* are divided by
``scale`` for the simulation and the measured throughput is multiplied back
when reported.  Latency constants are left untouched because the latency
experiments run at light load where queueing is negligible -- this mirrors
the paper's own methodology (latency is reported below saturation).
Saturation points, ratios between systems and crossover locations are
invariant under this scaling, which is what the reproduction aims to match
(see DESIGN.md, "Scale model").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.netsim.host import HostConfig
from repro.netsim.switch import SwitchConfig


@dataclass(frozen=True)
class DeviceModel:
    """Capability envelope of one device class."""

    name: str
    packets_per_sec: float
    bandwidth_bps: float
    processing_delay: float


#: Barefoot Tofino in the evaluation's guaranteed mode (Section 8.1: the
#: mode guarantees 4 BQPS; the ASIC peak is a few BQPS, Table 1).
TOFINO = DeviceModel(name="Tofino switch", packets_per_sec=4e9,
                     bandwidth_bps=6.5e12, processing_delay=0.5e-6)

#: A highly optimized software packet processor (NetBricks, Table 1).
NETBRICKS_SERVER = DeviceModel(name="NetBricks server", packets_per_sec=30e6,
                               bandwidth_bps=40e9, processing_delay=30e-6)

#: A ZooKeeper server: bounded by the kernel TCP stack and the ZAB/fsync
#: pipeline rather than raw packet IO.  ~250K messages/s with a ~1.9 ms
#: commit delay reproduces the measured 230 KQPS read-only and 27 KQPS
#: write-only throughput of a 3-server ensemble (Section 8.1).
ZOOKEEPER_SERVER = DeviceModel(name="ZooKeeper server", packets_per_sec=250e3,
                               bandwidth_bps=40e9, processing_delay=75e-6)

#: The DPDK client agent (Section 7: 20.5 MQPS on a 40G NIC, ~9.7 us RTT
#: implies ~4.3 us of client stack each way).
DPDK_CLIENT = DeviceModel(name="DPDK client", packets_per_sec=20.5e6,
                          bandwidth_bps=40e9, processing_delay=4.3e-6)

#: Kernel TCP stack one-way delay used for ZooKeeper clients and servers.
#: Calibrated so a ZooKeeper read costs ~170 us end to end (Section 8.2).
KERNEL_STACK_DELAY = 40e-6

#: ZooKeeper leader commit delay (log append + group commit / fsync),
#: calibrated so write latency lands near the measured ~2.35 ms.
ZOOKEEPER_COMMIT_DELAY = 1.9e-3


def table1_rows() -> List[Tuple[str, str, str, str]]:
    """The rows of Table 1 (server vs switch packet processing)."""
    def fmt_pps(value: float) -> str:
        if value >= 1e9:
            return f"{value / 1e9:.0f} billion"
        return f"{value / 1e6:.0f} million"

    def fmt_bw(value: float) -> str:
        if value >= 1e12:
            return f"{value / 1e12:.1f} Tbps"
        return f"{value / 1e9:.0f} Gbps"

    def fmt_delay(value: float) -> str:
        return f"{value * 1e6:.1f} us"

    rows = []
    for device in (NETBRICKS_SERVER, TOFINO):
        rows.append((device.name, fmt_pps(device.packets_per_sec),
                     fmt_bw(device.bandwidth_bps), fmt_delay(device.processing_delay)))
    return rows


# ---------------------------------------------------------------------- #
# Scaled configurations for discrete-event simulations.
# ---------------------------------------------------------------------- #

def scaled_switch_config(scale: float = 1000.0, **overrides) -> SwitchConfig:
    """A Tofino-like switch with its capacity divided by ``scale``."""
    config = SwitchConfig(capacity_pps=TOFINO.packets_per_sec / scale,
                          pipeline_delay=TOFINO.processing_delay)
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def scaled_dpdk_host_config(scale: float = 1000.0, **overrides) -> HostConfig:
    """A DPDK client host with its query rate divided by ``scale``."""
    config = HostConfig(stack_delay=DPDK_CLIENT.processing_delay,
                        nic_pps=DPDK_CLIENT.packets_per_sec / scale)
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def scaled_kernel_host_config(scale: float = 1000.0, **overrides) -> HostConfig:
    """A kernel-TCP host (ZooKeeper server or client) scaled by ``scale``."""
    config = HostConfig(stack_delay=KERNEL_STACK_DELAY,
                        nic_pps=ZOOKEEPER_SERVER.packets_per_sec / scale)
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def scaled_testbed(scale: float = 1000.0, num_hosts: int = 4, seed: int = 0,
                   link_config=None, unlimited_capacity: bool = False):
    """The Figure 8 testbed with the scale model applied to every device.

    This is the single place the scaled-device plumbing for the evaluation
    testbed lives; :class:`repro.core.cluster.NetChainCluster` and the
    deployment backends both build through it.  ``unlimited_capacity``
    drops the packet-rate ceilings on switches and host NICs (latency-bound
    experiments, where capacity is not the binding resource) while keeping
    the realistic per-device processing delays.
    """
    from repro.netsim.link import LinkConfig
    from repro.netsim.topology import build_testbed

    if unlimited_capacity:
        switch_config = SwitchConfig(capacity_pps=None,
                                     pipeline_delay=TOFINO.processing_delay)
        host_config = HostConfig(stack_delay=DPDK_CLIENT.processing_delay,
                                 nic_pps=None)
    else:
        switch_config = scaled_switch_config(scale)
        host_config = scaled_dpdk_host_config(scale)
    return build_testbed(switch_config=switch_config, host_config=host_config,
                         link_config=link_config or LinkConfig(),
                         num_hosts=num_hosts, seed=seed)
