"""Analytic performance models and device constants.

* :mod:`repro.perfmodel.devices` -- the packet-processing capability numbers
  of Table 1 and the scale model used to map them onto tractable
  discrete-event simulations.
* :mod:`repro.perfmodel.scalability` -- the spine-leaf scalability model that
  regenerates Figure 9(f).
"""

from repro.perfmodel.devices import (
    DPDK_CLIENT,
    NETBRICKS_SERVER,
    TOFINO,
    ZOOKEEPER_SERVER,
    DeviceModel,
    scaled_dpdk_host_config,
    scaled_kernel_host_config,
    scaled_switch_config,
    table1_rows,
)
from repro.perfmodel.scalability import ScalabilityPoint, SpineLeafModel, scalability_sweep

__all__ = [
    "DeviceModel",
    "TOFINO",
    "NETBRICKS_SERVER",
    "ZOOKEEPER_SERVER",
    "DPDK_CLIENT",
    "table1_rows",
    "scaled_switch_config",
    "scaled_dpdk_host_config",
    "scaled_kernel_host_config",
    "SpineLeafModel",
    "ScalabilityPoint",
    "scalability_sweep",
]
