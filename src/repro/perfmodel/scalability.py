"""Scalability model for large spine-leaf deployments (Figure 9(f)).

The paper evaluates NetChain at datacenter scale with simulations of
standard spine-leaf networks: 64-port switches at 4 BQPS, 32 servers per
leaf, a non-blocking fabric (spines = leaves / 2), and network sizes from 6
to 96 switches.  The reported metric is the maximum read-only and
write-only throughput of the whole fabric.

The model here mirrors that simulation: keys are assigned to chains of
``f+1`` switches chosen uniformly (consistent hashing spreads virtual nodes
over all switches), clients sit under random leaves, and a query consumes
one pipeline pass at every switch it traverses on its way through the chain
and back.  The fabric's maximum throughput is the aggregate switch capacity
divided by the expected number of passes per query -- reads traverse fewer
switches than writes, which is exactly why the paper's write curve sits
below the read curve while both grow linearly with the number of switches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.perfmodel.devices import TOFINO


@dataclass
class ScalabilityPoint:
    """One point of the Figure 9(f) series."""

    num_switches: int
    num_spines: int
    num_leaves: int
    read_bqps: float
    write_bqps: float
    avg_read_passes: float
    avg_write_passes: float


class SpineLeafModel:
    """Expected-hop-count throughput model of a spine-leaf fabric."""

    def __init__(self, num_spines: int, num_leaves: int,
                 switch_pps: float = TOFINO.packets_per_sec,
                 replication: int = 3, seed: int = 0) -> None:
        if num_spines < 1 or num_leaves < 1:
            raise ValueError("need at least one spine and one leaf")
        self.num_spines = num_spines
        self.num_leaves = num_leaves
        self.switch_pps = switch_pps
        self.replication = replication
        self.rng = random.Random(seed)
        self.spines = [f"spine{i}" for i in range(num_spines)]
        self.leaves = [f"leaf{i}" for i in range(num_leaves)]
        self.switches = self.spines + self.leaves

    @property
    def num_switches(self) -> int:
        return self.num_spines + self.num_leaves

    # ------------------------------------------------------------------ #
    # Path model.
    # ------------------------------------------------------------------ #

    def _is_spine(self, name: str) -> bool:
        return name.startswith("spine")

    def _segment(self, src: str, dst: str) -> List[str]:
        """Switches traversed going from ``src`` to ``dst`` (excluding ``src``,
        including ``dst``), on a shortest path of the two-layer fabric."""
        if src == dst:
            return []
        src_spine, dst_spine = self._is_spine(src), self._is_spine(dst)
        if src_spine and dst_spine:
            # spine -> any leaf -> spine
            via = self.rng.choice(self.leaves)
            return [via, dst]
        if src_spine != dst_spine:
            # adjacent layers: one hop
            return [dst]
        # leaf -> spine -> leaf
        via = self.rng.choice(self.spines)
        return [via, dst]

    def passes_for_query(self, client_leaf: str, visit_sequence: Sequence[str]) -> int:
        """Pipeline passes consumed by one query.

        The query starts at a server under ``client_leaf``, must visit the
        switches of ``visit_sequence`` in order, and returns to the client.
        Every switch traversal (including transit hops) costs one pass.
        """
        passes = 1  # the client's ToR processes the outgoing packet
        current = client_leaf
        for target in list(visit_sequence) + [client_leaf]:
            passes += len(self._segment(current, target))
            current = target
        return passes

    def sample_chain(self) -> List[str]:
        """A chain of ``replication`` distinct switches (consistent hashing
        places virtual nodes uniformly over all switches)."""
        return self.rng.sample(self.switches, self.replication)

    def average_passes(self, write: bool, samples: int = 2000) -> float:
        """Monte-Carlo estimate of passes per read or write query."""
        total = 0
        for _ in range(samples):
            chain = self.sample_chain()
            client_leaf = self.rng.choice(self.leaves)
            sequence = chain if write else [chain[-1]]
            total += self.passes_for_query(client_leaf, sequence)
        return total / samples

    # ------------------------------------------------------------------ #
    # Throughput.
    # ------------------------------------------------------------------ #

    def max_throughput_qps(self, write: bool, samples: int = 2000) -> float:
        """Fabric-wide maximum throughput for a read-only or write-only load."""
        avg_passes = self.average_passes(write=write, samples=samples)
        aggregate_capacity = self.num_switches * self.switch_pps
        return aggregate_capacity / avg_passes

    def evaluate(self, samples: int = 2000) -> ScalabilityPoint:
        """Both series' values for this fabric size."""
        read_passes = self.average_passes(write=False, samples=samples)
        write_passes = self.average_passes(write=True, samples=samples)
        capacity = self.num_switches * self.switch_pps
        return ScalabilityPoint(
            num_switches=self.num_switches,
            num_spines=self.num_spines,
            num_leaves=self.num_leaves,
            read_bqps=capacity / read_passes / 1e9,
            write_bqps=capacity / write_passes / 1e9,
            avg_read_passes=read_passes,
            avg_write_passes=write_passes,
        )


def scalability_sweep(sizes: Optional[Sequence[Tuple[int, int]]] = None,
                      samples: int = 2000, seed: int = 0) -> List[ScalabilityPoint]:
    """Regenerate the Figure 9(f) sweep.

    ``sizes`` is a list of ``(spines, leaves)`` pairs; the default follows
    the paper: non-blocking fabrics from 6 switches (2 spines, 4 leaves) to
    96 switches (32 spines, 64 leaves).
    """
    if sizes is None:
        sizes = [(s, 2 * s) for s in (2, 4, 8, 12, 16, 20, 24, 28, 32)]
    points = []
    for spines, leaves in sizes:
        model = SpineLeafModel(spines, leaves, seed=seed)
        points.append(model.evaluate(samples=samples))
    return points
