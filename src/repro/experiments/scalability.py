"""Scalability experiment: Figure 9(f) (thin wrapper over the perf model).

This driver is purely analytic (the spine-leaf throughput model of
:mod:`repro.perfmodel.scalability`); it builds no deployment, so it has
no backend in the :mod:`repro.deploy` registry -- the dynamic side of the
same claim (live scale-out) is measured by
:mod:`repro.experiments.elasticity` on the ``netchain`` backend."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.perfmodel.scalability import ScalabilityPoint, scalability_sweep


def scalability_experiment(sizes: Optional[Sequence[Tuple[int, int]]] = None,
                           samples: int = 2000, seed: int = 0) -> List[ScalabilityPoint]:
    """Maximum read/write throughput of spine-leaf fabrics from 6 to 96 switches."""
    return scalability_sweep(sizes=sizes, samples=samples, seed=seed)
