"""Table 1: comparison of packet-processing capabilities."""

from __future__ import annotations

from typing import List, Tuple

from repro.perfmodel.devices import table1_rows


def table1() -> List[Tuple[str, str, str, str]]:
    """(device, packets per sec, bandwidth, processing delay) rows of Table 1."""
    return table1_rows()


def format_table1() -> str:
    """A printable rendering of Table 1."""
    header = f"{'Device':<20} {'Packets per sec.':<18} {'Bandwidth':<12} {'Delay':<10}"
    lines = [header, "-" * len(header)]
    for name, pps, bandwidth, delay in table1():
        lines.append(f"{name:<20} {pps:<18} {bandwidth:<12} {delay:<10}")
    return "\n".join(lines)
