"""Application experiment: Figure 11, distributed transactions.

Clients run two-phase locking over a lock service (NetChain CAS locks or
ZooKeeper ephemeral-znode locks) on the contention-index workload of
Section 8.5 and we report committed transactions per second.

The measured durations differ between the two systems because NetChain
transactions complete in a few hundred microseconds while ZooKeeper
transactions take tens of milliseconds; both windows are long enough for
hundreds-to-thousands of transactions per point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.transactions import (
    NetChainTransactionClient,
    TransactionWorkloadConfig,
    ZooKeeperTransactionClient,
    transactions_per_second,
)
from repro.deploy import DeploymentSpec, build_deployment


@dataclass
class TransactionResult:
    """One point of Figure 11."""

    system: str
    contention_index: float
    num_clients: int
    txns_per_sec: float
    aborts: int
    lock_attempts: int

    def abort_rate(self) -> float:
        """Aborted transaction attempts per lock attempt."""
        if self.lock_attempts == 0:
            return 0.0
        return self.aborts / self.lock_attempts


def netchain_transactions(contention_index: float = 0.001,
                          num_clients: int = 100,
                          cold_items: int = 1000,
                          duration: float = 0.02,
                          warmup: float = 0.005,
                          seed: int = 0) -> TransactionResult:
    """Transaction throughput with NetChain as the lock server.

    The transaction rate is bound by per-operation latency (a transaction is
    twenty sequential lock operations), not by the switches' capacity, so
    the deployment runs with the capacity ceilings disabled and realistic
    latencies; the reported rate needs no rescaling.
    """
    config = TransactionWorkloadConfig(contention_index=contention_index,
                                       cold_items=cold_items, seed=seed)
    lock_keys = config.hot_keys() + config.cold_keys()
    deployment = build_deployment(DeploymentSpec(
        backend="netchain", store_size=0, store_slots=len(lock_keys) + 1024,
        extra_keys=lock_keys, seed=seed, unlimited_capacity=True))
    cluster = deployment.cluster
    clients: List[NetChainTransactionClient] = []
    for i, agent in enumerate(deployment.clients(num_clients)):
        clients.append(NetChainTransactionClient(agent, config, client_id=f"txn{i}",
                                                 seed=seed + i))
    for client in clients:
        client.start()
    start = cluster.sim.now
    cluster.run(until=start + warmup + duration)
    for client in clients:
        client.stop()
    rate = transactions_per_second(clients, start + warmup, start + warmup + duration)
    return TransactionResult(system="NetChain", contention_index=contention_index,
                             num_clients=num_clients, txns_per_sec=rate,
                             aborts=sum(c.stats.aborts for c in clients),
                             lock_attempts=sum(c.stats.lock_attempts for c in clients))


def zookeeper_transactions(contention_index: float = 0.001,
                           num_clients: int = 10,
                           cold_items: int = 1000,
                           duration: float = 2.0,
                           warmup: float = 0.5,
                           seed: int = 0) -> TransactionResult:
    """Transaction throughput with ZooKeeper as the lock server.

    As with NetChain, the rate is latency-bound (each lock acquire/release
    is a ZAB write costing milliseconds), so the ensemble runs without the
    capacity ceiling and the reported rate needs no rescaling.
    """
    config = TransactionWorkloadConfig(contention_index=contention_index,
                                       cold_items=cold_items, seed=seed)
    deployment = build_deployment(DeploymentSpec(
        backend="zookeeper", store_size=1, seed=seed, unlimited_capacity=True))
    deployment.ensemble.preload({"/txnlocks": b""})
    clients: List[ZooKeeperTransactionClient] = []
    for i in range(num_clients):
        session = deployment.new_client(i)
        clients.append(ZooKeeperTransactionClient(session, config, client_id=f"txn{i}",
                                                  seed=seed + i))
    for client in clients:
        client.start()
    start = deployment.sim.now
    deployment.sim.run(until=start + warmup + duration)
    for client in clients:
        client.stop()
    rate = transactions_per_second(clients, start + warmup, start + warmup + duration)
    return TransactionResult(system="ZooKeeper", contention_index=contention_index,
                             num_clients=num_clients, txns_per_sec=rate,
                             aborts=sum(c.stats.aborts for c in clients),
                             lock_attempts=sum(c.stats.lock_attempts for c in clients))
