"""Latency experiment: Figure 9(e), latency versus throughput.

The paper separates read and write queries and measures their latency at
increasing offered load.  NetChain's latency is flat (9.7 us with DPDK
clients) all the way to its saturation point because switch processing is
deterministic; ZooKeeper's read latency starts around 170 us and its write
latency around 2.35 ms, both rising as the ensemble approaches saturation.

The drivers here sweep the offered load by varying the number of
closed-loop logical clients and report (throughput, mean latency) pairs for
reads and writes separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.deploy import DeploymentSpec, build_deployment
from repro.workloads.clients import LoadClient, measure_load
from repro.workloads.generators import KeyValueWorkload, WorkloadConfig


@dataclass
class LatencyPoint:
    """One point of the latency-vs-throughput curve."""

    system: str
    op: str
    qps: float
    mean_latency: float

    @property
    def latency_us(self) -> float:
        return self.mean_latency * 1e6

    @property
    def mqps(self) -> float:
        return self.qps / 1e6


def netchain_latency_curve(concurrency_levels: Sequence[int] = (1, 4, 16),
                           num_servers: int = 4,
                           store_size: int = 1000,
                           value_size: int = 64,
                           scale: float = 20000.0,
                           duration: float = 0.2,
                           warmup: float = 0.05,
                           seed: int = 0) -> List[LatencyPoint]:
    """NetChain read and write latency at increasing offered load.

    Latency is a per-query quantity and must not be distorted by the scaled
    capacity model, so this experiment runs with the capacity ceilings
    disabled (the paper's observation is precisely that switch processing is
    deterministic, so latency stays at the client-stack floor of ~9.7 us all
    the way to saturation).  The ``scale`` argument is accepted for API
    symmetry but only affects the reported throughput axis indirectly.
    """
    points: List[LatencyPoint] = []
    for write_ratio, op_name in ((0.0, "read"), (1.0, "write")):
        for concurrency in concurrency_levels:
            deployment = build_deployment(DeploymentSpec(
                backend="netchain", store_size=store_size,
                value_size=value_size, seed=seed, unlimited_capacity=True))
            agents = deployment.clients(num_servers)
            clients = []
            for i, agent in enumerate(agents):
                workload = KeyValueWorkload(WorkloadConfig(store_size=store_size,
                                                           value_size=value_size,
                                                           write_ratio=write_ratio,
                                                           seed=seed + i))
                clients.append(LoadClient(agent, workload, concurrency=concurrency))
            measurement = measure_load(clients, warmup=warmup, duration=duration)
            latency = (measurement.mean_write_latency if write_ratio > 0.5
                       else measurement.mean_read_latency)
            points.append(LatencyPoint(system="NetChain", op=op_name,
                                       qps=measurement.success_qps,
                                       mean_latency=latency))
    return points


def zookeeper_latency_curve(client_counts: Sequence[int] = (1, 10, 50, 100),
                            store_size: int = 500,
                            value_size: int = 64,
                            scale: float = 1000.0,
                            duration: float = 2.0,
                            warmup: float = 0.5,
                            seed: int = 0) -> List[LatencyPoint]:
    """ZooKeeper read and write latency at increasing offered load.

    As with the NetChain curve, latency must not be distorted by the scaled
    capacity model, so the ensemble runs without the capacity ceiling: the
    reported latencies are the protocol floor (kernel stacks, the ZAB quorum
    round and the commit/fsync delay).  The paper additionally observes the
    latencies creeping up as the ensemble saturates; that regime is covered
    by the throughput experiments instead.
    """
    points: List[LatencyPoint] = []
    for write_ratio, op_name in ((0.0, "read"), (1.0, "write")):
        for count in client_counts:
            deployment = build_deployment(DeploymentSpec(
                backend="zookeeper", scale=scale, store_size=store_size,
                value_size=value_size, seed=seed, unlimited_capacity=True))
            clients = []
            for i, kv_client in enumerate(deployment.clients(count)):
                workload = KeyValueWorkload(WorkloadConfig(store_size=store_size,
                                                           value_size=value_size,
                                                           write_ratio=write_ratio,
                                                           seed=seed + i))
                clients.append(LoadClient(kv_client, workload,
                                          concurrency=1))
            measurement = measure_load(clients, warmup=warmup, duration=duration)
            latency = (measurement.mean_write_latency if write_ratio > 0.5
                       else measurement.mean_read_latency)
            points.append(LatencyPoint(system="ZooKeeper", op=op_name,
                                       qps=measurement.success_qps,
                                       mean_latency=latency))
    return points
