"""Throughput experiments: Figures 9(a), 9(b), 9(c) and 9(d).

Each driver builds the testbed deployment, attaches closed-loop load
clients, runs the simulation past a warmup, and reports the saturation
throughput scaled back to the paper's absolute units (MQPS for NetChain,
KQPS for ZooKeeper).

The evaluated quantities:

* ``NetChain(1..4)`` -- throughput with 1..4 client servers generating load
  against the chain ``[S0, S1, S2]``.  The bottleneck is the clients' DPDK
  agents (20.5 MQPS each), so the curve saturates at ~82 MQPS with four
  servers regardless of value size, store size or write ratio.
* ``NetChain(max)`` -- the theoretical chain capacity (2 BQPS in the
  testbed mode where each switch processes every query packet twice).
* ``ZooKeeper`` -- the 3-server ensemble driven by 100 client processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.deploy import DeploymentSpec, NetChainDeployment, ZooKeeperDeployment, build_deployment
from repro.perfmodel.devices import TOFINO
from repro.workloads.clients import LoadClient, measure_load
from repro.workloads.generators import KeyValueWorkload, WorkloadConfig


@dataclass
class ThroughputResult:
    """A measured throughput point."""

    system: str
    qps: float
    #: The parameter values this point was measured at.
    value_size: int
    store_size: int
    write_ratio: float
    loss_rate: float
    num_load_generators: int

    @property
    def mqps(self) -> float:
        return self.qps / 1e6

    @property
    def kqps(self) -> float:
        return self.qps / 1e3


def netchain_max_throughput_qps(chain_length: int = 3,
                                passes_per_switch: int = 2) -> float:
    """NetChain(max): the theoretical maximum of one switch chain.

    In the evaluated testbed mode every query packet is processed twice by
    each chain switch (Section 8.1), so a chain of three 4 BQPS switches
    tops out at 3 * 4 / (3 * 2) = 2 BQPS.
    """
    total_capacity = chain_length * TOFINO.packets_per_sec
    return total_capacity / (chain_length * passes_per_switch)


def adaptive_retry_timeout(concurrency: int, scale: float,
                           client_pps: float = 20.5e6, floor: float = 1e-3) -> float:
    """A client retry timeout compatible with the scale model.

    With a scaled-down client NIC rate, a closed-loop client's own queries
    queue behind each other for roughly ``concurrency * scale / client_pps``
    seconds; the retry timer must sit comfortably above that or healthy
    queries get retried and the measurement collapses.  Loss experiments
    keep the timeout tight enough that lost queries are retried well within
    the measurement window.
    """
    return max(floor, 4.0 * concurrency * scale / client_pps)


def netchain_throughput(num_servers: int = 4,
                        value_size: int = 64,
                        store_size: int = 2000,
                        write_ratio: float = 0.01,
                        loss_rate: float = 0.0,
                        scale: float = 20000.0,
                        duration: float = 0.3,
                        warmup: float = 0.1,
                        concurrency: int = 16,
                        retry_timeout: Optional[float] = None,
                        seed: int = 0,
                        deployment: Optional[NetChainDeployment] = None) -> ThroughputResult:
    """Measure NetChain(num_servers) under the given workload knobs."""
    if retry_timeout is None:
        retry_timeout = adaptive_retry_timeout(concurrency, scale)
    if deployment is None:
        deployment = build_deployment(DeploymentSpec(
            backend="netchain", scale=scale, store_size=store_size,
            value_size=value_size, loss_rate=loss_rate,
            retry_timeout=retry_timeout, seed=seed))
    agents = deployment.clients(num_servers)
    clients = []
    for i, agent in enumerate(agents):
        workload = KeyValueWorkload(WorkloadConfig(store_size=store_size,
                                                   value_size=value_size,
                                                   write_ratio=write_ratio,
                                                   seed=seed + i))
        clients.append(LoadClient(agent, workload, concurrency=concurrency))
    measurement = measure_load(clients, warmup=warmup, duration=duration)
    return ThroughputResult(system=f"NetChain({num_servers})",
                            qps=measurement.scaled_qps(deployment.scale),
                            value_size=value_size, store_size=store_size,
                            write_ratio=write_ratio, loss_rate=loss_rate,
                            num_load_generators=num_servers)


def zookeeper_throughput(num_clients: int = 100,
                         value_size: int = 64,
                         store_size: int = 2000,
                         write_ratio: float = 0.01,
                         loss_rate: float = 0.0,
                         scale: float = 1000.0,
                         duration: float = 3.0,
                         warmup: float = 1.0,
                         seed: int = 0,
                         deployment: Optional[ZooKeeperDeployment] = None) -> ThroughputResult:
    """Measure the ZooKeeper ensemble under the given workload knobs."""
    if deployment is None:
        deployment = build_deployment(DeploymentSpec(
            backend="zookeeper", scale=scale, store_size=store_size,
            value_size=value_size, loss_rate=loss_rate, seed=seed))
    clients: List[LoadClient] = []
    for i, kv_client in enumerate(deployment.clients(num_clients)):
        workload = KeyValueWorkload(WorkloadConfig(store_size=store_size,
                                                   value_size=value_size,
                                                   write_ratio=write_ratio,
                                                   seed=seed + i))
        clients.append(LoadClient(kv_client, workload, concurrency=1))
    measurement = measure_load(clients, warmup=warmup, duration=duration)
    return ThroughputResult(system="ZooKeeper",
                            qps=measurement.scaled_qps(deployment.scale),
                            value_size=value_size, store_size=store_size,
                            write_ratio=write_ratio, loss_rate=loss_rate,
                            num_load_generators=num_clients)


def zookeeper_loss_degradation(loss_rates,
                               num_clients: int = 20,
                               store_size: int = 300,
                               write_ratio: float = 0.01,
                               duration: float = 2.0,
                               warmup: float = 0.5,
                               seed: int = 0) -> dict:
    """Fractional throughput ZooKeeper retains at each packet-loss rate.

    The scale model cannot express both the ensemble's (scaled) capacity
    ceiling and the (unscaled) TCP retransmission stalls in one run: at the
    scaled capacity the ensemble is always the bottleneck and loss-induced
    stalls are invisible.  The loss experiment therefore measures the
    *degradation factor* on a latency-bound deployment (capacity ceilings
    disabled, so each client connection's goodput is governed purely by its
    TCP dynamics) and applies it to the capacity-bound baseline -- the same
    composition the paper's numbers reflect: a fleet of client connections
    whose individual goodput collapses under retransmission timeouts.

    Returns ``{loss_rate: retained_fraction}`` with the 0-loss fraction 1.0.
    """
    rates = {}
    for loss_rate in loss_rates:
        deployment = build_deployment(DeploymentSpec(
            backend="zookeeper", store_size=store_size, loss_rate=loss_rate,
            seed=seed, unlimited_capacity=True))
        clients = []
        for i, kv_client in enumerate(deployment.clients(num_clients)):
            workload = KeyValueWorkload(WorkloadConfig(store_size=store_size,
                                                       value_size=64,
                                                       write_ratio=write_ratio,
                                                       seed=seed + i))
            clients.append(LoadClient(kv_client, workload,
                                      concurrency=1))
        measurement = measure_load(clients, warmup=warmup, duration=duration)
        rates[loss_rate] = measurement.success_qps
    baseline = rates.get(0.0) or max(rates.values())
    if baseline <= 0:
        return {loss: 0.0 for loss in rates}
    return {loss: qps / baseline for loss, qps in rates.items()}


def netchain_server_sweep(max_servers: int = 4, **kwargs) -> List[ThroughputResult]:
    """NetChain(1), NetChain(2), ... NetChain(max_servers) at fixed knobs.

    The deployment is rebuilt per point so each measurement starts from a
    clean simulator state.
    """
    return [netchain_throughput(num_servers=n, **kwargs) for n in range(1, max_servers + 1)]
