"""Deployment builders shared by the experiment drivers (thin shims).

Deployment construction now lives in the pluggable backend registry of
:mod:`repro.deploy`: a declarative :class:`repro.deploy.DeploymentSpec`
is built by its registered backend (``netchain``, ``zookeeper``,
``server-chain``, ``primary-backup``, ``hybrid``) into a
:class:`repro.deploy.Deployment`.  The two historical builder functions
below are deprecated keyword-compatible shims that translate their
arguments into a spec and warn on every call; new code should build specs
directly::

    from repro.deploy import DeploymentSpec, build_deployment
    deployment = build_deployment(DeploymentSpec(backend="netchain",
                                                 scale=20000.0,
                                                 store_size=2000))
"""

from __future__ import annotations

import warnings
from typing import List, Optional

from repro.core.controller import ControllerConfig
from repro.deploy.backends import (
    ZOOKEEPER_SERVER_MSGS_PER_SEC,
    NetChainDeployment,
    ZooKeeperDeployment,
)
from repro.deploy.base import build_deployment
from repro.deploy.spec import DeploymentSpec

__all__ = [
    "ZOOKEEPER_SERVER_MSGS_PER_SEC",
    "NetChainDeployment",
    "ZooKeeperDeployment",
    "build_netchain_deployment",
    "build_zookeeper_deployment",
]


def build_netchain_deployment(scale: float = 20000.0,
                              store_size: int = 2000,
                              value_size: int = 64,
                              num_hosts: int = 4,
                              vnodes_per_switch: int = 4,
                              store_slots: Optional[int] = None,
                              loss_rate: float = 0.0,
                              retry_timeout: float = 500e-6,
                              seed: int = 0,
                              extra_keys: Optional[List[str]] = None,
                              controller_config: Optional[ControllerConfig] = None,
                              unlimited_capacity: bool = False,
                              ) -> NetChainDeployment:
    """Deprecated shim: build the ``netchain`` backend from keyword knobs."""
    warnings.warn(
        "build_netchain_deployment is deprecated; build a "
        "DeploymentSpec(backend='netchain', ...) and pass it to "
        "repro.deploy.build_deployment",
        DeprecationWarning, stacklevel=2)
    options = {}
    if controller_config is not None:
        options["controller_config"] = controller_config
    slots = store_slots if store_slots is not None else max(1024, store_size + 1024)
    spec = DeploymentSpec(backend="netchain", scale=scale, num_hosts=num_hosts,
                          vnodes_per_switch=vnodes_per_switch,
                          store_size=store_size, value_size=value_size,
                          store_slots=slots, loss_rate=loss_rate,
                          retry_timeout=retry_timeout,
                          unlimited_capacity=unlimited_capacity, seed=seed,
                          extra_keys=list(extra_keys or []), options=options)
    return build_deployment(spec)


def build_zookeeper_deployment(scale: float = 1000.0,
                               store_size: int = 2000,
                               value_size: int = 64,
                               num_servers: int = 3,
                               loss_rate: float = 0.0,
                               path_prefix: str = "/kv/",
                               unlimited_capacity: bool = False,
                               seed: int = 0) -> ZooKeeperDeployment:
    """Deprecated shim: build the ``zookeeper`` backend from keyword knobs."""
    warnings.warn(
        "build_zookeeper_deployment is deprecated; build a "
        "DeploymentSpec(backend='zookeeper', ...) and pass it to "
        "repro.deploy.build_deployment",
        DeprecationWarning, stacklevel=2)
    spec = DeploymentSpec(backend="zookeeper", scale=scale,
                          num_hosts=num_servers + 1, replication=num_servers,
                          store_size=store_size, value_size=value_size,
                          loss_rate=loss_rate,
                          unlimited_capacity=unlimited_capacity, seed=seed,
                          options={"path_prefix": path_prefix})
    return build_deployment(spec)
