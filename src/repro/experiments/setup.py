"""Deployment builders shared by the experiment drivers.

Two deployments mirror the paper's testbed (Figure 8):

* **NetChain**: the 4-switch ring with DPDK client hosts attached to S0,
  a chain ``[S0, S1, S2]`` plus the spare switch S3 used for failure
  recovery, all devices scaled by the experiment's ``scale`` factor.
* **ZooKeeper**: the same physical network, but three hosts run the
  ZAB ensemble and the fourth hosts the client processes (Section 8.1 runs
  ZooKeeper on three servers and 100 client processes on the fourth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.zk_client import ZooKeeperClient, ZooKeeperKVClient
from repro.baselines.zookeeper import (
    ZooKeeperConfig,
    ZooKeeperEnsemble,
    build_zookeeper_ensemble,
)
from repro.core.cluster import ClusterConfig, NetChainCluster
from repro.core.controller import ControllerConfig
from repro.netsim.host import HostConfig
from repro.netsim.link import LinkConfig
from repro.netsim.topology import Topology, build_testbed
from repro.perfmodel.devices import (
    KERNEL_STACK_DELAY,
    ZOOKEEPER_COMMIT_DELAY,
    ZOOKEEPER_SERVER,
)

#: Message-processing capacity used for the ZooKeeper servers, calibrated to
#: the measured ensemble throughput (see repro.baselines.zookeeper).
ZOOKEEPER_SERVER_MSGS_PER_SEC = 160e3


@dataclass
class NetChainDeployment:
    """A NetChain cluster plus the knobs the experiment fixed."""

    cluster: NetChainCluster
    scale: float
    keys: List[str] = field(default_factory=list)

    @property
    def sim(self):
        return self.cluster.sim


@dataclass
class ZooKeeperDeployment:
    """A ZooKeeper ensemble on the testbed plus its client host."""

    topology: Topology
    ensemble: ZooKeeperEnsemble
    client_host_names: List[str]
    scale: float
    paths: List[str] = field(default_factory=list)

    @property
    def sim(self):
        return self.topology.sim

    def new_client(self, index: int = 0) -> ZooKeeperClient:
        """A new client session on one of the client hosts, spread over the
        live servers round-robin."""
        host_name = self.client_host_names[index % len(self.client_host_names)]
        host = self.topology.hosts[host_name]
        live = self.ensemble.live_servers()
        server = live[index % len(live)]
        return ZooKeeperClient(host, self.ensemble, server_id=server.server_id)

    def new_kv_client(self, index: int = 0, prefix: str = "/kv/") -> ZooKeeperKVClient:
        """A new session adapted to the unified :class:`KVClient` protocol,
        keyed under the same path prefix the deployment preloaded."""
        return ZooKeeperKVClient(self.new_client(index), prefix=prefix)


def build_netchain_deployment(scale: float = 20000.0,
                              store_size: int = 2000,
                              value_size: int = 64,
                              num_hosts: int = 4,
                              vnodes_per_switch: int = 4,
                              store_slots: Optional[int] = None,
                              loss_rate: float = 0.0,
                              retry_timeout: float = 500e-6,
                              seed: int = 0,
                              extra_keys: Optional[List[str]] = None,
                              controller_config: Optional[ControllerConfig] = None,
                              unlimited_capacity: bool = False,
                              ) -> NetChainDeployment:
    """Build and populate a NetChain testbed deployment.

    ``unlimited_capacity`` disables the scaled packet-rate ceilings on
    switches and host NICs; it is used by latency-bound experiments (the
    transaction benchmark of Figure 11) where capacity is not the binding
    resource and realistic per-query latency is what matters.
    """
    slots = store_slots if store_slots is not None else max(1024, store_size + 1024)
    config = ClusterConfig(scale=scale, num_hosts=num_hosts,
                           vnodes_per_switch=vnodes_per_switch, store_slots=slots,
                           retry_timeout=retry_timeout, seed=seed)
    topology = None
    if unlimited_capacity:
        from repro.netsim.switch import SwitchConfig
        from repro.perfmodel.devices import DPDK_CLIENT, TOFINO
        topology = build_testbed(
            switch_config=SwitchConfig(capacity_pps=None,
                                       pipeline_delay=TOFINO.processing_delay),
            host_config=HostConfig(stack_delay=DPDK_CLIENT.processing_delay, nic_pps=None),
            link_config=LinkConfig(),
            num_hosts=num_hosts,
            seed=seed,
        )
        scale = 1.0
        config.scale = 1.0
    cluster = NetChainCluster(config, topology=topology,
                              controller_config=controller_config)
    keys = cluster.populate(store_size, value_size=value_size)
    if extra_keys:
        cluster.controller.populate(extra_keys)
        keys = keys + list(extra_keys)
    if loss_rate:
        cluster.topology.set_loss_rate(loss_rate)
    return NetChainDeployment(cluster=cluster, scale=scale, keys=keys)


def build_zookeeper_deployment(scale: float = 1000.0,
                               store_size: int = 2000,
                               value_size: int = 64,
                               num_servers: int = 3,
                               loss_rate: float = 0.0,
                               path_prefix: str = "/kv/",
                               unlimited_capacity: bool = False,
                               seed: int = 0) -> ZooKeeperDeployment:
    """Build and preload a ZooKeeper testbed deployment.

    The ensemble servers occupy the first ``num_servers`` hosts; the
    remaining host(s) run the client processes.  Server capacity is modelled
    by the per-server message-processing rate (scaled); host NIC limits are
    disabled so the servers' CPUs are the bottleneck, as in the paper.
    """
    host_config = HostConfig(stack_delay=KERNEL_STACK_DELAY, nic_pps=None)
    topology = build_testbed(host_config=host_config, link_config=LinkConfig(),
                             num_hosts=num_servers + 1, seed=seed)
    from repro.netsim.routing import install_shortest_path_routes
    install_shortest_path_routes(topology)
    if loss_rate:
        topology.set_loss_rate(loss_rate)
    server_rate = None if unlimited_capacity else ZOOKEEPER_SERVER_MSGS_PER_SEC / scale
    if unlimited_capacity:
        scale = 1.0
    config = ZooKeeperConfig(server_msgs_per_sec=server_rate,
                             log_sync_delay=ZOOKEEPER_COMMIT_DELAY)
    server_hosts = [topology.hosts[f"H{i}"] for i in range(num_servers)]
    ensemble = build_zookeeper_ensemble(server_hosts, config)
    paths = [f"{path_prefix}k{i:08d}" for i in range(store_size)]
    ensemble.preload({path: bytes(value_size) for path in paths})
    client_hosts = [f"H{i}" for i in range(num_servers, len(topology.hosts))]
    return ZooKeeperDeployment(topology=topology, ensemble=ensemble,
                               client_host_names=client_hosts, scale=scale, paths=paths)
