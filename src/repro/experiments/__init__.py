"""Experiment drivers: one module per figure/table of the evaluation.

Every public function here regenerates the data series behind one paper
figure or table (Section 8), using the simulated testbed and the scale
model described in DESIGN.md.  The benchmark suite under ``benchmarks/``
calls these drivers and prints the same rows/series the paper reports;
EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from repro.deploy import (
    DeploymentSpec,
    ScenarioChecks,
    ScenarioResult,
    WorkloadSpec,
    available_backends,
    build_deployment,
    run_scenario,
)
from repro.experiments.elasticity import (
    ElasticityTimeline,
    ReconfigScenarioResult,
    elasticity_experiment,
    run_reconfig_scenario,
)
from repro.experiments.failures import (
    FailureTimeline,
    FaultScenarioResult,
    failure_experiment,
    run_fault_scenario,
)
from repro.experiments.latency import LatencyPoint, netchain_latency_curve, zookeeper_latency_curve
from repro.experiments.scalability import scalability_experiment
from repro.experiments.setup import (
    NetChainDeployment,
    ZooKeeperDeployment,
    build_netchain_deployment,
    build_zookeeper_deployment,
)
from repro.experiments.tables import table1
from repro.experiments.throughput import (
    ThroughputResult,
    netchain_max_throughput_qps,
    netchain_throughput,
    zookeeper_throughput,
)
from repro.experiments.transactions import (
    TransactionResult,
    netchain_transactions,
    zookeeper_transactions,
)

__all__ = [
    "DeploymentSpec",
    "ScenarioChecks",
    "ScenarioResult",
    "WorkloadSpec",
    "available_backends",
    "build_deployment",
    "run_scenario",
    "NetChainDeployment",
    "ZooKeeperDeployment",
    "build_netchain_deployment",
    "build_zookeeper_deployment",
    "ThroughputResult",
    "netchain_throughput",
    "zookeeper_throughput",
    "netchain_max_throughput_qps",
    "LatencyPoint",
    "netchain_latency_curve",
    "zookeeper_latency_curve",
    "FailureTimeline",
    "FaultScenarioResult",
    "failure_experiment",
    "run_fault_scenario",
    "ElasticityTimeline",
    "ReconfigScenarioResult",
    "elasticity_experiment",
    "run_reconfig_scenario",
    "TransactionResult",
    "netchain_transactions",
    "zookeeper_transactions",
    "scalability_experiment",
    "table1",
]
