"""Failure handling experiments: Figure 10 and arbitrary fault scenarios.

The paper fails the middle switch S1 of the chain ``[S0, S1, S2]`` on the
4-switch testbed, with a 50% write workload, and plots one client server's
throughput over time:

* a one-second dip when the failure is injected (the failure-detection
  delay before the controller's failover routine makes the dip visible),
  after which **fast failover** restores full throughput with the
  two-switch chain ``[S0, S2]``;
* a longer **failure recovery** phase in which S3 is synchronized and
  spliced into the chain; with a single virtual group, write queries cannot
  be served while the group is synchronized, so throughput drops by the
  write fraction (half, at 50% writes); with 100 virtual groups only one
  group is unavailable at a time, so the drop is ~0.5%.

Unlike the original analytic driver, the timeline here is produced end to
end by the fault subsystem: the failure is armed on a
:class:`repro.netsim.faults.FaultSchedule`, the controller reacts through
its :class:`repro.core.detector.FailureDetector` (it is never called
directly), and every phase boundary is *observed* from the controller's
event log and recovery reports rather than computed from the input knobs.

:func:`run_fault_scenario` generalizes the same harness to arbitrary
schedules: a paced mixed workload records a full operation history, the
chain invariants are sampled at every fault boundary, and the history is
checked for per-key linearizability afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.client import canonical_key
from repro.core.controller import ControllerConfig
from repro.core.detector import DetectorConfig
from repro.core.history import History, LinearizabilityReport
from repro.deploy import (
    DeploymentSpec,
    NetChainDeployment,
    ScenarioChecks,
    ScenarioResult,
    WorkloadSpec,
    build_deployment,
    run_scenario,
)
from repro.netsim.faults import FaultEvent, FaultSchedule
from repro.netsim.stats import ThroughputTimeSeries
from repro.workloads.clients import LoadClient
from repro.workloads.generators import KeyValueWorkload, WorkloadConfig


@dataclass
class FailureTimeline:
    """Result of one failure-handling run."""

    virtual_groups: int
    scale: float
    #: (time, queries-per-second in simulated units) per bin.
    series: List[Tuple[float, float]] = field(default_factory=list)
    fail_time: float = 0.0
    failover_complete_time: float = 0.0
    recovery_start_time: float = 0.0
    recovery_end_time: float = 0.0
    baseline_qps: float = 0.0
    failover_window_qps: float = 0.0
    recovery_window_qps: float = 0.0
    post_recovery_qps: float = 0.0
    groups_recovered: int = 0
    #: The injector's replayable fault trace for this run.
    fault_trace: List[FaultEvent] = field(default_factory=list)

    def scaled(self, qps: float) -> float:
        """Map a simulated rate back to the paper's absolute units."""
        return qps * self.scale

    def recovery_drop_fraction(self) -> float:
        """Fractional throughput drop during recovery relative to baseline."""
        if self.baseline_qps <= 0:
            return 0.0
        return max(0.0, 1.0 - self.recovery_window_qps / self.baseline_qps)


def failure_experiment(virtual_groups: int = 1,
                       write_ratio: float = 0.5,
                       store_size: int = 1000,
                       scale: float = 20000.0,
                       fail_at: float = 5.0,
                       detection_delay: float = 1.0,
                       recovery_start_delay: float = 5.0,
                       run_after_recovery: float = 5.0,
                       sync_items_per_sec: float = 140.0,
                       bin_width: float = 0.5,
                       concurrency: int = 16,
                       seed: int = 0,
                       max_duration: float = 120.0) -> FailureTimeline:
    """Fail S1 in the chain [S0, S1, S2], recover onto S3, track throughput.

    The failure is injected through a seeded :class:`FaultSchedule` and the
    controller reacts through its failure detector, whose probe interval is
    ``detection_delay`` -- the controller notices the failure at the first
    probe after the injection, within one interval, exactly like the
    deliberately slowed detection of the paper's methodology.  All phase
    boundaries in the returned timeline are observed, not assumed.
    """
    controller_config = ControllerConfig(replication=3,
                                         vnodes_per_switch=virtual_groups,
                                         store_slots=max(1024, store_size + 64),
                                         sync_items_per_sec=sync_items_per_sec,
                                         seed=seed)
    from repro.experiments.throughput import adaptive_retry_timeout
    deployment = build_deployment(DeploymentSpec(
        backend="netchain", scale=scale, store_size=store_size,
        vnodes_per_switch=virtual_groups,
        retry_timeout=adaptive_retry_timeout(concurrency, scale), seed=seed,
        options={"controller_config": controller_config}))
    cluster = deployment.cluster
    timeline = FailureTimeline(virtual_groups=virtual_groups, scale=scale)
    series = ThroughputTimeSeries(bin_width=bin_width)
    workload = KeyValueWorkload(WorkloadConfig(store_size=store_size, value_size=64,
                                               write_ratio=write_ratio, seed=seed))
    client = LoadClient(cluster.agent("H0"), workload, concurrency=concurrency,
                        time_series=series)

    injector = cluster.faults(seed)
    cluster.fault_schedule().at(fail_at, "fail_switch", "S1").arm()
    cluster.start_failure_detector(DetectorConfig(
        probe_interval=detection_delay,
        suspicion_threshold=1,
        auto_recover=True,
        recovery_start_delay=recovery_start_delay,
        new_switch="S3"))

    client.start()
    # Run in slices until the controller reports the recovery finished.
    now = 0.0
    recovery_end: Optional[float] = None
    while now < max_duration:
        now = min(now + 1.0, max_duration)
        cluster.run(until=now)
        reports = cluster.controller.recovery_reports
        if reports and reports[-1].finished_at > 0:
            recovery_end = reports[-1].finished_at
            break
    if recovery_end is None:
        recovery_end = now
    cluster.run(until=recovery_end + run_after_recovery)
    client.stop()
    cluster.run(until=recovery_end + run_after_recovery + 0.05)

    # Observed phase boundaries: injection from the fault trace, failover
    # from the controller's event log, recovery from its report.
    fail_events = [e for e in injector.trace if e.kind == "switch_fail"]
    timeline.fail_time = fail_events[0].time if fail_events else fail_at
    failovers = [t for t, message in cluster.controller.events
                 if message.startswith("fast failover")]
    timeline.failover_complete_time = failovers[0] if failovers else timeline.fail_time
    reports = cluster.controller.recovery_reports
    if reports:
        timeline.recovery_start_time = reports[-1].started_at
        timeline.groups_recovered = reports[-1].groups_recovered
    else:
        # No recovery happened within max_duration: leave the window empty
        # (rate_between over an empty window is 0) instead of letting the
        # 0.0 default span the healthy baseline.
        timeline.recovery_start_time = recovery_end
    timeline.recovery_end_time = recovery_end
    timeline.fault_trace = list(injector.trace)

    timeline.series = series.series()
    fail_time = timeline.fail_time
    timeline.baseline_qps = client.successes.rate_between(fail_time * 0.5, fail_time)
    failover_end = max(timeline.failover_complete_time, fail_time + 1e-9)
    timeline.failover_window_qps = client.successes.rate_between(fail_time, failover_end)
    timeline.recovery_window_qps = client.successes.rate_between(
        timeline.recovery_start_time, recovery_end)
    timeline.post_recovery_qps = client.successes.rate_between(
        recovery_end + 0.5, recovery_end + run_after_recovery)
    return timeline


# --------------------------------------------------------------------- #
# Generic fault scenarios with consistency checking.
# --------------------------------------------------------------------- #

@dataclass
class FaultScenarioResult:
    """Outcome of one scheduled fault scenario under recorded load."""

    seed: int
    duration: float
    completed_ops: int = 0
    failed_ops: int = 0
    #: The injector's replayable trace; identical across same-seed reruns.
    fault_trace: List[FaultEvent] = field(default_factory=list)
    #: Chain-invariant violations sampled at each fault boundary and once
    #: at the end of the run (empty == consistent).
    invariant_violations: List[str] = field(default_factory=list)
    history: Optional[History] = None
    linearizability: Optional[LinearizabilityReport] = None
    #: Run directory with the spilled NDJSON history (spill mode only).
    run_dir: Optional[str] = None
    #: Keys whose verdict came from the memoized cache (spill mode only).
    verdict_cache_hits: int = 0
    #: Per-link delivery/drop counters, keyed by link name.
    drop_report: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: The deployment the scenario ran on (controller, detector, agents).
    deployment: Optional[NetChainDeployment] = None

    def trace_signature(self) -> List[Tuple[float, str, str, str]]:
        return [event.signature() for event in self.fault_trace]

    def consistent(self) -> bool:
        """No invariant violation and a linearizable history."""
        if self.invariant_violations:
            return False
        if self.linearizability is None:
            return True
        return self.linearizability.ok and not self.linearizability.exhausted_keys()


def run_fault_scenario(build_schedule: Callable[..., FaultSchedule],
                       seed: int = 0,
                       duration: float = 3.0,
                       num_clients: int = 3,
                       concurrency: int = 2,
                       think_time: float = 1e-3,
                       store_size: int = 24,
                       write_ratio: float = 0.4,
                       virtual_groups: int = 2,
                       sync_items_per_sec: float = 2000.0,
                       detector_config: Optional[DetectorConfig] = None,
                       deployment: Optional[NetChainDeployment] = None,
                       drain: float = 0.5,
                       value_size: int = 32,
                       history_mode: str = "memory",
                       run_dir=None,
                       ) -> FaultScenarioResult:
    """Run one seeded fault schedule under a recorded mixed workload.

    ``build_schedule(schedule, cluster)`` receives an un-armed
    :class:`FaultSchedule` over the deployment's injector (plus the cluster
    for trigger predicates) and returns it with the scenario's events
    added; the harness arms it, starts the failure detector, drives paced
    load clients on every host, samples the chain invariants at every
    fault boundary, and checks the recorded history for linearizability.
    Builders that only need the schedule may take a single argument.

    Everything stochastic -- workload key/op choices, fault models,
    controller replacement choices -- derives from ``seed``, so the whole
    scenario (including the fault trace) replays byte-identically.

    This is a thin wrapper over :func:`repro.deploy.run_scenario`: it
    translates the historical keyword surface into a
    :class:`DeploymentSpec` + :class:`WorkloadSpec` +
    :class:`ScenarioChecks` triple (the same one a matrix cell
    serializes) and repackages the unified result.
    """
    spec = fault_scenario_spec(seed=seed, store_size=store_size,
                               value_size=value_size,
                               virtual_groups=virtual_groups,
                               sync_items_per_sec=sync_items_per_sec,
                               detector_config=detector_config)
    workload = WorkloadSpec(num_clients=num_clients, concurrency=concurrency,
                            write_ratio=write_ratio, think_time=think_time,
                            duration=duration, drain=drain)
    checks = ScenarioChecks(history_mode=history_mode, run_dir=run_dir,
                            require_progress=False, chain_invariants=True)
    scenario = run_scenario(spec, workload, checks, deployment=deployment,
                            schedule_builder=build_schedule)
    result = FaultScenarioResult(seed=seed, duration=duration)
    _fill_from_scenario(result, scenario)
    return result


def fault_scenario_spec(seed: int = 0,
                        store_size: int = 24,
                        value_size: int = 32,
                        virtual_groups: int = 2,
                        sync_items_per_sec: float = 2000.0,
                        detector_config: Optional[DetectorConfig] = None,
                        faults: Optional[List[Tuple]] = None,
                        ) -> DeploymentSpec:
    """The harness's NetChain deployment spec, reusable by matrix grids.

    Construction parameters are identical to the historical in-line
    builder (controller seed, store slots, retry timeout), so same-seed
    runs through the wrapper and through older revisions replay the same
    histories.
    """
    controller_config = ControllerConfig(replication=3,
                                         vnodes_per_switch=virtual_groups,
                                         store_slots=max(1024, store_size + 64),
                                         sync_items_per_sec=sync_items_per_sec,
                                         seed=seed)
    return DeploymentSpec(
        backend="netchain", scale=1000.0, store_size=store_size,
        value_size=value_size, vnodes_per_switch=virtual_groups,
        retry_timeout=200e-6, seed=seed, faults=list(faults or []),
        options={"controller_config": controller_config,
                 "detector_config": detector_config or DetectorConfig(
                     probe_interval=50e-3, suspicion_threshold=2)})


def _fill_from_scenario(result, scenario: ScenarioResult) -> None:
    """Copy the unified scenario outcome into a legacy result dataclass."""
    result.completed_ops = scenario.completed_ops
    result.failed_ops = scenario.failed_ops
    result.fault_trace = scenario.fault_trace
    result.invariant_violations = scenario.invariant_violations
    result.history = scenario.history
    result.linearizability = scenario.linearizability
    result.run_dir = str(scenario.run_dir) if scenario.run_dir is not None \
        else None
    result.verdict_cache_hits = scenario.verdict_cache_hits
    result.drop_report = scenario.drop_report
    result.deployment = scenario.deployment


def history_key(key) -> bytes:
    """The canonical bytes form a :class:`History` records keys under.

    Normalization happens once, at record time (:func:`canonical_key`), so
    initial-state snapshots built here match the per-key streams of both
    the in-memory history and a spilled NDJSON run.
    """
    return canonical_key(key)
