"""Failure handling experiment: Figure 10.

The paper fails the middle switch S1 of the chain ``[S0, S1, S2]`` on the
4-switch testbed, with a 50% write workload, and plots one client server's
throughput over time:

* a one-second dip when the failure is injected (a one-second delay is
  deliberately added before the controller's failover routine so the dip is
  visible), after which **fast failover** restores full throughput with the
  two-switch chain ``[S0, S2]``;
* a longer **failure recovery** phase in which S3 is synchronized and
  spliced into the chain; with a single virtual group, write queries cannot
  be served while the group is synchronized, so throughput drops by the
  write fraction (half, at 50% writes); with 100 virtual groups only one
  group is unavailable at a time, so the drop is ~0.5%.

The driver reproduces the same timeline (optionally compressed so the
simulation stays cheap) and returns the per-bin throughput series together
with aggregate statistics over each phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.controller import ControllerConfig
from repro.experiments.setup import NetChainDeployment, build_netchain_deployment
from repro.netsim.stats import ThroughputTimeSeries
from repro.workloads.clients import LoadClient
from repro.workloads.generators import KeyValueWorkload, WorkloadConfig


@dataclass
class FailureTimeline:
    """Result of one failure-handling run."""

    virtual_groups: int
    scale: float
    #: (time, queries-per-second in simulated units) per bin.
    series: List[Tuple[float, float]] = field(default_factory=list)
    fail_time: float = 0.0
    failover_complete_time: float = 0.0
    recovery_start_time: float = 0.0
    recovery_end_time: float = 0.0
    baseline_qps: float = 0.0
    failover_window_qps: float = 0.0
    recovery_window_qps: float = 0.0
    post_recovery_qps: float = 0.0
    groups_recovered: int = 0

    def scaled(self, qps: float) -> float:
        """Map a simulated rate back to the paper's absolute units."""
        return qps * self.scale

    def recovery_drop_fraction(self) -> float:
        """Fractional throughput drop during recovery relative to baseline."""
        if self.baseline_qps <= 0:
            return 0.0
        return max(0.0, 1.0 - self.recovery_window_qps / self.baseline_qps)


def failure_experiment(virtual_groups: int = 1,
                       write_ratio: float = 0.5,
                       store_size: int = 1000,
                       scale: float = 20000.0,
                       fail_at: float = 5.0,
                       detection_delay: float = 1.0,
                       recovery_start_delay: float = 5.0,
                       run_after_recovery: float = 5.0,
                       sync_items_per_sec: float = 140.0,
                       bin_width: float = 0.5,
                       concurrency: int = 16,
                       seed: int = 0,
                       max_duration: float = 120.0) -> FailureTimeline:
    """Fail S1 in the chain [S0, S1, S2], recover onto S3, track throughput.

    The default timeline is compressed relative to the paper's 200-second
    run (the store is smaller, so state synchronization finishes sooner);
    the phases and their relative effects are preserved.
    """
    controller_config = ControllerConfig(replication=3,
                                         vnodes_per_switch=virtual_groups,
                                         store_slots=max(1024, store_size + 64),
                                         sync_items_per_sec=sync_items_per_sec,
                                         seed=seed)
    from repro.experiments.throughput import adaptive_retry_timeout
    deployment = build_netchain_deployment(scale=scale, store_size=store_size,
                                           vnodes_per_switch=virtual_groups,
                                           retry_timeout=adaptive_retry_timeout(concurrency,
                                                                                scale),
                                           controller_config=controller_config, seed=seed)
    cluster = deployment.cluster
    timeline = FailureTimeline(virtual_groups=virtual_groups, scale=scale)
    series = ThroughputTimeSeries(bin_width=bin_width)
    workload = KeyValueWorkload(WorkloadConfig(store_size=store_size, value_size=64,
                                               write_ratio=write_ratio, seed=seed))
    client = LoadClient(cluster.agent("H0"), workload, concurrency=concurrency,
                        time_series=series)

    timeline.fail_time = fail_at
    cluster.fail_switch("S1", at=fail_at, new_switch="S3", recover=True,
                        detection_delay=detection_delay,
                        recovery_start_delay=recovery_start_delay)
    client.start()
    # Run in slices until the controller reports the recovery finished.
    recovery_started = fail_at + detection_delay + recovery_start_delay
    timeline.failover_complete_time = fail_at + detection_delay
    timeline.recovery_start_time = recovery_started
    now = 0.0
    recovery_end: Optional[float] = None
    while now < max_duration:
        now = min(now + 1.0, max_duration)
        cluster.run(until=now)
        reports = cluster.controller.recovery_reports
        if reports and reports[-1].finished_at > 0:
            recovery_end = reports[-1].finished_at
            break
    if recovery_end is None:
        recovery_end = now
    timeline.recovery_end_time = recovery_end
    cluster.run(until=recovery_end + run_after_recovery)
    client.stop()
    cluster.run(until=recovery_end + run_after_recovery + 0.05)

    timeline.series = series.series()
    timeline.groups_recovered = (cluster.controller.recovery_reports[-1].groups_recovered
                                 if cluster.controller.recovery_reports else 0)
    timeline.baseline_qps = client.successes.rate_between(fail_at * 0.5, fail_at)
    timeline.failover_window_qps = client.successes.rate_between(
        fail_at, fail_at + detection_delay)
    timeline.recovery_window_qps = client.successes.rate_between(
        recovery_started, recovery_end)
    timeline.post_recovery_qps = client.successes.rate_between(
        recovery_end + 0.5, recovery_end + run_after_recovery)
    return timeline
