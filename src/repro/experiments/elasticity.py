"""Elasticity experiments: online scale-out/scale-in under live traffic.

The paper evaluates NetChain's scalability with a static model (Figure
9(f): throughput grows linearly with the number of switches); this module
measures the *dynamic* side of the same claim with the reconfiguration
subsystem (:mod:`repro.core.reconfig`): how a running cluster behaves
while switches join or leave.

Two drivers:

* :func:`run_reconfig_scenario` -- the consistency harness, mirroring
  :func:`repro.experiments.failures.run_fault_scenario`: paced recorded
  load on every host, one or more planned membership changes (optionally
  combined with a fault schedule, e.g. fail-stopping the joining switch
  mid-migration), chain invariants sampled at every migration commit and
  fault boundary, and a per-key linearizability check over the recorded
  history.  Everything derives from one seed and replays byte-identically.

* :func:`elasticity_experiment` -- the scale-out timeline: throughput
  before/during/after growing the membership, with per-group freeze
  windows and the volume of moved keys, which is the operational cost the
  paper's "scale-free" claim hides.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.controller import ControllerConfig
from repro.core.detector import DetectorConfig
from repro.core.history import History, LinearizabilityReport, check_linearizable
from repro.core.history_store import (
    SpillingHistory,
    check_linearizable_streaming,
    default_verdict_cache,
)
from repro.core.invariants import invariant_observer, sample_chain_invariants
from repro.core.reconfig import MigrationCoordinator, MigrationReport, ReconfigConfig
from repro.deploy import DeploymentSpec, NetChainDeployment, build_deployment
from repro.experiments.failures import history_key
from repro.netsim.faults import FaultEvent, FaultSchedule
from repro.netsim.stats import ThroughputTimeSeries
from repro.workloads.clients import LoadClient
from repro.workloads.generators import KeyValueWorkload, WorkloadConfig

#: One planned membership change: (time, joins, leaves).
MembershipChange = Tuple[float, Sequence[str], Sequence[str]]


@dataclass
class ReconfigScenarioResult:
    """Outcome of one reconfiguration scenario under recorded load."""

    seed: int
    duration: float
    completed_ops: int = 0
    failed_ops: int = 0
    #: The fault injector's replayable trace (empty without a schedule).
    fault_trace: List[FaultEvent] = field(default_factory=list)
    #: Invariant violations sampled at every migration commit, fault
    #: boundary, and once at the end (empty == consistent).
    invariant_violations: List[str] = field(default_factory=list)
    history: Optional[History] = None
    linearizability: Optional[LinearizabilityReport] = None
    #: Run directory with the spilled NDJSON history (spill mode only).
    run_dir: Optional[str] = None
    #: Keys whose verdict came from the memoized cache (spill mode only).
    verdict_cache_hits: int = 0
    drop_report: Dict[str, Dict[str, int]] = field(default_factory=dict)
    deployment: Optional[NetChainDeployment] = None
    #: One report per executed membership change, in order.
    migrations: List[MigrationReport] = field(default_factory=list)
    #: Keys that were unreadable at the end of the run (must be empty:
    #: migration loses no keys).
    lost_keys: List[str] = field(default_factory=list)

    def trace_signature(self) -> List[Tuple[float, str, str, str]]:
        return [event.signature() for event in self.fault_trace]

    def migration_signature(self) -> List[Tuple[int, str, str, int]]:
        """Hashable per-step outcome used by replay-identity assertions."""
        return [(step.vgroup, step.kind, step.status, step.keys_moved)
                for report in self.migrations for step in report.steps]

    def consistent(self) -> bool:
        if self.invariant_violations or self.lost_keys:
            return False
        if self.linearizability is None:
            return True
        return self.linearizability.ok and not self.linearizability.exhausted_keys()


def run_reconfig_scenario(changes: Sequence[MembershipChange],
                          seed: int = 0,
                          duration: float = 3.0,
                          num_clients: int = 3,
                          concurrency: int = 2,
                          think_time: float = 1e-3,
                          store_size: int = 24,
                          write_ratio: float = 0.4,
                          virtual_groups: int = 2,
                          sync_items_per_sec: float = 2000.0,
                          reconfig_config: Optional[ReconfigConfig] = None,
                          build_schedule=None,
                          detector_config: Optional[DetectorConfig] = None,
                          drain: float = 0.5,
                          value_size: int = 32,
                          link_new_to: Optional[List[str]] = None,
                          history_mode: str = "memory",
                          run_dir=None,
                          ) -> ReconfigScenarioResult:
    """Run planned membership changes under a recorded mixed workload.

    ``changes`` is a list of ``(time, joins, leaves)``: at each ``time``
    the listed switches are hot-plugged (joins) and a live migration to the
    new membership starts.  ``build_schedule(schedule, cluster)`` may add a
    fault schedule on top, exactly as in
    :func:`repro.experiments.failures.run_fault_scenario` -- fail-stopping
    a switch mid-migration is the interesting combination.

    Everything stochastic derives from ``seed``; two runs with the same
    arguments produce identical fault traces, migration step outcomes and
    operation histories.
    """
    controller_config = ControllerConfig(replication=3,
                                         vnodes_per_switch=virtual_groups,
                                         store_slots=max(1024, store_size + 64),
                                         sync_items_per_sec=sync_items_per_sec,
                                         seed=seed)
    deployment = build_deployment(DeploymentSpec(
        backend="netchain", scale=1000.0, store_size=store_size,
        value_size=value_size, vnodes_per_switch=virtual_groups,
        retry_timeout=200e-6, seed=seed,
        options={"controller_config": controller_config}))
    cluster = deployment.cluster
    controller = cluster.controller
    injector = cluster.faults(seed)
    result = ReconfigScenarioResult(seed=seed, duration=duration)
    observer = invariant_observer(controller, result.invariant_violations)
    injector.observers.append(observer)

    initial: Dict[bytes, Optional[bytes]] = {}
    for key in deployment.keys:
        info = controller.chain_for_key(key)
        item = controller.stores[info.switches[-1]].read(key)
        initial[history_key(key)] = (item.value if item is not None and item.valid
                                     else None)

    if history_mode == "spill":
        import tempfile
        run_dir = run_dir or tempfile.mkdtemp(prefix="reconfig-scenario-")
        history = SpillingHistory(cluster.sim, run_dir, initial=initial,
                                  meta={"harness": "reconfig-scenario",
                                        "seed": seed})
    elif history_mode == "memory":
        history = History(cluster.sim)
    else:
        raise ValueError(f"history_mode must be 'memory' or 'spill', "
                         f"got {history_mode!r}")
    clients: List[LoadClient] = []
    host_names = sorted(cluster.agents)
    for index in range(num_clients):
        tag = f"c{index}"
        workload = KeyValueWorkload(
            WorkloadConfig(store_size=store_size, value_size=value_size,
                           write_ratio=write_ratio, unique_values=True),
            rng=random.Random((seed << 8) + index + 1), tag=tag)
        agent = cluster.agent(host_names[index % len(host_names)])
        clients.append(LoadClient(agent, workload, concurrency=concurrency,
                                  history=history, think_time=think_time,
                                  name=tag))

    if build_schedule is not None:
        import inspect
        if len(inspect.signature(build_schedule).parameters) >= 2:
            schedule: Optional[FaultSchedule] = build_schedule(
                cluster.fault_schedule(), cluster)
        else:
            schedule = build_schedule(cluster.fault_schedule())
        schedule.arm()
    else:
        schedule = None
    cluster.start_failure_detector(detector_config or DetectorConfig(
        probe_interval=50e-3, suspicion_threshold=2))

    coordinators: List[MigrationCoordinator] = []

    def start_change(joins: Sequence[str], leaves: Sequence[str]) -> None:
        for name in joins:
            if name not in cluster.topology.switches:
                cluster.add_switch(name, link_to=link_new_to)
        target = [m for m in controller.ring.switch_names if m not in leaves]
        target += [j for j in joins if j not in target and j not in leaves]
        coordinator = cluster.migrate(target, config=reconfig_config)
        coordinator.observers.append(
            lambda _step: result.invariant_violations.extend(
                sample_chain_invariants(controller, raise_on_violation=False)))
        coordinators.append(coordinator)
        result.migrations.append(coordinator.report)

    for at, joins, leaves in changes:
        cluster.sim.schedule_at(
            at, lambda j=list(joins), l=list(leaves): start_change(j, l))

    for client in clients:
        client.start()
    cluster.run(until=duration)
    for client in clients:
        client.stop()
    cluster.run(until=duration + drain)
    cluster.detector.stop()
    if schedule is not None:
        schedule.cancel()

    if history_mode == "spill":
        result.completed_ops = history.finish().completed_ops
    else:
        result.completed_ops = len(history.completed_ops())
    result.failed_ops = sum(client.failed_queries for client in clients)
    result.fault_trace = list(injector.trace)
    result.drop_report = injector.drop_report()
    result.history = history
    result.deployment = deployment
    injector.observers.remove(observer)

    result.invariant_violations.extend(
        sample_chain_invariants(controller, raise_on_violation=False))
    # Zero lost keys: every key registered in the directory is readable
    # from its current chain tail.
    for key in deployment.keys:
        vgroup = controller.ring.vgroup_for_key(key)
        info = controller.chain_table.get(vgroup)
        store = controller.stores.get(info.switches[-1]) if info is not None else None
        item = store.read(key) if store is not None else None
        if item is None:
            result.lost_keys.append(key)
    if history_mode == "spill":
        result.run_dir = str(history.run_dir)
        result.linearizability = check_linearizable_streaming(
            history.finish(), initial=initial, cache=default_verdict_cache())
        result.verdict_cache_hits = result.linearizability.cache_hits
    else:
        result.linearizability = check_linearizable(history, initial=initial)
    return result


# --------------------------------------------------------------------- #
# The scale-out timeline.
# --------------------------------------------------------------------- #

@dataclass
class ElasticityTimeline:
    """Throughput and migration cost of one planned membership change."""

    joins: List[str]
    leaves: List[str]
    scale: float
    #: (time, queries-per-second in simulated units) per bin.
    series: List[Tuple[float, float]] = field(default_factory=list)
    migration_started: float = 0.0
    migration_finished: float = 0.0
    before_qps: float = 0.0
    during_qps: float = 0.0
    after_qps: float = 0.0
    keys_moved: int = 0
    items_copied: int = 0
    total_freeze_time: float = 0.0
    max_freeze_window: float = 0.0
    groups_migrated: int = 0
    report: Optional[MigrationReport] = None

    def scaled(self, qps: float) -> float:
        return qps * self.scale

    def during_drop_fraction(self) -> float:
        """Fractional throughput dip while the migration ran."""
        if self.before_qps <= 0:
            return 0.0
        return max(0.0, 1.0 - self.during_qps / self.before_qps)


def elasticity_experiment(joins: Sequence[str] = ("S4", "S5", "S6", "S7"),
                          leaves: Sequence[str] = (),
                          store_size: int = 200,
                          write_ratio: float = 0.5,
                          scale: float = 4000.0,
                          migrate_at: float = 1.0,
                          run_after: float = 1.0,
                          virtual_groups: int = 4,
                          sync_items_per_sec: float = 20000.0,
                          concurrency: int = 16,
                          bin_width: float = 0.1,
                          seed: int = 0,
                          max_duration: float = 60.0,
                          reconfig_config: Optional[ReconfigConfig] = None,
                          ) -> ElasticityTimeline:
    """Grow (or shrink) the cluster under closed-loop load and measure the
    cost: throughput before/during/after, keys moved, freeze windows."""
    controller_config = ControllerConfig(replication=3,
                                         vnodes_per_switch=virtual_groups,
                                         store_slots=max(1024, store_size + 64),
                                         sync_items_per_sec=sync_items_per_sec,
                                         seed=seed)
    from repro.experiments.throughput import adaptive_retry_timeout
    deployment = build_deployment(DeploymentSpec(
        backend="netchain", scale=scale, store_size=store_size,
        vnodes_per_switch=virtual_groups,
        retry_timeout=adaptive_retry_timeout(concurrency, scale), seed=seed,
        options={"controller_config": controller_config}))
    cluster = deployment.cluster
    timeline = ElasticityTimeline(joins=list(joins), leaves=list(leaves),
                                  scale=scale)
    series = ThroughputTimeSeries(bin_width=bin_width)
    workload = KeyValueWorkload(WorkloadConfig(store_size=store_size, value_size=64,
                                               write_ratio=write_ratio, seed=seed))
    client = LoadClient(cluster.agent("H0"), workload, concurrency=concurrency,
                        time_series=series)

    coordinators: List[MigrationCoordinator] = []

    def start_migration() -> None:
        for name in joins:
            if name not in cluster.topology.switches:
                cluster.add_switch(name)
        target = [m for m in cluster.controller.ring.switch_names
                  if m not in leaves]
        target += [j for j in joins if j not in target and j not in leaves]
        coordinators.append(cluster.migrate(target, config=reconfig_config))

    cluster.sim.schedule_at(migrate_at, start_migration)
    client.start()
    now = 0.0
    while now < max_duration:
        now = min(now + 0.5, max_duration)
        cluster.run(until=now)
        if coordinators and coordinators[0].done:
            break
    report = coordinators[0].report if coordinators else None
    # A migration that did not finish within max_duration must not rewind
    # the clock (finished_at is still 0.0) or report post-migration stats.
    completed = report is not None and report.done
    end = report.finished_at if completed else now
    cluster.run(until=max(end + run_after, cluster.sim.now))
    client.stop()
    cluster.run(until=max(end + run_after + 0.05, cluster.sim.now))

    timeline.series = series.series()
    if completed:
        timeline.report = report
        timeline.migration_started = report.started_at
        timeline.migration_finished = report.finished_at
        timeline.keys_moved = report.total_keys_moved()
        timeline.items_copied = report.total_items_copied()
        timeline.total_freeze_time = report.total_freeze_time()
        timeline.max_freeze_window = report.max_freeze_window()
        timeline.groups_migrated = len(report.committed_steps())
        timeline.before_qps = client.successes.rate_between(
            migrate_at * 0.5, migrate_at)
        timeline.during_qps = client.successes.rate_between(
            report.started_at, max(report.finished_at, report.started_at + 1e-9))
        timeline.after_qps = client.successes.rate_between(
            end + 0.2, end + run_after)
    return timeline
