"""Elasticity experiments: online scale-out/scale-in under live traffic.

The paper evaluates NetChain's scalability with a static model (Figure
9(f): throughput grows linearly with the number of switches); this module
measures the *dynamic* side of the same claim with the reconfiguration
subsystem (:mod:`repro.core.reconfig`): how a running cluster behaves
while switches join or leave.

Two drivers:

* :func:`run_reconfig_scenario` -- the consistency harness, mirroring
  :func:`repro.experiments.failures.run_fault_scenario`: paced recorded
  load on every host, one or more planned membership changes (optionally
  combined with a fault schedule, e.g. fail-stopping the joining switch
  mid-migration), chain invariants sampled at every migration commit and
  fault boundary, and a per-key linearizability check over the recorded
  history.  Everything derives from one seed and replays byte-identically.

* :func:`elasticity_experiment` -- the scale-out timeline: throughput
  before/during/after growing the membership, with per-group freeze
  windows and the volume of moved keys, which is the operational cost the
  paper's "scale-free" claim hides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.controller import ControllerConfig
from repro.core.detector import DetectorConfig
from repro.core.history import History, LinearizabilityReport
from repro.core.reconfig import MigrationCoordinator, MigrationReport, ReconfigConfig
from repro.deploy import (
    DeploymentSpec,
    NetChainDeployment,
    ScenarioChecks,
    WorkloadSpec,
    build_deployment,
    run_scenario,
)
from repro.experiments.failures import _fill_from_scenario, fault_scenario_spec
from repro.netsim.faults import FaultEvent
from repro.netsim.stats import ThroughputTimeSeries
from repro.workloads.clients import LoadClient
from repro.workloads.generators import KeyValueWorkload, WorkloadConfig

#: One planned membership change: (time, joins, leaves).
MembershipChange = Tuple[float, Sequence[str], Sequence[str]]


@dataclass
class ReconfigScenarioResult:
    """Outcome of one reconfiguration scenario under recorded load."""

    seed: int
    duration: float
    completed_ops: int = 0
    failed_ops: int = 0
    #: The fault injector's replayable trace (empty without a schedule).
    fault_trace: List[FaultEvent] = field(default_factory=list)
    #: Invariant violations sampled at every migration commit, fault
    #: boundary, and once at the end (empty == consistent).
    invariant_violations: List[str] = field(default_factory=list)
    history: Optional[History] = None
    linearizability: Optional[LinearizabilityReport] = None
    #: Run directory with the spilled NDJSON history (spill mode only).
    run_dir: Optional[str] = None
    #: Keys whose verdict came from the memoized cache (spill mode only).
    verdict_cache_hits: int = 0
    drop_report: Dict[str, Dict[str, int]] = field(default_factory=dict)
    deployment: Optional[NetChainDeployment] = None
    #: One report per executed membership change, in order.
    migrations: List[MigrationReport] = field(default_factory=list)
    #: Keys that were unreadable at the end of the run (must be empty:
    #: migration loses no keys).
    lost_keys: List[str] = field(default_factory=list)

    def trace_signature(self) -> List[Tuple[float, str, str, str]]:
        return [event.signature() for event in self.fault_trace]

    def migration_signature(self) -> List[Tuple[int, str, str, int]]:
        """Hashable per-step outcome used by replay-identity assertions."""
        return [(step.vgroup, step.kind, step.status, step.keys_moved)
                for report in self.migrations for step in report.steps]

    def consistent(self) -> bool:
        if self.invariant_violations or self.lost_keys:
            return False
        if self.linearizability is None:
            return True
        return self.linearizability.ok and not self.linearizability.exhausted_keys()


def run_reconfig_scenario(changes: Sequence[MembershipChange],
                          seed: int = 0,
                          duration: float = 3.0,
                          num_clients: int = 3,
                          concurrency: int = 2,
                          think_time: float = 1e-3,
                          store_size: int = 24,
                          write_ratio: float = 0.4,
                          virtual_groups: int = 2,
                          sync_items_per_sec: float = 2000.0,
                          reconfig_config: Optional[ReconfigConfig] = None,
                          build_schedule=None,
                          detector_config: Optional[DetectorConfig] = None,
                          drain: float = 0.5,
                          value_size: int = 32,
                          link_new_to: Optional[List[str]] = None,
                          history_mode: str = "memory",
                          run_dir=None,
                          ) -> ReconfigScenarioResult:
    """Run planned membership changes under a recorded mixed workload.

    ``changes`` is a list of ``(time, joins, leaves)``: at each ``time``
    the listed switches are hot-plugged (joins) and a live migration to the
    new membership starts.  ``build_schedule(schedule, cluster)`` may add a
    fault schedule on top, exactly as in
    :func:`repro.experiments.failures.run_fault_scenario` -- fail-stopping
    a switch mid-migration is the interesting combination.

    Everything stochastic derives from ``seed``; two runs with the same
    arguments produce identical fault traces, migration step outcomes and
    operation histories.

    This is a thin wrapper over :func:`repro.deploy.run_scenario`: the
    membership plan rides ``spec.options["reconfig"]`` (fully
    serializable, so matrix cells can carry the same plan) and the
    unified result is repackaged into the historical dataclass.
    """
    spec = fault_scenario_spec(seed=seed, store_size=store_size,
                               value_size=value_size,
                               virtual_groups=virtual_groups,
                               sync_items_per_sec=sync_items_per_sec,
                               detector_config=detector_config)
    spec.options["reconfig"] = {
        "changes": [(at, list(joins), list(leaves))
                    for at, joins, leaves in changes],
        "config": reconfig_config,
        "link_new_to": list(link_new_to) if link_new_to is not None else None,
    }
    workload = WorkloadSpec(num_clients=num_clients, concurrency=concurrency,
                            write_ratio=write_ratio, think_time=think_time,
                            duration=duration, drain=drain)
    checks = ScenarioChecks(history_mode=history_mode, run_dir=run_dir,
                            require_progress=False, chain_invariants=True,
                            no_lost_keys=True)
    scenario = run_scenario(spec, workload, checks,
                            schedule_builder=build_schedule)
    result = ReconfigScenarioResult(seed=seed, duration=duration)
    _fill_from_scenario(result, scenario)
    result.migrations = scenario.migrations
    result.lost_keys = scenario.lost_keys
    return result


# --------------------------------------------------------------------- #
# The scale-out timeline.
# --------------------------------------------------------------------- #

@dataclass
class ElasticityTimeline:
    """Throughput and migration cost of one planned membership change."""

    joins: List[str]
    leaves: List[str]
    scale: float
    #: (time, queries-per-second in simulated units) per bin.
    series: List[Tuple[float, float]] = field(default_factory=list)
    migration_started: float = 0.0
    migration_finished: float = 0.0
    before_qps: float = 0.0
    during_qps: float = 0.0
    after_qps: float = 0.0
    keys_moved: int = 0
    items_copied: int = 0
    total_freeze_time: float = 0.0
    max_freeze_window: float = 0.0
    groups_migrated: int = 0
    report: Optional[MigrationReport] = None

    def scaled(self, qps: float) -> float:
        return qps * self.scale

    def during_drop_fraction(self) -> float:
        """Fractional throughput dip while the migration ran."""
        if self.before_qps <= 0:
            return 0.0
        return max(0.0, 1.0 - self.during_qps / self.before_qps)


def elasticity_experiment(joins: Sequence[str] = ("S4", "S5", "S6", "S7"),
                          leaves: Sequence[str] = (),
                          store_size: int = 200,
                          write_ratio: float = 0.5,
                          scale: float = 4000.0,
                          migrate_at: float = 1.0,
                          run_after: float = 1.0,
                          virtual_groups: int = 4,
                          sync_items_per_sec: float = 20000.0,
                          concurrency: int = 16,
                          bin_width: float = 0.1,
                          seed: int = 0,
                          max_duration: float = 60.0,
                          reconfig_config: Optional[ReconfigConfig] = None,
                          ) -> ElasticityTimeline:
    """Grow (or shrink) the cluster under closed-loop load and measure the
    cost: throughput before/during/after, keys moved, freeze windows."""
    controller_config = ControllerConfig(replication=3,
                                         vnodes_per_switch=virtual_groups,
                                         store_slots=max(1024, store_size + 64),
                                         sync_items_per_sec=sync_items_per_sec,
                                         seed=seed)
    from repro.experiments.throughput import adaptive_retry_timeout
    deployment = build_deployment(DeploymentSpec(
        backend="netchain", scale=scale, store_size=store_size,
        vnodes_per_switch=virtual_groups,
        retry_timeout=adaptive_retry_timeout(concurrency, scale), seed=seed,
        options={"controller_config": controller_config}))
    cluster = deployment.cluster
    timeline = ElasticityTimeline(joins=list(joins), leaves=list(leaves),
                                  scale=scale)
    series = ThroughputTimeSeries(bin_width=bin_width)
    workload = KeyValueWorkload(WorkloadConfig(store_size=store_size, value_size=64,
                                               write_ratio=write_ratio, seed=seed))
    client = LoadClient(cluster.agent("H0"), workload, concurrency=concurrency,
                        time_series=series)

    coordinators: List[MigrationCoordinator] = []

    def start_migration() -> None:
        for name in joins:
            if name not in cluster.topology.switches:
                cluster.add_switch(name)
        target = [m for m in cluster.controller.ring.switch_names
                  if m not in leaves]
        target += [j for j in joins if j not in target and j not in leaves]
        coordinators.append(cluster.migrate(target, config=reconfig_config))

    cluster.sim.schedule_at(migrate_at, start_migration)
    client.start()
    now = 0.0
    while now < max_duration:
        now = min(now + 0.5, max_duration)
        cluster.run(until=now)
        if coordinators and coordinators[0].done:
            break
    report = coordinators[0].report if coordinators else None
    # A migration that did not finish within max_duration must not rewind
    # the clock (finished_at is still 0.0) or report post-migration stats.
    completed = report is not None and report.done
    end = report.finished_at if completed else now
    cluster.run(until=max(end + run_after, cluster.sim.now))
    client.stop()
    cluster.run(until=max(end + run_after + 0.05, cluster.sim.now))

    timeline.series = series.series()
    if completed:
        timeline.report = report
        timeline.migration_started = report.started_at
        timeline.migration_finished = report.finished_at
        timeline.keys_moved = report.total_keys_moved()
        timeline.items_copied = report.total_items_copied()
        timeline.total_freeze_time = report.total_freeze_time()
        timeline.max_freeze_window = report.max_freeze_window()
        timeline.groups_migrated = len(report.committed_steps())
        timeline.before_qps = client.successes.rate_between(
            migrate_at * 0.5, migrate_at)
        timeline.during_qps = client.successes.rate_between(
            report.started_at, max(report.finished_at, report.started_at + 1e-9))
        timeline.after_qps = client.successes.rate_between(
            end + 0.2, end + run_after)
    return timeline
