"""Core driver for detlint: parse, run rules, apply pragmas, fingerprint.

The engine is deliberately boring: one :func:`ast.parse` per file, parent
links threaded through the tree, a per-file import/alias map shared by all
rules, and a pragma pass that consumes ``# detlint: disable=...`` comments.
Everything stochastic-free and wall-clock-free by construction -- reports
for identical trees are byte-identical, which lets CI diff them.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Path segments never scanned (bytecode caches, the intentionally-broken
#: fixture corpus used to test the rules themselves).
EXCLUDED_SEGMENTS = ("__pycache__",)

#: The fixture corpus is full of deliberate violations; it is opted back in
#: explicitly by the analyzer's own tests via ``include_fixtures=True``.
FIXTURE_MARKER = ("fixtures", "detlint")

PRAGMA_RE = re.compile(
    r"#\s*detlint:\s*(?P<kind>disable-next|disable-file|disable)\s*="
    r"\s*(?P<rules>[A-Za-z0-9_, ]+?)\s*(?:--\s*(?P<why>.*\S))?\s*$"
)

#: Module heads the alias resolver is allowed to track through simple
#: ``name = module`` assignments.  Restricting the set keeps the resolver
#: from mistaking arbitrary attribute chains for module paths.
TRACKED_MODULE_HEADS = (
    "datetime",
    "functools",
    "glob",
    "json",
    "numpy",
    "os",
    "random",
    "secrets",
    "time",
    "uuid",
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    fingerprint: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class Suppression:
    """A finding silenced by a justified inline pragma."""

    finding: Finding
    justification: str


@dataclass
class Pragma:
    kind: str
    rules: Tuple[str, ...]
    justification: str
    line: int
    used: bool = False


@dataclass
class FileResult:
    path: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Suppression] = field(default_factory=list)


@dataclass
class CheckResult:
    """Aggregated outcome of a :func:`check_paths` run."""

    root: str
    paths: List[str]
    files_scanned: int = 0
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Suppression] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        table: Dict[str, int] = {}
        for finding in self.findings:
            table[finding.rule] = table.get(finding.rule, 0) + 1
        return table


class FileContext:
    """Everything a rule needs to inspect one parsed module."""

    def __init__(self, relpath: str, source: str, tree: ast.Module) -> None:
        self.relpath = relpath
        self.parts = tuple(Path(relpath).parts)
        self.filename = Path(relpath).name
        self.source_lines = source.splitlines()
        self.tree = tree
        self._link_parents(tree)
        self.aliases = self._collect_aliases(tree)

    @staticmethod
    def _link_parents(tree: ast.Module) -> None:
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                child._detlint_parent = node  # type: ignore[attr-defined]

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return getattr(node, "_detlint_parent", None)

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return ancestor
        return None

    def enclosing_def(self, node: ast.AST) -> Optional[ast.AST]:
        """Nearest enclosing named function (lambdas are skipped over)."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1]
        return ""

    def _collect_aliases(self, tree: ast.Module) -> Dict[str, str]:
        """Map local names to dotted module paths (imports + simple assigns)."""
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    local = name.asname or name.name.split(".")[0]
                    aliases[local] = name.name if name.asname else name.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for name in node.names:
                    if name.name == "*":
                        continue
                    aliases[name.asname or name.name] = f"{node.module}.{name.name}"
        # One extra pass for ``r = random``-style module re-binding; values
        # must resolve to a tracked module head to count.
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                resolved = self._resolve_with(aliases, node.value)
                if resolved and resolved.split(".")[0] in TRACKED_MODULE_HEADS:
                    aliases[target.id] = resolved
        return aliases

    def _resolve_with(self, aliases: Dict[str, str], node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._resolve_with(aliases, node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted path of a Name/Attribute chain through the alias map.

        ``import numpy as np`` + ``np.random.shuffle`` -> ``numpy.random.shuffle``.
        Returns ``None`` for anything that is not a resolvable chain.
        """
        return self._resolve_with(self.aliases, node)

    def is_builtin_name(self, name: str) -> bool:
        """True when ``name`` still refers to the builtin (never rebound)."""
        if name in self.aliases:
            return False
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if node.name == name:
                    return False
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                if node.id == name:
                    return False
        return True


def _comment_tokens(source: str) -> List[Tuple[int, str]]:
    """``(line, text)`` for every comment token; strings never match."""
    comments: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - ast parsed already
        pass
    return comments


def parse_pragmas(source: str) -> Tuple[List[Pragma], List[Tuple[int, str]]]:
    """Extract pragmas; also return ``(line, message)`` for malformed ones."""
    pragmas: List[Pragma] = []
    bad: List[Tuple[int, str]] = []
    for lineno, text in _comment_tokens(source):
        if "detlint" not in text:
            continue
        match = PRAGMA_RE.search(text)
        if match is None:
            if re.search(r"#\s*detlint\s*:", text):
                bad.append((lineno, "malformed detlint pragma (expected 'disable=DET00X -- why')"))
            continue
        rules = tuple(part.strip() for part in match.group("rules").split(",") if part.strip())
        unknown = [rule for rule in rules if not re.fullmatch(r"DET\d{3}", rule)]
        if unknown:
            bad.append((lineno, f"unknown rule id(s) in pragma: {', '.join(unknown)}"))
            continue
        justification = (match.group("why") or "").strip()
        if not justification:
            bad.append((lineno, "detlint pragma without justification ('-- <why>' is required)"))
            continue
        pragmas.append(Pragma(match.group("kind"), rules, justification, lineno))
    return pragmas, bad


def _fingerprint(rule: str, relpath: str, line_text: str, occurrence: int) -> str:
    payload = f"{rule}\x00{relpath}\x00{line_text.strip()}\x00{occurrence}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def assign_fingerprints(
    relpath: str,
    findings: List[Finding],
    line_of: Dict[int, str],
) -> List[Finding]:
    """Attach content-based fingerprints that survive unrelated line drift.

    The returned list is aligned with the input order; occurrence indexes
    (disambiguating identical source lines) are assigned in source order.
    """
    seen: Dict[Tuple[str, str], int] = {}
    out: List[Optional[Finding]] = [None] * len(findings)
    order = sorted(range(len(findings)), key=lambda i: findings[i].sort_key())
    for index in order:
        finding = findings[index]
        text = line_of.get(finding.line, "")
        bucket = (finding.rule, text.strip())
        occurrence = seen.get(bucket, 0)
        seen[bucket] = occurrence + 1
        out[index] = Finding(
            rule=finding.rule,
            path=relpath,
            line=finding.line,
            col=finding.col,
            message=finding.message,
            fingerprint=_fingerprint(finding.rule, relpath, text, occurrence),
        )
    return [finding for finding in out if finding is not None]


def analyze_file(
    path: Path,
    relpath: str,
    rules: Optional[Sequence] = None,
) -> FileResult:
    """Run every applicable rule over one file and fold in pragmas."""
    from repro.analysis.rules import RULES

    active_rules = RULES if rules is None else rules
    result = FileResult(path=relpath)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        result.findings.append(
            Finding("DET000", relpath, 1, 0, f"unreadable file: {exc}", "")
        )
        result.findings = assign_fingerprints(relpath, result.findings, {})
        return result
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        result.findings.append(
            Finding("DET000", relpath, exc.lineno or 1, 0, f"syntax error: {exc.msg}", "")
        )
        result.findings = assign_fingerprints(
            relpath, result.findings, dict(enumerate(source.splitlines(), start=1))
        )
        return result

    ctx = FileContext(relpath, source, tree)
    raw: List[Finding] = []
    for rule in active_rules:
        if not rule.applies(ctx):
            continue
        for line, col, message in rule.check(ctx):
            raw.append(Finding(rule.id, relpath, line, col, message, ""))

    pragmas, bad_pragmas = parse_pragmas(source)
    for lineno, message in bad_pragmas:
        raw.append(Finding("DET000", relpath, lineno, 0, message, ""))

    # Partition first (so pragma bookkeeping happens on un-fingerprinted
    # findings), but fingerprint the *combined* set: suppressing one of two
    # identical findings must not renumber the other's occurrence index.
    partition: List[Tuple[Finding, Optional[Pragma]]] = []
    for finding in raw:
        pragma = None
        if finding.rule != "DET000":
            pragma = _matching_pragma(pragmas, finding)
            if pragma is not None:
                pragma.used = True
        partition.append((finding, pragma))

    for pragma in pragmas:
        if not pragma.used:
            partition.append(
                (
                    Finding(
                        "DET000",
                        relpath,
                        pragma.line,
                        0,
                        f"unused suppression for {', '.join(pragma.rules)} (nothing to silence)",
                        "",
                    ),
                    None,
                )
            )

    line_of = dict(enumerate(ctx.source_lines, start=1))
    fingerprinted = assign_fingerprints(relpath, [f for f, _ in partition], line_of)
    for final, (_, pragma) in zip(fingerprinted, partition, strict=True):
        if pragma is None:
            result.findings.append(final)
        else:
            result.suppressed.append(Suppression(final, pragma.justification))
    result.findings.sort(key=Finding.sort_key)
    return result


def _matching_pragma(pragmas: Sequence[Pragma], finding: Finding) -> Optional[Pragma]:
    for pragma in pragmas:
        if finding.rule not in pragma.rules:
            continue
        if pragma.kind == "disable" and pragma.line == finding.line:
            return pragma
        if pragma.kind == "disable-next" and pragma.line == finding.line - 1:
            return pragma
        if pragma.kind == "disable-file":
            return pragma
    return None


def iter_python_files(paths: Sequence[Path], include_fixtures: bool = False) -> List[Path]:
    """Deterministically ordered ``.py`` files under the given paths."""
    out: List[Path] = []
    for base in paths:
        if base.is_file():
            candidates = [base]
        else:
            candidates = sorted(base.rglob("*.py"))
        for candidate in candidates:
            parts = candidate.parts
            if any(segment in parts for segment in EXCLUDED_SEGMENTS):
                continue
            if not include_fixtures and _in_fixture_corpus(parts):
                continue
            out.append(candidate)
    return out


def _in_fixture_corpus(parts: Tuple[str, ...]) -> bool:
    for index in range(len(parts) - 1):
        if parts[index : index + 2] == FIXTURE_MARKER:
            return True
    return False


def check_paths(
    paths: Sequence,
    root: Optional[Path] = None,
    include_fixtures: bool = False,
    rules: Optional[Sequence] = None,
) -> CheckResult:
    """Analyze every python file under ``paths``; the public entry point."""
    root = Path.cwd() if root is None else Path(root)
    bases = [Path(p) if Path(p).is_absolute() else root / p for p in paths]
    result = CheckResult(root=str(root), paths=[str(p) for p in paths])
    for path in iter_python_files(bases, include_fixtures=include_fixtures):
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        file_result = analyze_file(path, relpath, rules=rules)
        result.files_scanned += 1
        result.findings.extend(file_result.findings)
        result.suppressed.extend(file_result.suppressed)
    result.findings.sort(key=Finding.sort_key)
    result.suppressed.sort(key=lambda s: s.finding.sort_key())
    return result
