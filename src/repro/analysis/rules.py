"""The detlint rule set: eight determinism & hot-path invariants as AST checks.

Each rule is a small class with metadata (used by ``explain`` and the README
rule table) and a ``check(ctx)`` generator yielding ``(line, col, message)``
tuples.  Rules are scoped by path segment -- wall-clock reads are a bug in
sim-time code but the whole point of a benchmark harness -- so the same
invocation can sweep ``src/``, ``benchmarks/`` and ``tests/`` at once.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import FileContext

Finding3 = Tuple[int, int, str]

#: Path segments that mark simulator-owned, sim-time code.
SIM_SEGMENTS = ("repro", "netsim", "core")
#: Path segments for the data-plane hot path (PR-5 discipline applies).
HOT_SEGMENTS = ("netsim", "core")
#: Path segments whose JSON output is a committed or diffed artifact.
ARTIFACT_SEGMENTS = ("repro", "benchmarks")


class Rule:
    """Base class: metadata + path scoping shared by every rule."""

    id = "DET000"
    title = "detlint meta"
    summary = ""
    rationale = ""
    bad_example = ""
    good_example = ""
    #: ``None`` scopes the rule to every scanned file; otherwise the file's
    #: path must contain at least one of these segments.
    scope_segments: Optional[Tuple[str, ...]] = None
    exclude_filenames: Tuple[str, ...] = ()

    def applies(self, ctx: FileContext) -> bool:
        if ctx.filename in self.exclude_filenames:
            return False
        if self.scope_segments is None:
            return True
        return any(segment in ctx.parts for segment in self.scope_segments)

    def check(self, ctx: FileContext) -> Iterator[Finding3]:
        return iter(())

    def scope_doc(self) -> str:
        if self.scope_segments is None:
            return "all scanned files"
        doc = "files under " + " | ".join(f"{s}/" for s in self.scope_segments)
        if self.exclude_filenames:
            doc += " except " + ", ".join(self.exclude_filenames)
        return doc


class MetaRule(Rule):
    """DET000 is emitted by the engine itself; registered here for docs."""

    id = "DET000"
    title = "detlint meta findings"
    summary = "Parse failures, malformed / unjustified / unused pragmas."
    rationale = (
        "Suppressions are part of the determinism contract: every pragma must "
        "carry a justification ('-- <why>') so the next reader knows what "
        "invariant is being waived, and stale pragmas that no longer silence "
        "anything are flagged so the waiver list never rots."
    )
    bad_example = "x = time.time()  # detlint: disable=DET001"
    good_example = "x = time.time()  # detlint: disable=DET001 -- wall clock is the payload"


# ---------------------------------------------------------------------------
# DET001: wall clock & ambient entropy
# ---------------------------------------------------------------------------

WALL_CLOCK_CALLS = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.monotonic": "host monotonic clock",
    "time.monotonic_ns": "host monotonic clock",
    "time.perf_counter": "host performance counter",
    "time.perf_counter_ns": "host performance counter",
    "time.process_time": "host CPU clock",
    "time.process_time_ns": "host CPU clock",
    "time.clock_gettime": "host clock",
    "time.clock_gettime_ns": "host clock",
    "time.localtime": "wall clock",
    "time.gmtime": "wall clock",
    "time.ctime": "wall clock",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "datetime.datetime.today": "wall clock",
    "datetime.date.today": "wall clock",
}

AMBIENT_ENTROPY_CALLS = {
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "uuid.uuid1": "host-derived UUID",
    "uuid.uuid4": "random UUID",
    "secrets.token_bytes": "OS entropy",
    "secrets.token_hex": "OS entropy",
    "secrets.token_urlsafe": "OS entropy",
    "secrets.randbelow": "OS entropy",
    "secrets.randbits": "OS entropy",
    "secrets.choice": "OS entropy",
}


class WallClockRule(Rule):
    id = "DET001"
    title = "wall clock / ambient entropy in sim-time code"
    summary = "time.time()-family, datetime.now(), uuid4(), os.urandom() in simulator code."
    rationale = (
        "Simulator code runs on virtual time (Simulator.now); reading the host "
        "clock or OS entropy makes event timing or emitted artifacts differ "
        "across runs and machines, silently breaking byte-identical seeded "
        "replay.  Benchmark harnesses measure wall clock on purpose and are "
        "outside this rule's scope."
    )
    bad_example = "started = time.time()"
    good_example = "started = sim.now"
    scope_segments = SIM_SEGMENTS

    def check(self, ctx: FileContext) -> Iterator[Finding3]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            kind = WALL_CLOCK_CALLS.get(resolved) or AMBIENT_ENTROPY_CALLS.get(resolved)
            if kind is None:
                continue
            yield (
                node.lineno,
                node.col_offset,
                f"{resolved}() reads {kind}; sim-time code must derive time from "
                "Simulator.now and randomness from a seeded rng",
            )


# ---------------------------------------------------------------------------
# DET002: global / unseeded RNG
# ---------------------------------------------------------------------------

GLOBAL_RNG_FUNCTIONS = {
    "betavariate",
    "binomialvariate",
    "choice",
    "choices",
    "expovariate",
    "gammavariate",
    "gauss",
    "getrandbits",
    "getstate",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "seed",
    "setstate",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
}

NUMPY_SEEDED_CONSTRUCTORS = {
    "Generator",
    "MT19937",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "RandomState",
    "SFC64",
    "SeedSequence",
    "default_rng",
}


class GlobalRngRule(Rule):
    id = "DET002"
    title = "global or unseeded RNG use"
    summary = "random.<fn>() on the module instance, np.random.*, unseeded Random()."
    rationale = (
        "The module-level random instance is shared mutable global state: any "
        "other caller (a library, a test running earlier) advances it, so "
        "results stop being a function of the seed you control.  Every "
        "stochastic component must take an explicitly seeded random.Random "
        "threaded in as a parameter; numpy's global np.random.* plane and "
        "argless Random() / default_rng() are banned for the same reason."
    )
    bad_example = "delay = random.uniform(0.1, 0.2)"
    good_example = "delay = self.rng.uniform(0.1, 0.2)  # rng = random.Random(seed)"
    scope_segments = None  # determinism discipline applies tree-wide

    def check(self, ctx: FileContext) -> Iterator[Finding3]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            yield from self._check_call(ctx, node, resolved)

    def _check_call(self, ctx: FileContext, node: ast.Call, resolved: str) -> Iterator[Finding3]:
        loc = (node.lineno, node.col_offset)
        if resolved == "random.SystemRandom":
            yield (
                *loc,
                "random.SystemRandom draws OS entropy and can never replay; "
                "use random.Random(seed)",
            )
            return
        if resolved == "random.Random":
            if not node.args and not node.keywords:
                yield (
                    *loc,
                    "unseeded random.Random(): pass an explicit seed derived "
                    "from the scenario seed",
                )
                return
            for seed_arg in list(node.args) + [kw.value for kw in node.keywords]:
                culprit = self._nondeterministic_seed(ctx, seed_arg)
                if culprit is not None:
                    yield (
                        *loc,
                        f"random.Random() seeded from {culprit}; the seed differs "
                        "across processes (PYTHONHASHSEED / ASLR), so replays on "
                        "another machine draw a different stream",
                    )
                    break
            return
        if resolved.startswith("random."):
            tail = resolved.split(".", 1)[1]
            if tail in GLOBAL_RNG_FUNCTIONS:
                yield (
                    *loc,
                    f"random.{tail}() uses the process-global RNG instance; "
                    "thread a seeded random.Random(seed) instead",
                )
            return
        if resolved.startswith("numpy.random."):
            tail = resolved.split(".")[-1]
            if tail in NUMPY_SEEDED_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield (*loc, f"unseeded numpy.random.{tail}(): pass an explicit seed")
                return
            yield (
                *loc,
                f"numpy.random.{tail}() uses numpy's global RNG plane; "
                "use numpy.random.default_rng(seed)",
            )

    def _nondeterministic_seed(self, ctx: FileContext, arg: ast.AST) -> Optional[str]:
        """Name of a process-specific call feeding the seed expression, if any."""
        for node in ast.walk(arg):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id in ("hash", "id"):
                if ctx.is_builtin_name(node.func.id):
                    return f"{node.func.id}()"
            resolved = ctx.resolve(node.func)
            if resolved in WALL_CLOCK_CALLS or resolved in AMBIENT_ENTROPY_CALLS:
                return f"{resolved}()"
        return None


# ---------------------------------------------------------------------------
# DET003: unordered iteration
# ---------------------------------------------------------------------------

DIRECTORY_SCAN_CALLS = ("os.listdir", "os.scandir", "glob.glob", "glob.iglob")
DIRECTORY_SCAN_METHODS = ("glob", "iterdir", "rglob")
SET_RETURNING_METHODS = ("union", "intersection", "difference", "symmetric_difference")
SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
ORDER_SENSITIVE_WRAPPERS = ("list", "tuple", "enumerate")


class UnorderedIterationRule(Rule):
    id = "DET003"
    title = "iteration over unordered containers"
    summary = "for-loops / comprehensions over sets; listdir/glob/iterdir without sorted()."
    rationale = (
        "Set iteration order depends on PYTHONHASHSEED and insertion history; "
        "directory listings depend on the filesystem.  When such an order "
        "feeds event scheduling, hashing or NDJSON emission, two runs of the "
        "same seed diverge.  Wrap the iterable in sorted(...) or iterate an "
        "insertion-ordered structure (dict, list) instead; membership tests "
        "and deterministic aggregates (len, min, max, sum) are fine."
    )
    bad_example = "for key in {a, b, c}: emit(key)"
    good_example = "for key in sorted({a, b, c}): emit(key)"
    scope_segments = ("repro",)

    def check(self, ctx: FileContext) -> Iterator[Finding3]:
        tainted = self._tainted_set_names(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                yield from self._check_iterable(ctx, node.iter, tainted, "for-loop")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_iterable(ctx, generator.iter, tainted, "comprehension")
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, tainted)

    def _check_call(
        self, ctx: FileContext, node: ast.Call, tainted: Dict[ast.AST, Set[str]]
    ) -> Iterator[Finding3]:
        resolved = ctx.resolve(node.func)
        scan_name = None
        if resolved in DIRECTORY_SCAN_CALLS:
            scan_name = resolved
        elif isinstance(node.func, ast.Attribute) and node.func.attr in DIRECTORY_SCAN_METHODS:
            scan_name = f".{node.func.attr}"
        if scan_name is not None and not self._wrapped_in_sorted(ctx, node):
            yield (
                node.lineno,
                node.col_offset,
                f"{scan_name}() order is filesystem-dependent; wrap in sorted(...)",
            )
            return
        if isinstance(node.func, ast.Name) and node.func.id in ORDER_SENSITIVE_WRAPPERS:
            for arg in node.args[:1]:
                if self._is_set_expr(ctx, arg, tainted):
                    yield (
                        arg.lineno,
                        arg.col_offset,
                        f"{node.func.id}() materializes set iteration order; "
                        "use sorted(...) to pin it",
                    )
        if isinstance(node.func, ast.Attribute) and node.func.attr == "join" and node.args:
            if self._is_set_expr(ctx, node.args[0], tainted):
                yield (
                    node.args[0].lineno,
                    node.args[0].col_offset,
                    "str.join over a set concatenates in hash order; sort first",
                )

    def _check_iterable(
        self, ctx: FileContext, iterable: ast.AST, tainted: Dict[ast.AST, Set[str]], where: str
    ) -> Iterator[Finding3]:
        if self._is_set_expr(ctx, iterable, tainted):
            yield (
                iterable.lineno,
                iterable.col_offset,
                f"{where} iterates a set in hash order; wrap in sorted(...) "
                "or use an insertion-ordered container",
            )

    def _wrapped_in_sorted(self, ctx: FileContext, node: ast.AST) -> bool:
        parent = ctx.parent(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in ("sorted", "len", "set", "frozenset", "min", "max", "sum")
        )

    def _scope_of(self, ctx: FileContext, node: ast.AST) -> ast.AST:
        found = ctx.enclosing_def(node)
        return ctx.tree if found is None else found

    def _tainted_set_names(self, ctx: FileContext) -> Dict[ast.AST, Set[str]]:
        """Per-scope names last assigned a set-valued expression."""
        tainted: Dict[ast.AST, Set[str]] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            scope = self._scope_of(ctx, node)
            names = tainted.setdefault(scope, set())
            if self._is_set_expr(ctx, node.value, tainted, literal_only=True):
                names.add(target.id)
            else:
                names.discard(target.id)
        return tainted

    def _is_set_expr(
        self,
        ctx: FileContext,
        node: ast.AST,
        tainted: Dict[ast.AST, Set[str]],
        literal_only: bool = False,
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return not self._wrapped_in_sorted(ctx, node)
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
                return not self._wrapped_in_sorted(ctx, node)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in SET_RETURNING_METHODS
                and self._is_set_expr(ctx, node.func.value, tainted, literal_only)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, SET_BINOPS):
            return self._is_set_expr(ctx, node.left, tainted, literal_only) or self._is_set_expr(
                ctx, node.right, tainted, literal_only
            )
        if not literal_only and isinstance(node, ast.Name):
            scope = self._scope_of(ctx, node)
            if node.id in tainted.get(scope, ()):
                return True
            return scope is not ctx.tree and node.id in tainted.get(ctx.tree, ())
        return False


# ---------------------------------------------------------------------------
# DET004: unsorted JSON artifacts
# ---------------------------------------------------------------------------


class UnsortedJsonRule(Rule):
    id = "DET004"
    title = "json.dumps without sort_keys=True"
    summary = "Artifact writers must emit canonically ordered JSON keys."
    rationale = (
        "Every committed artifact schema (history/v1, trace/v1, perf reports, "
        "benchmark results) promises byte-identical output per seed, which "
        "CI checks with diff/sha256.  Insertion-ordered keys silently break "
        "that the first time a dict is built in a different order; "
        "sort_keys=True makes key order canonical."
    )
    bad_example = 'path.write_text(json.dumps(report, indent=2))'
    good_example = 'path.write_text(json.dumps(report, indent=2, sort_keys=True))'
    scope_segments = ARTIFACT_SEGMENTS

    def check(self, ctx: FileContext) -> Iterator[Finding3]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved not in ("json.dumps", "json.dump"):
                continue
            sorted_kw = None
            for keyword in node.keywords:
                if keyword.arg == "sort_keys":
                    sorted_kw = keyword
            if sorted_kw is None:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{resolved}() without sort_keys=True: key order follows dict "
                    "insertion and is not canonical across code paths",
                )
            elif isinstance(sorted_kw.value, ast.Constant) and sorted_kw.value.value is False:
                yield (
                    sorted_kw.value.lineno,
                    sorted_kw.value.col_offset,
                    f"{resolved}(sort_keys=False) explicitly opts out of canonical "
                    "key order in an artifact writer",
                )


# ---------------------------------------------------------------------------
# DET005: __slots__ drift
# ---------------------------------------------------------------------------


class _SlottedClass:
    def __init__(self, node: ast.ClassDef, slots: Set[str], class_attrs: Set[str]) -> None:
        self.node = node
        self.slots = slots
        self.class_attrs = class_attrs
        self.bases = [b.id if isinstance(b, ast.Name) else None for b in node.bases]


class SlotsDriftRule(Rule):
    id = "DET005"
    title = "__slots__ drift"
    summary = "Slotted classes assigned attributes their __slots__ never declared."
    rationale = (
        "Hot-path classes (Packet, headers, futures, heap entries) are slotted "
        "so per-event allocation stays flat.  Assigning an undeclared "
        "attribute raises AttributeError at runtime -- but only on the code "
        "path that assigns it, which for error paths can be long after the "
        "change shipped.  This rule catches the drift statically, including "
        "assignments from module code onto instances of slotted classes."
    )
    bad_example = "class P:\n    __slots__ = ('a',)\n    def f(self): self.b = 1"
    good_example = "class P:\n    __slots__ = ('a', 'b')\n    def f(self): self.b = 1"
    scope_segments = None

    def check(self, ctx: FileContext) -> Iterator[Finding3]:
        classes = self._module_classes(ctx)
        for info in classes.values():
            effective = self._effective_slots(info, classes, set())
            if effective is None:
                yield from self._check_unslotted_subclass(info, classes)
                continue
            allowed = effective | info.class_attrs
            yield from self._check_methods(info, allowed)
        yield from self._check_instance_assigns(ctx, classes)

    def _check_unslotted_subclass(
        self, info: _SlottedClass, classes: Dict[str, _SlottedClass]
    ) -> Iterator[Finding3]:
        """A slots-free subclass of a slotted base silently regains __dict__."""
        if info.slots is not None:
            return
        for base in info.bases:
            base_info = classes.get(base) if base is not None else None
            if base_info is not None and base_info.slots is not None:
                yield (
                    info.node.lineno,
                    info.node.col_offset,
                    f"{info.node.name} subclasses slotted {base} without declaring "
                    "__slots__; every instance silently regains a per-object "
                    "__dict__, defeating the hot-path memory discipline",
                )
                return

    def _module_classes(self, ctx: FileContext) -> Dict[str, _SlottedClass]:
        classes: Dict[str, _SlottedClass] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            slots = self._declared_slots(node)
            attrs: Set[str] = {"__slots__"}
            for statement in node.body:
                if isinstance(statement, ast.Assign):
                    for target in statement.targets:
                        if isinstance(target, ast.Name):
                            attrs.add(target.id)
                elif isinstance(statement, ast.AnnAssign):
                    if isinstance(statement.target, ast.Name):
                        attrs.add(statement.target.id)
                elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    attrs.add(statement.name)
            if slots is not None:
                classes[node.name] = _SlottedClass(node, slots, attrs)
            else:
                classes[node.name] = _SlottedClass(node, None, attrs)  # type: ignore[arg-type]
        return classes

    def _declared_slots(self, node: ast.ClassDef) -> Optional[Set[str]]:
        dataclass_slots = self._dataclass_slots(node)
        if dataclass_slots is not None:
            return dataclass_slots
        for statement in node.body:
            targets: List[ast.AST] = []
            value = None
            if isinstance(statement, ast.Assign):
                targets, value = statement.targets, statement.value
            elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
                targets, value = [statement.target], statement.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                        names: Set[str] = set()
                        for element in value.elts:
                            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                                names.add(element.value)
                            else:
                                return None  # dynamic __slots__: out of scope
                        return names
                    if isinstance(value, ast.Constant) and isinstance(value.value, str):
                        return {value.value}
                    return None
        return None

    def _dataclass_slots(self, node: ast.ClassDef) -> Optional[Set[str]]:
        """Field names of a ``@dataclass(slots=True)`` class, else ``None``."""
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            func = decorator.func
            label = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            if label != "dataclass":
                continue
            slotted = any(
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in decorator.keywords
            )
            if not slotted:
                continue
            names: Set[str] = set()
            for statement in node.body:
                if isinstance(statement, ast.AnnAssign) and isinstance(
                    statement.target, ast.Name
                ):
                    if not self._is_classvar(statement.annotation):
                        names.add(statement.target.id)
            return names
        return None

    @staticmethod
    def _is_classvar(annotation: ast.AST) -> bool:
        for sub in ast.walk(annotation):
            if isinstance(sub, ast.Name) and sub.id == "ClassVar":
                return True
            if isinstance(sub, ast.Attribute) and sub.attr == "ClassVar":
                return True
        return False

    def _effective_slots(
        self,
        info: _SlottedClass,
        classes: Dict[str, _SlottedClass],
        visiting: Set[str],
    ) -> Optional[Set[str]]:
        """Union of slots up the (module-local) MRO; None = has __dict__ / unknown."""
        if info.slots is None:
            return None
        if info.node.name in visiting:
            return None
        effective = set(info.slots)
        for base in info.bases:
            if base == "object":
                continue
            base_info = classes.get(base) if base is not None else None
            if base_info is None:
                return None  # base defined elsewhere: cannot prove no __dict__
            base_slots = self._effective_slots(
                base_info, classes, visiting | {info.node.name}
            )
            if base_slots is None:
                return None
            effective |= base_slots
            effective |= base_info.class_attrs
        return effective

    def _check_methods(self, info: _SlottedClass, allowed: Set[str]) -> Iterator[Finding3]:
        for statement in info.node.body:
            if not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if self._is_class_or_static(statement):
                continue
            if not statement.args.args:
                continue
            self_name = statement.args.args[0].arg
            for node in ast.walk(statement):
                attr = self._stored_attr(node, self_name)
                if attr is not None and attr not in allowed:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"{info.node.name}.{attr} assigned but missing from __slots__ "
                        f"(declared: {', '.join(sorted(allowed & info.slots)) or 'none'})",
                    )

    @staticmethod
    def _is_class_or_static(statement: ast.AST) -> bool:
        for decorator in statement.decorator_list:
            if isinstance(decorator, ast.Name) and decorator.id in ("classmethod", "staticmethod"):
                return True
        return False

    @staticmethod
    def _stored_attr(node: ast.AST, receiver: str) -> Optional[str]:
        if not isinstance(node, ast.Attribute) or not isinstance(node.ctx, (ast.Store, ast.Del)):
            return None
        if isinstance(node.value, ast.Name) and node.value.id == receiver:
            return node.attr
        return None

    def _check_instance_assigns(
        self, ctx: FileContext, classes: Dict[str, _SlottedClass]
    ) -> Iterator[Finding3]:
        """Catch ``pkt = Packet(...); pkt.oops = 1`` in module / other functions."""
        slotted_allowed: Dict[str, Set[str]] = {}
        for name, info in classes.items():
            effective = self._effective_slots(info, classes, set())
            if effective is not None:
                slotted_allowed[name] = effective | info.class_attrs
        if not slotted_allowed:
            return
        instance_of: Dict[Tuple[ast.AST, str], str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                scope = self._scope_node(ctx, node)
                value = node.value
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in slotted_allowed
                ):
                    instance_of[(scope, target.id)] = value.func.id
                else:
                    instance_of.pop((scope, target.id), None)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute) or not isinstance(node.ctx, ast.Store):
                continue
            if not isinstance(node.value, ast.Name):
                continue
            scope = self._scope_node(ctx, node)
            class_name = instance_of.get((scope, node.value.id))
            if class_name is None:
                continue
            function = self._scope_node(ctx, node)
            if isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if function.args.args and function.args.args[0].arg == node.value.id:
                    continue
            if node.attr not in slotted_allowed[class_name]:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{node.value.id}.{node.attr} assigned but {class_name}.__slots__ "
                    "does not declare it",
                )

    @staticmethod
    def _scope_node(ctx: FileContext, node: ast.AST) -> ast.AST:
        found = ctx.enclosing_def(node)
        return ctx.tree if found is None else found


# ---------------------------------------------------------------------------
# DET006: per-event closures into the scheduler
# ---------------------------------------------------------------------------

SCHEDULER_METHODS = ("call_after", "call_at", "schedule", "schedule_at")
HOT_NAME_HINTS = (
    "packet",
    "receive",
    "recv",
    "deliver",
    "transmit",
    "forward",
    "process",
    "send",
)


class HotPathClosureRule(Rule):
    id = "DET006"
    title = "per-event closure allocation in packet paths"
    summary = "lambda / nested def / functools.partial passed to call_after-family APIs."
    rationale = (
        "The PR-5 hot-path overhaul removed per-hop closure allocation: the "
        "scheduler takes a callback plus positional args, so packet-processing "
        "methods schedule bound methods directly.  A lambda (or partial) per "
        "event reintroduces an allocation + capture cost on every hop.  "
        "Control-plane code (recovery, migration, fault schedules) fires "
        "rarely and is out of scope: only methods whose names mark them as "
        "packet-processing are checked."
    )
    bad_example = "self.sim.call_after(delay, lambda: self.transmit(pkt, port))"
    good_example = "self.sim.call_after(delay, self.transmit, pkt, port)"
    scope_segments = HOT_SEGMENTS

    def check(self, ctx: FileContext) -> Iterator[Finding3]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in SCHEDULER_METHODS:
                continue
            function = ctx.enclosing_def(node)
            if function is None or not self._is_hot_name(function.name):
                continue
            nested = self._nested_defs(function)
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                reason = self._closure_reason(ctx, arg, nested)
                if reason is not None:
                    yield (
                        arg.lineno,
                        arg.col_offset,
                        f"{reason} passed to .{node.func.attr}() inside packet-path "
                        f"method {function.name}(); pass the callback and its args "
                        "positionally instead",
                    )

    @staticmethod
    def _is_hot_name(name: str) -> bool:
        lowered = name.lower()
        return any(hint in lowered for hint in HOT_NAME_HINTS)

    @staticmethod
    def _nested_defs(function: ast.AST) -> Set[str]:
        nested: Set[str] = set()
        for node in ast.walk(function):
            if node is function:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(node.name)
        return nested

    def _closure_reason(
        self, ctx: FileContext, arg: ast.AST, nested: Set[str]
    ) -> Optional[str]:
        if isinstance(arg, ast.Lambda):
            return "per-event lambda"
        if isinstance(arg, ast.Name) and arg.id in nested:
            return f"per-event nested function {arg.id}()"
        if isinstance(arg, ast.Call):
            resolved = ctx.resolve(arg.func)
            if resolved == "functools.partial":
                return "per-event functools.partial"
        return None


# ---------------------------------------------------------------------------
# DET007: unguarded telemetry calls
# ---------------------------------------------------------------------------


class TelemetryGuardRule(Rule):
    id = "DET007"
    title = "telemetry call outside the 'if tel is not None' guard"
    summary = "Instrumented hot sites must bind + guard telemetry before calling it."
    rationale = (
        "The telemetry plane is optional: every instrumented hot site binds "
        "it once (tel = self.telemetry) and guards the call with 'if tel is "
        "not None'.  An unguarded call crashes the moment telemetry is "
        "disabled or detached mid-run -- exactly the configuration the perf "
        "fast path depends on -- and the crash only fires on the untraced "
        "code path, so tests with telemetry enabled never see it."
    )
    bad_example = "self.telemetry.query_tx(self, pending, dst_ip)"
    good_example = "tel = self.telemetry\nif tel is not None:\n    tel.query_tx(...)"
    scope_segments = HOT_SEGMENTS
    exclude_filenames = ("telemetry.py", "trace.py")

    def check(self, ctx: FileContext) -> Iterator[Finding3]:
        for function in ast.walk(ctx.tree):
            if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(ctx, function)

    def _check_function(self, ctx: FileContext, function: ast.AST) -> Iterator[Finding3]:
        tel_names = {"tel"}
        assigned_non_none: List[Tuple[int, str]] = []
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value_is_tel = self._is_telemetry_attr(node.value)
                if isinstance(target, ast.Name) and value_is_tel:
                    tel_names.add(target.id)
                if self._is_telemetry_attr(target) or (
                    isinstance(target, ast.Name) and target.id in tel_names
                ):
                    if not (isinstance(node.value, ast.Constant) and node.value.value is None):
                        if not value_is_tel:
                            assigned_non_none.append((node.lineno, self._subject_dump(target)))
        for node in ast.walk(function):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            receiver = node.func.value
            is_tel_call = self._is_telemetry_attr(receiver) or (
                isinstance(receiver, ast.Name) and receiver.id in tel_names
            )
            if not is_tel_call:
                continue
            subject = self._subject_dump(receiver)
            if self._guarded(ctx, node, function, subject, assigned_non_none):
                continue
            yield (
                node.lineno,
                node.col_offset,
                f"telemetry call .{node.func.attr}() is not guarded by "
                "'if tel is not None'; it crashes when telemetry is disabled",
            )

    @staticmethod
    def _is_telemetry_attr(node: ast.AST) -> bool:
        return isinstance(node, ast.Attribute) and node.attr in ("telemetry", "tel")

    @staticmethod
    def _subject_dump(node: ast.AST) -> str:
        """Normalized spelling of a Name/Attribute chain (ignores Load/Store)."""
        if isinstance(node, ast.Name):
            return f"name:{node.id}"
        if isinstance(node, ast.Attribute):
            return f"{TelemetryGuardRule._subject_dump(node.value)}.{node.attr}"
        return ast.dump(node)

    def _guarded(
        self,
        ctx: FileContext,
        call: ast.Call,
        function: ast.AST,
        subject: str,
        assigned_non_none: List[Tuple[int, str]],
    ) -> bool:
        for lineno, target_dump in assigned_non_none:
            if target_dump == subject and lineno <= call.lineno:
                return True
        child: ast.AST = call
        for ancestor in ctx.ancestors(call):
            if ancestor is function:
                break
            if isinstance(ancestor, ast.If):
                in_body = any(child is stmt or self._contains(stmt, child) for stmt in ancestor.body)
                if in_body and self._test_guards(ancestor.test, subject, positive=True):
                    return True
                if not in_body and self._test_guards(ancestor.test, subject, positive=False):
                    return True
            elif isinstance(ancestor, ast.IfExp):
                if child is ancestor.body and self._test_guards(
                    ancestor.test, subject, positive=True
                ):
                    return True
            elif isinstance(ancestor, ast.BoolOp) and isinstance(ancestor.op, ast.And):
                index = next(
                    (i for i, value in enumerate(ancestor.values) if value is child), None
                )
                if index is not None and any(
                    self._test_guards(value, subject, positive=True)
                    for value in ancestor.values[:index]
                ):
                    return True
            child = ancestor
        return self._early_return_guard(function, call, subject)

    @staticmethod
    def _contains(root: ast.AST, node: ast.AST) -> bool:
        return any(candidate is node for candidate in ast.walk(root))

    def _test_guards(self, test: ast.AST, subject: str, positive: bool) -> bool:
        if positive:
            if self._subject_dump(test) == subject:
                return True
            if isinstance(test, ast.Compare) and len(test.ops) == 1:
                if (
                    isinstance(test.ops[0], ast.IsNot)
                    and isinstance(test.comparators[0], ast.Constant)
                    and test.comparators[0].value is None
                    and self._subject_dump(test.left) == subject
                ):
                    return True
            if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
                return any(self._test_guards(value, subject, True) for value in test.values)
            return False
        # Negative: the call lives in the else-branch of ``if S is None`` /
        # ``if not S``.
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            if (
                isinstance(test.ops[0], ast.Is)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None
                and self._subject_dump(test.left) == subject
            ):
                return True
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._subject_dump(test.operand) == subject
        return False

    def _early_return_guard(self, function: ast.AST, call: ast.Call, subject: str) -> bool:
        """``if tel is None: return`` earlier in the function body."""
        for node in ast.walk(function):
            if not isinstance(node, ast.If) or node.lineno >= call.lineno:
                continue
            if not node.body or node.orelse:
                continue
            if not isinstance(node.body[-1], (ast.Return, ast.Raise, ast.Continue)):
                continue
            if self._test_guards(node.test, subject, positive=False):
                return True
        return False


# ---------------------------------------------------------------------------
# DET008: hash()/id() in ordering or artifacts
# ---------------------------------------------------------------------------

SORTING_CALLS = ("sorted", "min", "max", "sort")


class HashIdentityRule(Rule):
    id = "DET008"
    title = "hash()/id() as sort key or in emitted data"
    summary = "Builtin hash()/id() values are process-specific; never order by or emit them."
    rationale = (
        "id() is a memory address (changes with ASLR and allocation history) "
        "and str/bytes hash() is salted by PYTHONHASHSEED, so both differ "
        "across processes and machines.  Using them as sort keys or storing "
        "them in histories, traces or reports makes otherwise-identical runs "
        "diff dirty.  Derive identity from explicit names or counters "
        "(itertools.count) instead; defining __hash__ for in-process dict "
        "use remains fine."
    )
    bad_example = 'name = f"client-{id(inner):x}"'
    good_example = 'name = f"client-{next(self._client_ids):04d}"'
    scope_segments = ("repro",)

    def check(self, ctx: FileContext) -> Iterator[Finding3]:
        for builtin in ("hash", "id"):
            if not ctx.is_builtin_name(builtin):
                continue
            for node in ast.walk(ctx.tree):
                if (
                    not isinstance(node, ast.Call)
                    or not isinstance(node.func, ast.Name)
                    or node.func.id != builtin
                ):
                    continue
                function = ctx.enclosing_def(node)
                if function is not None and function.name in ("__hash__", "__eq__", "__ne__"):
                    continue
                context = self._context_of(ctx, node)
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{builtin}() is process-specific ({context}); use an explicit "
                    "name or a deterministic counter",
                )

    def _context_of(self, ctx: FileContext, node: ast.AST) -> str:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.keyword) and ancestor.arg == "key":
                call = ctx.parent(ancestor)
                if isinstance(call, ast.Call):
                    callee = call.func
                    name = callee.id if isinstance(callee, ast.Name) else getattr(callee, "attr", "")
                    if name in SORTING_CALLS:
                        return f"used as a {name}() sort key"
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        return "its value can leak into emitted artifacts"


RULES: Sequence[Rule] = (
    MetaRule(),
    WallClockRule(),
    GlobalRngRule(),
    UnorderedIterationRule(),
    UnsortedJsonRule(),
    SlotsDriftRule(),
    HotPathClosureRule(),
    TelemetryGuardRule(),
    HashIdentityRule(),
)


def rule_ids() -> List[str]:
    return [rule.id for rule in RULES]


def rule_by_id(rule_id: str) -> Optional[Rule]:
    for rule in RULES:
        if rule.id == rule_id:
            return rule
    return None
