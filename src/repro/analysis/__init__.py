"""detlint: a determinism & hot-path static-analysis pass for the simulator.

Every guarantee this reproduction makes -- byte-identical seeded replay,
spill files that hash identically across machines, trace directories that
``diff -r`` clean across runs -- rests on coding discipline: thread the
seeded ``rng``, never read wall clock in sim-time code, keep NDJSON keys
sorted, keep hot-path classes slotted.  ``repro.analysis`` turns those
invariants into machine-checked rules over the stdlib ``ast`` module, with
no third-party dependencies.

CLI::

    python -m repro.analysis check src/ benchmarks/ tests/
    python -m repro.analysis explain DET002
    python -m repro.analysis baseline src/ -o analysis/baseline.json

Rules (see ``python -m repro.analysis explain`` for the full docs):

========  ==============================================================
DET000    detlint meta findings (parse errors, bad / unused pragmas)
DET001    wall-clock or ambient-entropy reads in sim-time code
DET002    global or unseeded RNG use
DET003    iteration over unordered containers / unsorted directory scans
DET004    ``json.dumps`` without ``sort_keys=True`` in artifact writers
DET005    slotted classes assigned attributes missing from ``__slots__``
DET006    per-event closures passed to ``call_after``-family scheduling
DET007    telemetry calls outside the ``if tel is not None`` guard
DET008    ``hash()`` / ``id()`` as sort keys or in emitted artifacts
========  ==============================================================

Findings are suppressed inline with a justified pragma::

    x = time.time()  # detlint: disable=DET001 -- wall clock is the payload here

or accepted wholesale via a committed baseline (``analysis/baseline.json``)
so pre-existing findings never block CI while new ones fail it.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.engine import CheckResult, Finding, analyze_file, check_paths
from repro.analysis.report import REPORT_SCHEMA, build_report, format_markdown, format_text
from repro.analysis.rules import RULES, rule_ids

__all__ = [
    "Baseline",
    "CheckResult",
    "Finding",
    "REPORT_SCHEMA",
    "RULES",
    "analyze_file",
    "build_report",
    "check_paths",
    "format_markdown",
    "format_text",
    "rule_ids",
]
