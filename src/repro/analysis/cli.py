"""Command-line interface: ``python -m repro.analysis check|explain|baseline``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import DEFAULT_BASELINE_PATH, Baseline
from repro.analysis.engine import check_paths
from repro.analysis.report import build_report, dump_report, format_markdown, format_text
from repro.analysis.rules import RULES, rule_by_id

DEFAULT_PATHS = ["src", "benchmarks", "tests"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="detlint: determinism & hot-path static analysis for the simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="run every rule and fail on new findings")
    check.add_argument("paths", nargs="*", default=DEFAULT_PATHS, help="files or directories")
    check.add_argument("--root", default=".", help="repository root (paths are relative to it)")
    check.add_argument(
        "--baseline",
        default=None,
        help=f"baseline JSON (default: {DEFAULT_BASELINE_PATH} under --root, if present)",
    )
    check.add_argument("--no-baseline", action="store_true", help="ignore any baseline file")
    check.add_argument("--format", choices=("text", "json"), default="text")
    check.add_argument("-o", "--output", default=None, help="also write the JSON report here")
    check.add_argument(
        "--summary", action="store_true", help="print a markdown summary (for CI step summaries)"
    )
    check.add_argument(
        "--include-fixtures",
        action="store_true",
        help="scan the intentionally-broken tests/fixtures/detlint corpus too",
    )
    check.add_argument(
        "--fail-stale",
        action="store_true",
        help="also fail when baseline entries no longer match any finding",
    )

    explain = sub.add_parser("explain", help="print rule documentation")
    explain.add_argument("rules", nargs="*", help="rule ids (default: all)")

    baseline = sub.add_parser("baseline", help="write the current findings as the baseline")
    baseline.add_argument("paths", nargs="*", default=DEFAULT_PATHS)
    baseline.add_argument("--root", default=".")
    baseline.add_argument("-o", "--output", default=str(DEFAULT_BASELINE_PATH))
    baseline.add_argument("--include-fixtures", action="store_true")
    return parser


def _resolve_baseline(args: argparse.Namespace, root: Path) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = root / DEFAULT_BASELINE_PATH
    return default if default.exists() else None


def _cmd_check(args: argparse.Namespace) -> int:
    root = Path(args.root)
    result = check_paths(args.paths, root=root, include_fixtures=args.include_fixtures)
    baseline_path = _resolve_baseline(args, root)
    baseline = Baseline.load(baseline_path) if baseline_path else Baseline()
    new, baselined, stale = baseline.partition(result.findings)
    report = build_report(
        result, new, baselined, stale, str(baseline_path) if baseline_path else None
    )
    if args.output:
        Path(args.output).write_text(dump_report(report), encoding="utf-8")
    if args.summary:
        sys.stdout.write(format_markdown(result, new, baselined, stale))
    elif args.format == "json":
        sys.stdout.write(dump_report(report))
    else:
        sys.stdout.write(format_text(result, new, baselined, stale))
    if new:
        return 1
    if stale and args.fail_stale:
        return 1
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    wanted: List[str] = args.rules or [rule.id for rule in RULES]
    unknown = [rule_id for rule_id in wanted if rule_by_id(rule_id) is None]
    if unknown:
        sys.stderr.write(f"unknown rule id(s): {', '.join(unknown)}\n")
        return 2
    blocks: List[str] = []
    for rule_id in wanted:
        rule = rule_by_id(rule_id)
        lines = [
            f"{rule.id}: {rule.title}",
            "=" * (len(rule.id) + len(rule.title) + 2),
            "",
            rule.summary,
            "",
            rule.rationale,
            "",
            f"Scope: {rule.scope_doc()}",
        ]
        if rule.bad_example:
            lines += ["", "Bad:"] + [f"    {ln}" for ln in rule.bad_example.splitlines()]
        if rule.good_example:
            lines += ["", "Good:"] + [f"    {ln}" for ln in rule.good_example.splitlines()]
        blocks.append("\n".join(lines))
    sys.stdout.write("\n\n".join(blocks) + "\n")
    return 0


def _cmd_baseline(args: argparse.Namespace) -> int:
    root = Path(args.root)
    result = check_paths(args.paths, root=root, include_fixtures=args.include_fixtures)
    baseline = Baseline.from_findings(result.findings)
    output = Path(args.output)
    if not output.is_absolute():
        output = root / output
    baseline.dump(output)
    sys.stdout.write(
        f"detlint: wrote {len(baseline.entries)} baseline entrie(s) to {output}\n"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "explain":
        return _cmd_explain(args)
    return _cmd_baseline(args)
