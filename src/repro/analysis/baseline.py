"""The committed suppression baseline (``detlint-baseline/v1``).

A baseline freezes the set of findings that existed when the pass was
introduced (or last re-baselined): CI stays green on them while any *new*
finding fails the build.  Entries are keyed by content fingerprints, so
unrelated edits that shift line numbers do not invalidate the baseline,
and fixed findings show up as "stale" entries that should be pruned with
``python -m repro.analysis baseline``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.engine import Finding

BASELINE_SCHEMA = "detlint-baseline/v1"
DEFAULT_BASELINE_PATH = Path("analysis") / "baseline.json"


@dataclass
class Baseline:
    """A set of accepted finding fingerprints, loadable from JSON."""

    entries: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("schema") != BASELINE_SCHEMA:
            raise ValueError(
                f"{path}: expected schema {BASELINE_SCHEMA!r}, got {data.get('schema')!r}"
            )
        entries = {entry["fingerprint"]: entry for entry in data.get("entries", [])}
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        entries: Dict[str, Dict[str, object]] = {}
        for finding in findings:
            entries[finding.fingerprint] = {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
            }
        return cls(entries=entries)

    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[Dict[str, object]]]:
        """Split findings into (new, baselined); also return stale entries."""
        new: List[Finding] = []
        baselined: List[Finding] = []
        matched: Dict[str, bool] = {}
        for finding in findings:
            if finding.fingerprint in self.entries:
                baselined.append(finding)
                matched[finding.fingerprint] = True
            else:
                new.append(finding)
        stale = [
            entry
            for fingerprint, entry in sorted(self.entries.items())
            if fingerprint not in matched
        ]
        return new, baselined, stale

    def dump(self, path: Path) -> None:
        payload = {
            "schema": BASELINE_SCHEMA,
            "entries": [entry for _, entry in sorted(self.entries.items())],
        }
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
