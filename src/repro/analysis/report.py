"""Machine-readable (``detlint-report/v1``) and human output for detlint.

The JSON report is the CI interface: the ``detlint`` job publishes it to the
step summary and archives it as an artifact.  Like every other artifact in
this repository it is emitted with sorted keys and carries no wall-clock
fields, so reports for identical trees are byte-identical.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.engine import CheckResult, Finding, Suppression
from repro.analysis.rules import RULES

REPORT_SCHEMA = "detlint-report/v1"


def _finding_dict(finding: Finding) -> Dict[str, object]:
    return {
        "col": finding.col + 1,
        "fingerprint": finding.fingerprint,
        "line": finding.line,
        "message": finding.message,
        "path": finding.path,
        "rule": finding.rule,
    }


def build_report(
    result: CheckResult,
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Sequence[Dict[str, object]],
    baseline_path: Optional[str] = None,
) -> Dict[str, object]:
    counts: Dict[str, int] = {rule.id: 0 for rule in RULES}
    for finding in result.findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "schema": REPORT_SCHEMA,
        "paths": list(result.paths),
        "files_scanned": result.files_scanned,
        "baseline": baseline_path,
        "counts": counts,
        "findings": [_finding_dict(f) for f in new],
        "baselined": [_finding_dict(f) for f in baselined],
        "suppressed": [
            {**_finding_dict(s.finding), "justification": s.justification}
            for s in result.suppressed
        ],
        "stale_baseline": list(stale),
        "ok": not new,
    }


def dump_report(report: Dict[str, object]) -> str:
    return json.dumps(report, indent=1, sort_keys=True) + "\n"


def format_text(
    result: CheckResult,
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Sequence[Dict[str, object]],
) -> str:
    lines: List[str] = []
    for finding in new:
        lines.append(f"{finding.location()}: {finding.rule}: {finding.message}")
    summary = (
        f"detlint: {len(new)} finding(s) in {result.files_scanned} file(s)"
        f" ({len(baselined)} baselined, {len(result.suppressed)} suppressed by pragma)"
    )
    if stale:
        summary += f"; {len(stale)} stale baseline entrie(s) -- re-run 'baseline' to prune"
    lines.append(summary)
    return "\n".join(lines) + "\n"


def format_markdown(
    result: CheckResult,
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Sequence[Dict[str, object]],
) -> str:
    """A compact table for ``$GITHUB_STEP_SUMMARY``."""
    status = "clean" if not new else f"{len(new)} new finding(s)"
    lines = [
        "## detlint",
        "",
        f"**Status:** {status} -- {result.files_scanned} files scanned, "
        f"{len(baselined)} baselined, {len(result.suppressed)} suppressed by pragma, "
        f"{len(stale)} stale baseline entries.",
        "",
        "| rule | new | baselined | suppressed |",
        "|------|-----|-----------|------------|",
    ]
    for rule in RULES:
        row = (
            sum(1 for f in new if f.rule == rule.id),
            sum(1 for f in baselined if f.rule == rule.id),
            sum(1 for s in result.suppressed if s.finding.rule == rule.id),
        )
        if any(row):
            lines.append(f"| {rule.id} | {row[0]} | {row[1]} | {row[2]} |")
    if new:
        lines.append("")
        lines.append("| location | rule | message |")
        lines.append("|----------|------|---------|")
        for finding in new:
            message = finding.message.replace("|", "\\|")
            lines.append(f"| `{finding.location()}` | {finding.rule} | {message} |")
    return "\n".join(lines) + "\n"
