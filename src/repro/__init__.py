"""NetChain: Scale-Free Sub-RTT Coordination — a Python reproduction.

This package reproduces the system described in "NetChain: Scale-Free
Sub-RTT Coordination" (Jin et al., NSDI 2018): an in-network,
strongly-consistent, fault-tolerant key-value store running in the data
plane of programmable switches, replicated with a variant of chain
replication and reconfigured by a network controller.

Sub-packages:

* :mod:`repro.netsim`      -- the simulated substrate (switches, hosts, links,
  topologies, TCP) that replaces the paper's Tofino testbed.
* :mod:`repro.core`        -- the NetChain protocol: data plane, control plane,
  client agent, coordination primitives and correctness invariants.
* :mod:`repro.baselines`   -- the server-based comparison systems (a
  ZooKeeper-like ensemble, server chain replication, primary-backup).
* :mod:`repro.workloads`   -- workload generators and load-driving clients.
* :mod:`repro.apps`        -- applications (the 2PL transaction benchmark).
* :mod:`repro.perfmodel`   -- device constants (Table 1) and analytic models.
* :mod:`repro.deploy`      -- declarative deployment specs, the pluggable
  backend registry (netchain / zookeeper / server-chain / primary-backup /
  hybrid) and the scenario runner.
* :mod:`repro.experiments` -- drivers that regenerate every figure and table
  of the paper's evaluation.

Quickstart (the unified futures-based client API, :mod:`repro.core.client`)::

    from repro.core import NetChainCluster, ClusterConfig

    cluster = NetChainCluster(ClusterConfig(store_slots=1024))
    session = cluster.session("H0")
    session.insert("hello").result()
    session.write("hello", b"world").result()
    print(session.read("hello").result().value)   # b"world"

    # Pipelined batched submission (one RTT per window, not per op):
    futures = session.batch().read("hello").write("hello", b"!").submit()
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
