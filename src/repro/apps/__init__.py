"""Applications built on the coordination services.

* :mod:`repro.apps.transactions` -- the distributed-transaction benchmark of
  Section 8.5: two-phase locking over a lock service (NetChain or the
  ZooKeeper baseline), driven by a contention-index workload.
"""

from repro.apps.transactions import (
    NetChainTransactionClient,
    TransactionClient,
    TransactionStats,
    TransactionWorkloadConfig,
    ZooKeeperTransactionClient,
)

__all__ = [
    "TransactionWorkloadConfig",
    "TransactionClient",
    "NetChainTransactionClient",
    "ZooKeeperTransactionClient",
    "TransactionStats",
]
