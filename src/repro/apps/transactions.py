"""Distributed transactions with two-phase locking (Section 8.5).

The benchmark is the generalization of TPC-C new-order used by the paper
(after Calvin and VLL): each transaction acquires ten exclusive locks --
one drawn from a small set of *hot* items whose size is the inverse of the
**contention index**, and nine drawn from a very large set -- then releases
them all to commit.  Clients run classic two-phase locking: if any lock
cannot be acquired the transaction releases what it holds, aborts, and
retries.

:class:`TransactionClient` is backend-generic: it drives CAS locks through
the :class:`repro.core.client.KVClient` protocol (acquire = CAS(empty ->
client id); release = CAS(client id -> empty), so a lock can only be
released by its owner) and therefore runs unmodified against NetChain and
against the ZooKeeper adapter.  :class:`ZooKeeperTransactionClient` is the
backend-specialized variant from the paper's methodology -- ephemeral
znodes (acquire = create, release = delete), one round trip per lock
operation instead of the CAS recipe's two -- kept for the Figure 11
reproduction.

All clients are fully asynchronous state machines so that many logical
clients can run concurrently inside the discrete-event simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.baselines.zk_client import ZkResult, ZooKeeperClient
from repro.core.client import KVClient, KVResult
from repro.netsim.stats import IntervalCounter


@dataclass
class TransactionWorkloadConfig:
    """The contention-index workload (Section 8.5)."""

    #: Inverse of the number of hot items; 1.0 means a single hot item.
    contention_index: float = 0.001
    #: Locks acquired per transaction.
    locks_per_txn: int = 10
    #: Size of the large, low-contention item set.
    cold_items: int = 10000
    #: Prefix for hot lock keys.
    hot_prefix: str = "hot"
    #: Prefix for cold lock keys.
    cold_prefix: str = "cold"
    #: RNG seed.
    seed: int = 0

    def num_hot_items(self) -> int:
        """Number of hot items, ``1 / contention_index`` (at least 1)."""
        return max(1, int(round(1.0 / self.contention_index)))

    def hot_keys(self) -> List[str]:
        return [f"{self.hot_prefix}{i:06d}" for i in range(self.num_hot_items())]

    def cold_keys(self) -> List[str]:
        return [f"{self.cold_prefix}{i:08d}" for i in range(self.cold_items)]


@dataclass
class TransactionStats:
    """Per-client transaction counters."""

    committed: IntervalCounter = field(default_factory=IntervalCounter)
    aborts: int = 0
    lock_attempts: int = 0

    def committed_between(self, start: float, end: float) -> int:
        return self.committed.count_between(start, end)


class _TransactionMixin:
    """Shared lock-set selection logic."""

    def __init__(self, config: TransactionWorkloadConfig, client_id: str, seed: int) -> None:
        self.config = config
        self.client_id = client_id
        self.rng = random.Random(seed)
        self.stats = TransactionStats()
        self.running = False
        self._hot = config.hot_keys()
        self._cold = config.cold_keys()

    def _pick_lock_set(self) -> List[str]:
        """One hot lock plus ``locks_per_txn - 1`` distinct cold locks."""
        hot = self._hot[self.rng.randrange(len(self._hot))]
        cold = self.rng.sample(self._cold, self.config.locks_per_txn - 1)
        return [hot] + cold


class TransactionClient(_TransactionMixin):
    """A 2PL transaction client using CAS locks over any :class:`KVClient`."""

    def __init__(self, client: KVClient, config: TransactionWorkloadConfig,
                 client_id: str, seed: int = 0) -> None:
        super().__init__(config, client_id, seed)
        self.client = client
        self._owner = client_id.encode()

    @property
    def sim(self):
        return self.client.sim

    def start(self) -> None:
        """Begin running transactions back to back."""
        self.running = True
        self._begin_txn()

    def stop(self) -> None:
        self.running = False

    # -- transaction state machine -------------------------------------- #

    def _begin_txn(self) -> None:
        if not self.running:
            return
        locks = self._pick_lock_set()
        self._acquire_next(locks, 0, [])

    def _acquire_next(self, locks: List[str], index: int, held: List[str]) -> None:
        if not self.running:
            self._release_all(held, lambda: None)
            return
        if index >= len(locks):
            # All locks held: the transaction commits, then releases.
            self._release_all(held, self._committed)
            return
        key = locks[index]
        self.stats.lock_attempts += 1

        def on_reply(result: KVResult) -> None:
            if result.ok:
                held.append(key)
                self._acquire_next(locks, index + 1, held)
            else:
                # 2PL abort: release everything and retry a fresh transaction.
                self.stats.aborts += 1
                self._release_all(held, self._begin_txn)

        self.client.cas(key, b"", self._owner).then(on_reply)

    def _release_all(self, held: List[str], then) -> None:
        remaining = list(held)
        held.clear()

        def release_next() -> None:
            if not remaining:
                then()
                return
            key = remaining.pop()
            self.client.cas(key, self._owner, b"").then(lambda _r: release_next())

        release_next()

    def _committed(self) -> None:
        self.stats.committed.record(self.sim.now)
        self._begin_txn()


class NetChainTransactionClient(TransactionClient):
    """Compatibility name: the generic CAS client driving a NetChain agent."""

    def __init__(self, agent, config: TransactionWorkloadConfig,
                 client_id: str, seed: int = 0) -> None:
        super().__init__(agent, config, client_id, seed)
        self.agent = agent


class ZooKeeperTransactionClient(_TransactionMixin):
    """A 2PL transaction client using ZooKeeper ephemeral-znode locks.

    This is the paper's methodology for Figure 11 (one round trip per lock
    operation); the backend-generic :class:`TransactionClient` over a
    :class:`~repro.baselines.zk_client.ZooKeeperKVClient` exercises the
    same workload through the unified CAS code path instead.
    """

    def __init__(self, client: ZooKeeperClient, config: TransactionWorkloadConfig,
                 client_id: str, lock_root: str = "/txnlocks", seed: int = 0) -> None:
        super().__init__(config, client_id, seed)
        self.client = client
        self.lock_root = lock_root

    def prepare(self) -> None:
        """Create the lock directory (synchronous; call before starting load)."""
        self.client.ensure_path(self.lock_root)

    def start(self) -> None:
        self.running = True
        self._begin_txn()

    def stop(self) -> None:
        self.running = False

    def _lock_path(self, key: str) -> str:
        return f"{self.lock_root}/{key}"

    def _begin_txn(self) -> None:
        if not self.running:
            return
        locks = self._pick_lock_set()
        self._acquire_next(locks, 0, [])

    def _acquire_next(self, locks: List[str], index: int, held: List[str]) -> None:
        if not self.running:
            self._release_all(held, lambda: None)
            return
        if index >= len(locks):
            self._release_all(held, self._committed)
            return
        key = locks[index]
        self.stats.lock_attempts += 1

        def on_reply(result: ZkResult) -> None:
            if result.ok:
                held.append(key)
                self._acquire_next(locks, index + 1, held)
            else:
                self.stats.aborts += 1
                self._release_all(held, self._begin_txn)

        self.client.create_async(self._lock_path(key), self.client_id,
                                 ephemeral=True).then(on_reply)

    def _release_all(self, held: List[str], then) -> None:
        remaining = list(held)
        held.clear()

        def release_next() -> None:
            if not remaining:
                then()
                return
            key = remaining.pop()
            self.client.delete_async(self._lock_path(key)).then(
                lambda _r: release_next())

        release_next()

    def _committed(self) -> None:
        self.stats.committed.record(self.client.sim.now)
        self._begin_txn()


def total_committed(clients, start: float, end: float) -> int:
    """Transactions committed across clients within a time window."""
    return sum(c.stats.committed_between(start, end) for c in clients)


def transactions_per_second(clients, start: float, end: float) -> float:
    """Aggregate commit rate over a window."""
    if end <= start:
        return 0.0
    return total_committed(clients, start, end) / (end - start)
