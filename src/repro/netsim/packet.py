"""Packet model: Ethernet / IPv4 / UDP headers and a structured payload.

NetChain queries are UDP packets with a custom header stack
(Figure 2(b) of the paper)::

    ETH | IP | UDP | OP KEY VALUE SC S0 S1 ... Sk SEQ

The simulator keeps headers as small slotted dataclasses for speed; the
wire encoding (used by :mod:`repro.core.protocol` and by tests that check
the format fits in a jumbo frame) is provided by ``to_bytes``/``from_bytes``
on each header.  :class:`Packet` itself is a hand-rolled ``__slots__`` class
because packet construction is on the per-query hot path.
"""

from __future__ import annotations

import ipaddress
import itertools
import struct
from dataclasses import dataclass
from typing import Any, Optional

#: UDP destination port reserved for NetChain queries (Section 3).
NETCHAIN_UDP_PORT = 8123

#: Maximum Ethernet jumbo frame payload, which bounds value size (Section 6).
JUMBO_FRAME_BYTES = 9000

_packet_ids = itertools.count(1)


def ip_to_int(addr: str) -> int:
    """Convert dotted-quad to a 32-bit integer."""
    return int(ipaddress.IPv4Address(addr))


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to dotted-quad."""
    return str(ipaddress.IPv4Address(value))


@dataclass(slots=True)
class EthernetHeader:
    """Layer-2 header.  MAC addresses are plain strings (``"02:00:00:00:00:01"``)."""

    src_mac: str = "02:00:00:00:00:00"
    dst_mac: str = "02:00:00:00:00:00"
    ethertype: int = 0x0800

    HEADER_BYTES = 14

    def to_bytes(self) -> bytes:
        def mac_bytes(mac: str) -> bytes:
            return bytes(int(part, 16) for part in mac.split(":"))

        return mac_bytes(self.dst_mac) + mac_bytes(self.src_mac) + struct.pack("!H", self.ethertype)

    @classmethod
    def from_bytes(cls, data: bytes) -> "EthernetHeader":
        def bytes_mac(raw: bytes) -> str:
            return ":".join(f"{b:02x}" for b in raw)

        dst = bytes_mac(data[0:6])
        src = bytes_mac(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(src_mac=src, dst_mac=dst, ethertype=ethertype)

    def copy(self) -> "EthernetHeader":
        return EthernetHeader(self.src_mac, self.dst_mac, self.ethertype)


@dataclass(slots=True)
class IPv4Header:
    """Layer-3 header.  Only the fields the protocols need are modelled."""

    src_ip: str = "0.0.0.0"
    dst_ip: str = "0.0.0.0"
    ttl: int = 64
    protocol: int = 17  # UDP

    HEADER_BYTES = 20

    def to_bytes(self) -> bytes:
        return struct.pack(
            "!BBHHHBBHII",
            0x45,
            0,
            self.HEADER_BYTES,
            0,
            0,
            self.ttl,
            self.protocol,
            0,
            ip_to_int(self.src_ip),
            ip_to_int(self.dst_ip),
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Header":
        fields = struct.unpack("!BBHHHBBHII", data[: cls.HEADER_BYTES])
        return cls(
            src_ip=int_to_ip(fields[8]),
            dst_ip=int_to_ip(fields[9]),
            ttl=fields[5],
            protocol=fields[6],
        )

    def copy(self) -> "IPv4Header":
        return IPv4Header(self.src_ip, self.dst_ip, self.ttl, self.protocol)


@dataclass(slots=True)
class UDPHeader:
    """Layer-4 header."""

    src_port: int = 0
    dst_port: int = 0
    length: int = 8

    HEADER_BYTES = 8

    def to_bytes(self) -> bytes:
        return struct.pack("!HHHH", self.src_port, self.dst_port, self.length, 0)

    @classmethod
    def from_bytes(cls, data: bytes) -> "UDPHeader":
        src, dst, length, _checksum = struct.unpack("!HHHH", data[: cls.HEADER_BYTES])
        return cls(src_port=src, dst_port=dst, length=length)

    def copy(self) -> "UDPHeader":
        return UDPHeader(self.src_port, self.dst_port, self.length)


#: ETH + IP header bytes, the fixed part of every packet's wire size.
_BASE_HEADER_BYTES = EthernetHeader.HEADER_BYTES + IPv4Header.HEADER_BYTES

#: Full fixed overhead of a (non-)UDP packet, for hot paths that add the
#: payload size without a method call.
IP_WIRE_OVERHEAD = _BASE_HEADER_BYTES
UDP_WIRE_OVERHEAD = _BASE_HEADER_BYTES + UDPHeader.HEADER_BYTES


class Packet:
    """A simulated packet.

    ``payload`` is a structured object (for NetChain queries a
    :class:`repro.core.protocol.NetChainHeader`); ``payload_bytes`` is the
    size charged against link bandwidth and frame limits and is derived from
    the payload's declared wire size when available.

    Packets are mutated in place as they traverse the network (switches
    rewrite headers rather than copying, exactly like a real pipeline);
    :meth:`copy` exists for retransmissions, which need an independent
    header stack and a fresh identity.
    """

    __slots__ = ("eth", "ip", "udp", "payload", "payload_bytes", "packet_id",
                 "pipeline_passes", "created_at", "trace_id")

    def __init__(self, eth: Optional[EthernetHeader] = None,
                 ip: Optional[IPv4Header] = None,
                 udp: Optional[UDPHeader] = None,
                 payload: Any = None,
                 payload_bytes: int = 0,
                 packet_id: Optional[int] = None,
                 pipeline_passes: int = 0,
                 created_at: float = 0.0,
                 trace_id: int = 0) -> None:
        self.eth = eth if eth is not None else EthernetHeader()
        self.ip = ip if ip is not None else IPv4Header()
        self.udp = udp
        self.payload = payload
        self.payload_bytes = payload_bytes
        self.packet_id = packet_id if packet_id is not None else next(_packet_ids)
        #: Number of switch pipeline traversals so far (used by capacity accounting).
        self.pipeline_passes = pipeline_passes
        #: Creation timestamp, stamped by hosts for latency measurement.
        self.created_at = created_at
        #: Telemetry trace id (0 = untraced); stamped by agents when the
        #: telemetry plane is on and carried across every hop and copy.
        self.trace_id = trace_id

    def size_bytes(self) -> int:
        """Total on-wire size of the packet."""
        if self.udp is not None:
            return _BASE_HEADER_BYTES + UDPHeader.HEADER_BYTES + self.payload_bytes
        return _BASE_HEADER_BYTES + self.payload_bytes

    def fits_in_jumbo_frame(self) -> bool:
        """Whether the packet respects the 9KB Ethernet jumbo-frame limit."""
        return self.size_bytes() <= JUMBO_FRAME_BYTES

    def copy(self) -> "Packet":
        """A shallow copy with a fresh packet id (used for retransmissions)."""
        payload = self.payload
        if hasattr(payload, "copy"):
            payload = payload.copy()
        return Packet(eth=self.eth.copy(), ip=self.ip.copy(),
                      udp=self.udp.copy() if self.udp is not None else None,
                      payload=payload, payload_bytes=self.payload_bytes,
                      pipeline_passes=self.pipeline_passes,
                      created_at=self.created_at,
                      trace_id=self.trace_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        proto = "udp" if self.udp is not None else "ip"
        return (
            f"Packet(id={self.packet_id}, {proto}, {self.ip.src_ip}->{self.ip.dst_ip}, "
            f"payload={self.payload!r})"
        )
