"""Packet model: Ethernet / IPv4 / UDP headers and a structured payload.

NetChain queries are UDP packets with a custom header stack
(Figure 2(b) of the paper)::

    ETH | IP | UDP | OP KEY VALUE SC S0 S1 ... Sk SEQ

The simulator keeps headers as small dataclasses for speed; the wire
encoding (used by :mod:`repro.core.protocol` and by tests that check the
format fits in a jumbo frame) is provided by ``to_bytes``/``from_bytes``
on each header.
"""

from __future__ import annotations

import ipaddress
import itertools
import struct
from dataclasses import dataclass, field, replace
from typing import Any, Optional

#: UDP destination port reserved for NetChain queries (Section 3).
NETCHAIN_UDP_PORT = 8123

#: Maximum Ethernet jumbo frame payload, which bounds value size (Section 6).
JUMBO_FRAME_BYTES = 9000

_packet_ids = itertools.count(1)


def ip_to_int(addr: str) -> int:
    """Convert dotted-quad to a 32-bit integer."""
    return int(ipaddress.IPv4Address(addr))


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to dotted-quad."""
    return str(ipaddress.IPv4Address(value))


@dataclass
class EthernetHeader:
    """Layer-2 header.  MAC addresses are plain strings (``"02:00:00:00:00:01"``)."""

    src_mac: str = "02:00:00:00:00:00"
    dst_mac: str = "02:00:00:00:00:00"
    ethertype: int = 0x0800

    HEADER_BYTES = 14

    def to_bytes(self) -> bytes:
        def mac_bytes(mac: str) -> bytes:
            return bytes(int(part, 16) for part in mac.split(":"))

        return mac_bytes(self.dst_mac) + mac_bytes(self.src_mac) + struct.pack("!H", self.ethertype)

    @classmethod
    def from_bytes(cls, data: bytes) -> "EthernetHeader":
        def bytes_mac(raw: bytes) -> str:
            return ":".join(f"{b:02x}" for b in raw)

        dst = bytes_mac(data[0:6])
        src = bytes_mac(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(src_mac=src, dst_mac=dst, ethertype=ethertype)


@dataclass
class IPv4Header:
    """Layer-3 header.  Only the fields the protocols need are modelled."""

    src_ip: str = "0.0.0.0"
    dst_ip: str = "0.0.0.0"
    ttl: int = 64
    protocol: int = 17  # UDP

    HEADER_BYTES = 20

    def to_bytes(self) -> bytes:
        return struct.pack(
            "!BBHHHBBHII",
            0x45,
            0,
            self.HEADER_BYTES,
            0,
            0,
            self.ttl,
            self.protocol,
            0,
            ip_to_int(self.src_ip),
            ip_to_int(self.dst_ip),
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Header":
        fields = struct.unpack("!BBHHHBBHII", data[: cls.HEADER_BYTES])
        return cls(
            src_ip=int_to_ip(fields[8]),
            dst_ip=int_to_ip(fields[9]),
            ttl=fields[5],
            protocol=fields[6],
        )


@dataclass
class UDPHeader:
    """Layer-4 header."""

    src_port: int = 0
    dst_port: int = 0
    length: int = 8

    HEADER_BYTES = 8

    def to_bytes(self) -> bytes:
        return struct.pack("!HHHH", self.src_port, self.dst_port, self.length, 0)

    @classmethod
    def from_bytes(cls, data: bytes) -> "UDPHeader":
        src, dst, length, _checksum = struct.unpack("!HHHH", data[: cls.HEADER_BYTES])
        return cls(src_port=src, dst_port=dst, length=length)


@dataclass
class Packet:
    """A simulated packet.

    ``payload`` is a structured object (for NetChain queries a
    :class:`repro.core.protocol.NetChainHeader`); ``payload_bytes`` is the
    size charged against link bandwidth and frame limits and is derived from
    the payload's declared wire size when available.
    """

    eth: EthernetHeader = field(default_factory=EthernetHeader)
    ip: IPv4Header = field(default_factory=IPv4Header)
    udp: Optional[UDPHeader] = None
    payload: Any = None
    payload_bytes: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Number of switch pipeline traversals so far (used by capacity accounting).
    pipeline_passes: int = 0
    #: Creation timestamp, stamped by hosts for latency measurement.
    created_at: float = 0.0

    def size_bytes(self) -> int:
        """Total on-wire size of the packet."""
        size = EthernetHeader.HEADER_BYTES + IPv4Header.HEADER_BYTES
        if self.udp is not None:
            size += UDPHeader.HEADER_BYTES
        return size + self.payload_bytes

    def fits_in_jumbo_frame(self) -> bool:
        """Whether the packet respects the 9KB Ethernet jumbo-frame limit."""
        return self.size_bytes() <= JUMBO_FRAME_BYTES

    def copy(self) -> "Packet":
        """A shallow copy with a fresh packet id (used for retransmissions)."""
        clone = replace(self)
        clone.packet_id = next(_packet_ids)
        clone.eth = replace(self.eth)
        clone.ip = replace(self.ip)
        if self.udp is not None:
            clone.udp = replace(self.udp)
        if hasattr(self.payload, "copy"):
            clone.payload = self.payload.copy()
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        proto = "udp" if self.udp is not None else "ip"
        return (
            f"Packet(id={self.packet_id}, {proto}, {self.ip.src_ip}->{self.ip.dst_ip}, "
            f"payload={self.payload!r})"
        )
