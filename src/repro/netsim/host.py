"""End-host model: NIC, software stack delay, and application sockets.

Hosts are where the latency of server-based coordination comes from
(Section 2.1): every message that crosses a server pays the host's software
stack.  The model exposes the two knobs the paper varies:

* ``stack_delay``: one-way processing delay of the host's network stack.
  A DPDK/kernel-bypass client pays a few microseconds; a kernel TCP stack
  pays tens of microseconds.
* ``nic_pps``: how many packets per second the host can send/receive.  The
  paper's DPDK clients achieve 20.5 MQPS on a 40G NIC.

Applications (the NetChain agent, the ZooKeeper server/client, ...) bind to
UDP ports on the host with :meth:`Host.bind`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.netsim.node import Node, Port, stable_name_seed
from repro.netsim.packet import IPv4Header, Packet, UDPHeader

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.engine import Simulator

PacketHandler = Callable[[Packet], None]


@dataclass
class HostConfig:
    """Host timing/capacity parameters.

    The defaults model a DPDK client as in Section 7 of the paper; use
    :func:`kernel_host_config` for a kernel-TCP host (ZooKeeper servers and
    clients).
    """

    #: One-way software stack delay in seconds.
    stack_delay: float = 4.3e-6
    #: Packets per second the host can emit (NIC + stack limit).  ``None`` = unlimited.
    nic_pps: Optional[float] = 20.5e6
    #: Packets per second the host can absorb.  ``None`` = same as ``nic_pps``.
    rx_pps: Optional[float] = None
    #: Transmit queue limit in packets (tail drop beyond this).
    tx_queue_packets: int = 100000


def dpdk_host_config(nic_pps: Optional[float] = 20.5e6) -> HostConfig:
    """A kernel-bypass client host (Section 7: DPDK agent, 20.5 MQPS)."""
    return HostConfig(stack_delay=4.3e-6, nic_pps=nic_pps)


def kernel_host_config(nic_pps: Optional[float] = None) -> HostConfig:
    """A conventional kernel-TCP host (ZooKeeper servers/clients).

    The 40 us one-way stack delay reproduces the paper's observation that
    ZooKeeper reads take ~170 us end to end at low load (Section 8.2).
    """
    return HostConfig(stack_delay=40e-6, nic_pps=nic_pps)


class Host(Node):
    """A server machine with one uplink to its top-of-rack switch."""

    def __init__(self, sim: "Simulator", name: str, ip: str,
                 config: Optional[HostConfig] = None,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(sim, name, ip)
        self.config = config or HostConfig()
        self.rng = rng or random.Random(stable_name_seed(name))
        self._sockets: Dict[int, PacketHandler] = {}
        self.default_handler: Optional[PacketHandler] = None
        self._tx_busy_until = 0.0
        self._rx_busy_until = 0.0
        self.tx_dropped = 0
        self.failed = False
        #: Optional telemetry tracer (:class:`repro.core.trace.Tracer`);
        #: ``None`` keeps send/receive on the untraced fast path.
        self.telemetry = None

    # ------------------------------------------------------------------ #
    # Socket API.
    # ------------------------------------------------------------------ #

    def bind(self, udp_port: int, handler: PacketHandler) -> None:
        """Register ``handler`` for packets whose UDP destination port matches."""
        self._sockets[udp_port] = handler

    def unbind(self, udp_port: int) -> None:
        """Remove a previously bound handler."""
        self._sockets.pop(udp_port, None)

    def uplink_port(self) -> Optional[Port]:
        """The host's single uplink port (hosts are single-homed here)."""
        for port in self.ports.values():
            if port.link is not None:
                return port
        return None

    # ------------------------------------------------------------------ #
    # Send path.
    # ------------------------------------------------------------------ #

    def send(self, packet: Packet) -> None:
        """Send a packet out of the uplink after stack delay and NIC pacing."""
        if self.failed:
            return
        port = self.uplink_port()
        if port is None:
            self.packets_dropped += 1
            return
        cfg = self.config
        delay = cfg.stack_delay
        if cfg.nic_pps:
            # The packet waits behind the TX backlog, but its own (scaled)
            # service slot is not charged to its latency -- the scaled rate
            # models the host's query-rate ceiling, not per-packet delay.
            now = self.sim._now
            service = 1.0 / cfg.nic_pps
            busy_until = self._tx_busy_until
            backlog = busy_until - now
            if backlog < 0.0:
                backlog = 0.0
                busy_until = now
            if backlog / service >= cfg.tx_queue_packets:
                self.tx_dropped += 1
                return
            self._tx_busy_until = busy_until + service
            delay += backlog
        packet.ip.src_ip = packet.ip.src_ip or self.ip
        tel = self.telemetry
        if tel is not None:
            tel.host_tx(self, packet, delay)
        self.sim.call_after(delay, self.transmit, packet, port)

    def send_udp(self, dst_ip: str, dst_port: int, payload, payload_bytes: int,
                 src_port: int = 0) -> Packet:
        """Convenience wrapper that builds and sends a UDP packet."""
        packet = Packet(ip=IPv4Header(src_ip=self.ip, dst_ip=dst_ip),
                        udp=UDPHeader(src_port=src_port, dst_port=dst_port),
                        payload=payload, payload_bytes=payload_bytes,
                        created_at=self.sim._now)
        self.send(packet)
        return packet

    # ------------------------------------------------------------------ #
    # Receive path.
    # ------------------------------------------------------------------ #

    def receive(self, packet: Packet, port: Port) -> None:
        if self.failed:
            return
        cfg = self.config
        delay = cfg.stack_delay
        rx_pps = cfg.rx_pps if cfg.rx_pps is not None else cfg.nic_pps
        if rx_pps:
            now = self.sim._now
            busy_until = self._rx_busy_until
            backlog = busy_until - now
            if backlog < 0.0:
                backlog = 0.0
                busy_until = now
            self._rx_busy_until = busy_until + 1.0 / rx_pps
            delay += backlog
        tel = self.telemetry
        if tel is not None:
            tel.host_rx(self, packet, delay)
        self.sim.call_after(delay, self._dispatch, packet)

    def _dispatch(self, packet: Packet) -> None:
        if self.failed:
            return
        handler: Optional[PacketHandler] = None
        if packet.udp is not None:
            handler = self._sockets.get(packet.udp.dst_port)
        if handler is None:
            handler = self.default_handler
        if handler is None:
            self.packets_dropped += 1
            return
        handler(packet)

    # ------------------------------------------------------------------ #
    # Failure injection.
    # ------------------------------------------------------------------ #

    def fail(self) -> None:
        """Fail-stop the host."""
        self.failed = True

    def recover_device(self) -> None:
        """Bring the host back up."""
        self.failed = False
        self._tx_busy_until = 0.0
        self._rx_busy_until = 0.0
