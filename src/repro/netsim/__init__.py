"""Packet-level discrete-event network simulator.

This package is the substrate that replaces the paper's physical testbed:
programmable switches (Barefoot Tofino), DPDK hosts, links and the L3
underlay are all modelled here.  The NetChain protocol logic itself lives
in :mod:`repro.core` and is installed onto these simulated devices.

The main entry points are:

* :class:`repro.netsim.engine.Simulator` -- the event loop.
* :class:`repro.netsim.switch.Switch` -- a programmable switch with a
  match-action pipeline and per-stage register arrays.
* :class:`repro.netsim.host.Host` -- a server with a configurable software
  stack delay (kernel TCP vs. DPDK) and NIC rate.
* :mod:`repro.netsim.topology` -- builders for the paper's 4-switch testbed
  (Figure 8) and for spine-leaf fabrics (Section 8.3).
"""

from repro.netsim.engine import Event, Simulator
from repro.netsim.faults import FaultEvent, FaultInjector, FaultSchedule, LinkFaultModel
from repro.netsim.host import Host, HostConfig
from repro.netsim.link import Link, LinkConfig
from repro.netsim.node import Node, Port
from repro.netsim.packet import NETCHAIN_UDP_PORT, EthernetHeader, IPv4Header, Packet, UDPHeader
from repro.netsim.routing import install_shortest_path_routes
from repro.netsim.switch import Switch, SwitchConfig
from repro.netsim.topology import Topology, build_spine_leaf, build_testbed

__all__ = [
    "Simulator",
    "Event",
    "Packet",
    "EthernetHeader",
    "IPv4Header",
    "UDPHeader",
    "NETCHAIN_UDP_PORT",
    "Link",
    "LinkConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "LinkFaultModel",
    "Node",
    "Port",
    "Switch",
    "SwitchConfig",
    "Host",
    "HostConfig",
    "Topology",
    "build_testbed",
    "build_spine_leaf",
    "install_shortest_path_routes",
]
