"""Deterministic fault injection: link faults, partitions, gray failures.

The paper's correctness story (Section 4.5 and the TLA+ appendix) is about
what happens *between* the happy paths: packets are lost and reordered,
switches fail and are replaced, and the chain protocol must keep per-key
consistency through all of it.  The simulator previously only modelled a
fail-stop switch; this module adds the rest of the failure vocabulary and
makes every stochastic choice replayable:

* :class:`LinkFaultModel` -- a per-link loss / corruption / reorder / delay
  model driven by a seeded ``random.Random``.
* :class:`FaultInjector` -- an imperative API over a topology: take links
  down and up, partition the network into groups and heal it, fail-stop or
  gray-fail switches.  Every action is appended to a :class:`FaultEvent`
  trace, so two runs with the same seed produce byte-identical traces.
* :class:`FaultSchedule` -- a declarative script of timed (``at``) and
  trigger-based (``when``) fault events armed on the simulator, which is
  what experiments and the scenario-matrix tests replay.

Determinism contract: the injector derives one child RNG per fault model
from its own seeded RNG, in installation order, and never consumes
randomness outside those derivations.  Combined with the deterministic
event engine this makes whole failure scenarios replay byte-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.netsim.topology import Topology


def derive_rng(parent: random.Random) -> random.Random:
    """A child ``random.Random`` deterministically derived from ``parent``.

    Children are independent streams: consuming one does not perturb the
    others, which keeps scenarios replayable even when fault models fire in
    load-dependent order.
    """
    return random.Random(parent.getrandbits(64))


@dataclass
class FaultVerdict:
    """What a fault model decided about one packet traversal."""

    drop: bool = False
    #: ``"loss"`` or ``"corrupt"`` when ``drop`` is set.
    reason: str = ""
    extra_delay: float = 0.0
    reordered: bool = False


class LinkFaultModel:
    """Seeded per-packet loss / corruption / reordering / delay on one link.

    This intentionally mirrors (and composes with) the static knobs of
    :class:`repro.netsim.link.LinkConfig`; the difference is that a fault
    model is installed and removed *at runtime* by a schedule, and draws
    from an injectable RNG so scenarios replay.
    """

    def __init__(self, rng: random.Random, loss_rate: float = 0.0,
                 corrupt_rate: float = 0.0, reorder_jitter: float = 0.0,
                 extra_delay: float = 0.0) -> None:
        self.rng = rng
        self.loss_rate = loss_rate
        self.corrupt_rate = corrupt_rate
        self.reorder_jitter = reorder_jitter
        self.extra_delay = extra_delay

    def on_transmit(self, packet: Packet) -> FaultVerdict:
        """Judge one traversal; called by :meth:`Link.transmit`."""
        if self.loss_rate > 0 and self.rng.random() < self.loss_rate:
            return FaultVerdict(drop=True, reason="loss")
        if self.corrupt_rate > 0 and self.rng.random() < self.corrupt_rate:
            # Corrupted frames fail the receiver's FCS check and are
            # discarded there; the observable effect is a (separately
            # counted) drop.
            return FaultVerdict(drop=True, reason="corrupt")
        delay = self.extra_delay
        reordered = False
        if self.reorder_jitter > 0:
            delay += self.rng.uniform(0.0, self.reorder_jitter)
            reordered = True
        return FaultVerdict(extra_delay=delay, reordered=reordered)

    def describe(self) -> str:
        return (f"loss={self.loss_rate} corrupt={self.corrupt_rate} "
                f"jitter={self.reorder_jitter} delay={self.extra_delay}")


@dataclass
class FaultEvent:
    """One entry of the injector's replayable trace."""

    time: float
    kind: str
    target: str
    detail: str = ""

    def signature(self) -> Tuple[float, str, str, str]:
        """Hashable form used by replay-identity assertions."""
        return (round(self.time, 12), self.kind, self.target, self.detail)


class FaultInjector:
    """Imperative fault API over one topology, with a deterministic trace.

    All stochastic fault behaviour flows through ``random.Random(seed)``:
    the injector's own RNG is only used to derive child RNGs for the link
    fault models it installs, in installation order.
    """

    def __init__(self, topology: Topology, seed: int = 0,
                 reroute_on_switch_fault: bool = False) -> None:
        """Args:
            topology: the simulated network to inject faults into.
            seed: seed for all fault-model randomness.
            reroute_on_switch_fault: when True, the underlay recomputes
                routes around failed switches immediately (for scenarios
                without a NetChain controller, whose fast failover normally
                owns rerouting).
        """
        self.topology = topology
        self.sim = topology.sim
        self.seed = seed
        self.rng = random.Random(seed)
        self.reroute_on_switch_fault = reroute_on_switch_fault
        self.trace: List[FaultEvent] = []
        #: Observers called with each :class:`FaultEvent` as it happens
        #: (used to sample invariants at fault boundaries).
        self.observers: List[Callable[[FaultEvent], None]] = []
        self._partitioned_links: List[Link] = []
        self._device_failed: Set[str] = set()

    # ------------------------------------------------------------------ #
    # Trace plumbing.
    # ------------------------------------------------------------------ #

    def _record(self, kind: str, target: str, detail: str = "") -> FaultEvent:
        event = FaultEvent(time=self.sim.now, kind=kind, target=target, detail=detail)
        self.trace.append(event)
        for observer in self.observers:
            observer(event)
        return event

    def trace_signature(self) -> List[Tuple[float, str, str, str]]:
        """The trace in hashable form; identical across same-seed replays."""
        return [event.signature() for event in self.trace]

    # ------------------------------------------------------------------ #
    # Link faults.
    # ------------------------------------------------------------------ #

    def link(self, a: str, b: str) -> Link:
        """The physical link between two named nodes."""
        link = self.topology.link_between(self.topology.node(a), self.topology.node(b))
        if link is None:
            raise KeyError(f"no link between {a!r} and {b!r}")
        return link

    def link_down(self, a: str, b: str) -> None:
        """Cut the link; packets in flight still arrive, new ones drop."""
        link = self.link(a, b)
        link.set_down()
        self._record("link_down", link.name)

    def link_up(self, a: str, b: str) -> None:
        """Restore a previously downed link."""
        link = self.link(a, b)
        link.set_up()
        self._record("link_up", link.name)

    def set_link_faults(self, a: str, b: str, loss_rate: float = 0.0,
                        corrupt_rate: float = 0.0, reorder_jitter: float = 0.0,
                        extra_delay: float = 0.0) -> LinkFaultModel:
        """Install a seeded loss/corruption/reorder/delay model on a link."""
        link = self.link(a, b)
        model = LinkFaultModel(derive_rng(self.rng), loss_rate=loss_rate,
                               corrupt_rate=corrupt_rate,
                               reorder_jitter=reorder_jitter,
                               extra_delay=extra_delay)
        link.faults = model
        self._record("link_faults", link.name, model.describe())
        return model

    def clear_link_faults(self, a: str, b: str) -> None:
        """Remove the fault model from a link."""
        link = self.link(a, b)
        link.faults = None
        self._record("link_faults_cleared", link.name)

    # ------------------------------------------------------------------ #
    # Switch faults.
    # ------------------------------------------------------------------ #

    def fail_switch(self, name: str) -> None:
        """Fail-stop a switch (it stops processing and forwarding)."""
        self.topology.switches[name].fail()
        self._device_failed.add(name)
        self._record("switch_fail", name)
        if self.reroute_on_switch_fault:
            from repro.netsim.routing import reroute_around_failures
            reroute_around_failures(self.topology, self._device_failed)

    def recover_switch(self, name: str) -> None:
        """Bring a fail-stopped or gray-failed switch device back up."""
        self.topology.switches[name].recover_device()
        self._device_failed.discard(name)
        self._record("switch_recover", name)
        if self.reroute_on_switch_fault:
            from repro.netsim.routing import reroute_around_failures
            reroute_around_failures(self.topology, self._device_failed)

    def gray_fail_switch(self, name: str) -> None:
        """Gray-fail a switch: it keeps forwarding but stops serving."""
        self.topology.switches[name].fail_gray()
        self._record("switch_gray_fail", name)

    def fail_host(self, name: str) -> None:
        """Fail-stop a host."""
        self.topology.hosts[name].failed = True
        self._record("host_fail", name)

    def recover_host(self, name: str) -> None:
        """Recover a failed host."""
        self.topology.hosts[name].failed = False
        self._record("host_recover", name)

    # ------------------------------------------------------------------ #
    # Partitions.
    # ------------------------------------------------------------------ #

    def partition(self, *groups: Iterable[str]) -> List[Link]:
        """Split the network: links between different groups go down.

        Nodes not named in any group form one implicit final group, so
        ``partition({"S3"})`` isolates S3 from everything else.  Returns the
        links that were cut.  Nested partitions are not supported: heal the
        current one first.
        """
        if self._partitioned_links:
            raise RuntimeError("a partition is already active; heal it first")
        named: List[Set[str]] = [set(group) for group in groups]
        assigned = set().union(*named) if named else set()
        rest = {node.name for node in self.topology.all_nodes()} - assigned
        if rest:
            named.append(rest)

        def group_of(name: str) -> int:
            for index, group in enumerate(named):
                if name in group:
                    return index
            return -1

        cut: List[Link] = []
        for link in self.topology.links:
            ga = group_of(link.port_a.node.name)
            gb = group_of(link.port_b.node.name)
            if ga != gb and link.up:
                link.set_down()
                cut.append(link)
        self._partitioned_links = cut
        label = " | ".join(",".join(sorted(g)) for g in named)
        self._record("partition", label, detail=f"{len(cut)} links cut")
        return cut

    def heal_partition(self) -> None:
        """Restore every link the active partition cut."""
        for link in self._partitioned_links:
            link.set_up()
        count = len(self._partitioned_links)
        self._partitioned_links = []
        self._record("partition_heal", "", detail=f"{count} links restored")

    # ------------------------------------------------------------------ #
    # Reporting.
    # ------------------------------------------------------------------ #

    def drop_report(self) -> Dict[str, Dict[str, int]]:
        """Per-link drop/delivery counters, keyed by link name."""
        report: Dict[str, Dict[str, int]] = {}
        for link in self.topology.links:
            stats = link.stats
            report[link.name] = {
                "delivered": stats.delivered,
                "dropped_down": stats.dropped_down,
                "dropped_loss": stats.dropped_loss,
                "dropped_corrupt": stats.dropped_corrupt,
                "delayed": stats.delayed,
                "reordered": stats.reordered,
            }
        return report


#: A schedule action: the name of a :class:`FaultInjector` method, or any
#: zero-argument callable for custom events.
Action = Union[str, Callable[[], None]]


@dataclass
class _ScheduleEntry:
    when: str  # "at" or "when"
    time: float
    predicate: Optional[Callable[[], bool]]
    action: Action
    args: tuple
    kwargs: dict
    label: str
    fired: bool = False


class FaultSchedule:
    """A replayable script of timed and trigger-based fault events.

    Usage::

        injector = FaultInjector(topology, seed=7)
        schedule = (FaultSchedule(injector)
                    .at(0.5, "set_link_faults", "S0", "S1", loss_rate=0.02)
                    .at(1.0, "fail_switch", "S1")
                    .at(2.0, "partition", {"S3"})
                    .at(2.5, "heal_partition")
                    .when(lambda: controller.recovery_reports,
                          "fail_switch", "S2", label="fail during recovery"))
        schedule.arm()
        sim.run(until=10.0)

    String actions name :class:`FaultInjector` methods, which keeps scripts
    declarative and serializable; callables are accepted for anything else.
    ``when`` triggers poll their predicate on the simulator (deterministic
    polling, default every millisecond) and fire exactly once.
    """

    def __init__(self, injector: FaultInjector, poll_interval: float = 1e-3) -> None:
        self.injector = injector
        self.sim = injector.sim
        self.poll_interval = poll_interval
        self.entries: List[_ScheduleEntry] = []
        self._armed = False
        self._cancels: List[Callable[[], None]] = []

    def at(self, time: float, action: Action, *args, label: str = "", **kwargs
           ) -> "FaultSchedule":
        """Arm ``action`` at absolute simulation time ``time`` (chainable)."""
        self.entries.append(_ScheduleEntry("at", time, None, action, args, kwargs,
                                           label or self._describe(action, args)))
        return self

    def after(self, delay: float, action: Action, *args, label: str = "", **kwargs
              ) -> "FaultSchedule":
        """Arm ``action`` ``delay`` seconds after :meth:`arm` is called."""
        self.entries.append(_ScheduleEntry("after", delay, None, action, args, kwargs,
                                           label or self._describe(action, args)))
        return self

    def when(self, predicate: Callable[[], bool], action: Action, *args,
             label: str = "", **kwargs) -> "FaultSchedule":
        """Arm ``action`` to fire once, the first time ``predicate()`` is
        truthy (polled every ``poll_interval`` seconds)."""
        self.entries.append(_ScheduleEntry("when", 0.0, predicate, action, args,
                                           kwargs, label or self._describe(action, args)))
        return self

    @staticmethod
    def _describe(action: Action, args: tuple) -> str:
        name = action if isinstance(action, str) else getattr(action, "__name__", "custom")
        return f"{name}({', '.join(repr(a) for a in args)})"

    def _fire(self, entry: _ScheduleEntry) -> None:
        if entry.fired:
            return
        entry.fired = True
        if isinstance(entry.action, str):
            getattr(self.injector, entry.action)(*entry.args, **entry.kwargs)
        else:
            entry.action(*entry.args, **entry.kwargs)

    def arm(self) -> "FaultSchedule":
        """Schedule every entry on the simulator; call once."""
        if self._armed:
            raise RuntimeError("a FaultSchedule can only be armed once")
        self._armed = True
        for entry in self.entries:
            if entry.when == "at":
                self.sim.schedule_at(entry.time, lambda e=entry: self._fire(e))
            elif entry.when == "after":
                self.sim.schedule(entry.time, lambda e=entry: self._fire(e))
            else:
                self._arm_trigger(entry)
        return self

    def _arm_trigger(self, entry: _ScheduleEntry) -> None:
        def poll() -> None:
            if entry.fired:
                cancel()
                return
            if entry.predicate():
                self._fire(entry)
                cancel()

        cancel = self.sim.every(self.poll_interval, poll, start=self.poll_interval)
        self._cancels.append(cancel)

    def cancel(self) -> None:
        """Stop polling triggers (timed entries that already fired stay fired)."""
        for cancel in self._cancels:
            cancel()
        self._cancels = []
