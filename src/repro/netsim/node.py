"""Base classes for simulated devices (switches and hosts).

A :class:`Node` owns a set of :class:`Port` objects.  Ports are wired
together by :class:`repro.netsim.link.Link`; sending a packet out of a port
hands it to the attached link, which delivers it to the peer port's node
after the configured delays.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Dict, Optional

from repro.netsim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.netsim.engine import Simulator
    from repro.netsim.link import Link


def stable_name_seed(name: str) -> int:
    """Deterministic 16-bit seed derived from a device name.

    ``hash(str)`` is salted by PYTHONHASHSEED, so seeding an RNG from it
    makes replays process-specific; CRC32 of the UTF-8 name is identical on
    every machine and every run.
    """
    return zlib.crc32(name.encode("utf-8")) & 0xFFFF


class Port:
    """One attachment point of a node; at most one link is plugged in."""

    def __init__(self, node: "Node", index: int) -> None:
        self.node = node
        self.index = index
        self.link: Optional["Link"] = None
        #: Counters for diagnostics and tests.
        self.tx_packets = 0
        self.rx_packets = 0

    @property
    def name(self) -> str:
        return f"{self.node.name}.p{self.index}"

    def peer(self) -> Optional["Port"]:
        """The port at the other end of the attached link, if any."""
        if self.link is None:
            return None
        return self.link.other_end(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Port({self.name})"


class Node:
    """A device in the simulated network.

    Subclasses implement :meth:`receive` (packet arrived on a port) and use
    :meth:`transmit` to push packets onto links.
    """

    def __init__(self, sim: "Simulator", name: str, ip: str = "0.0.0.0") -> None:
        self.sim = sim
        self.name = name
        self.ip = ip
        self.ports: Dict[int, Port] = {}
        self.packets_received = 0
        self.packets_sent = 0
        self.packets_dropped = 0

    def add_port(self, index: Optional[int] = None) -> Port:
        """Create a new port; index defaults to the next free integer."""
        if index is None:
            index = len(self.ports)
        if index in self.ports:
            raise ValueError(f"port {index} already exists on {self.name}")
        port = Port(self, index)
        self.ports[index] = port
        return port

    def port_to(self, other: "Node") -> Optional[Port]:
        """The local port whose link leads directly to ``other`` (if any)."""
        for port in self.ports.values():
            peer = port.peer()
            if peer is not None and peer.node is other:
                return port
        return None

    def neighbors(self) -> list:
        """Directly connected nodes."""
        result = []
        for port in self.ports.values():
            peer = port.peer()
            if peer is not None:
                result.append(peer.node)
        return result

    def transmit(self, packet: Packet, port: Port) -> None:
        """Push ``packet`` onto the link attached to ``port``."""
        if port.link is None:
            self.packets_dropped += 1
            return
        self.packets_sent += 1
        port.tx_packets += 1
        port.link.transmit(packet, port)

    def deliver(self, packet: Packet, port: Port) -> None:
        """Called by links when a packet arrives at ``port``."""
        self.packets_received += 1
        port.rx_packets += 1
        self.receive(packet, port)

    def receive(self, packet: Packet, port: Port) -> None:
        """Handle an arriving packet.  Subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name}, ip={self.ip})"
