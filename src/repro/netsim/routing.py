"""Underlay L3 routing: shortest-path forwarding tables.

NetChain's chain routing rides on top of whatever underlay routing the
datacenter already runs (Section 4.2): each switch simply forwards on the
destination IP, and the NetChain program rewrites the destination IP to the
next chain hop.  This module plays the role of that underlay routing
protocol: it computes shortest paths over the physical topology and
installs ``dest-IP -> egress port`` entries in every switch.

It also provides :func:`reroute_around_failures`, the "fast rerouting upon
failures" property of existing routing protocols the paper leans on: after a
switch failure the underlay recomputes paths that avoid the failed device.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import networkx as nx

from repro.netsim.topology import Topology


def _build_routing_graph(topology: Topology, exclude: Iterable[str]) -> nx.Graph:
    excluded = set(exclude)
    graph = nx.Graph()
    for name in topology.graph.nodes:
        if name not in excluded:
            graph.add_node(name)
    for a, b in topology.graph.edges:
        if a not in excluded and b not in excluded:
            graph.add_edge(a, b)
    return graph


def install_shortest_path_routes(topology: Topology,
                                 exclude: Optional[Iterable[str]] = None) -> None:
    """Install dest-IP forwarding entries on every switch.

    Args:
        topology: the network.
        exclude: node names (typically failed switches) to route around.

    Paths are computed hop-count shortest paths; when several equal-cost
    next hops exist the lexicographically smallest neighbour is chosen so
    the routing is deterministic (tests rely on this).
    """
    exclude = list(exclude or [])
    excluded_set = set(exclude)
    graph = _build_routing_graph(topology, exclude)
    full_graph = _build_routing_graph(topology, [])
    # next_hop[src][dst_name] = neighbour name on a shortest path.
    for switch_name, switch in topology.switches.items():
        if switch_name in exclude:
            continue
        switch.forwarding_table.clear()
        if switch_name not in graph:
            continue
        # BFS tree from each destination would be O(n^2); for the sizes used
        # here (<= ~100 switches) per-source shortest paths are fine.
        paths = nx.single_source_shortest_path(graph, switch_name)
        for dst_name, path in paths.items():
            if dst_name == switch_name or len(path) < 2:
                continue
            dst_node = topology.node(dst_name)
            candidates = _equal_cost_next_hops(graph, switch_name, dst_name, len(path) - 1)
            next_hop_name = sorted(candidates)[0]
            next_hop = topology.node(next_hop_name)
            port = switch.port_to(next_hop)
            if port is not None:
                switch.forwarding_table[dst_node.ip] = port
        # Routes *toward* an excluded (failed) node are kept on the full
        # graph: NetChain's failover relies on packets still flowing toward
        # the failed switch until one of its neighbours intercepts them with
        # a redirect rule (Algorithm 2).
        for dst_name in sorted(excluded_set):
            if dst_name not in full_graph or dst_name == switch_name:
                continue
            try:
                path = nx.shortest_path(full_graph, switch_name, dst_name)
            except nx.NetworkXNoPath:
                continue
            if len(path) < 2:
                continue
            dst_node = topology.node(dst_name)
            next_hop = topology.node(path[1])
            port = switch.port_to(next_hop)
            if port is not None:
                switch.forwarding_table[dst_node.ip] = port


def _equal_cost_next_hops(graph: nx.Graph, src: str, dst: str, dist: int) -> List[str]:
    """Neighbours of ``src`` that lie on some shortest path to ``dst``."""
    lengths = nx.single_source_shortest_path_length(graph, dst)
    result = []
    for neighbor in graph.neighbors(src):
        if lengths.get(neighbor, float("inf")) == dist - 1:
            result.append(neighbor)
    return result or [dst]


def reroute_around_failures(topology: Topology, failed: Iterable[str]) -> None:
    """Recompute underlay routes avoiding the given failed nodes."""
    install_shortest_path_routes(topology, exclude=failed)


def path_between(topology: Topology, src: str, dst: str,
                 exclude: Optional[Iterable[str]] = None) -> List[str]:
    """Shortest physical path between two nodes (node names, inclusive)."""
    graph = _build_routing_graph(topology, exclude or [])
    return nx.shortest_path(graph, src, dst)


def hop_count(topology: Topology, src: str, dst: str) -> int:
    """Number of links on the shortest path between two nodes."""
    return len(path_between(topology, src, dst)) - 1


def switch_hops_on_path(topology: Topology, src: str, dst: str) -> List[str]:
    """Switch names traversed between ``src`` and ``dst`` (exclusive of hosts)."""
    return [name for name in path_between(topology, src, dst)
            if name in topology.switches]
