"""Link model: propagation delay, serialization, loss and reordering.

The paper's chain protocol explicitly copes with the network's best-effort
delivery (Section 4.3): packets between chain switches can be *lost* or
*reordered*.  Both behaviours are modelled here so that the sequence-number
ordering protocol and the client retry logic are actually exercised.

Loss injection matches the evaluation setup of Figure 9(d): a loss
probability applied independently per traversal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.netsim.node import Port
from repro.netsim.packet import IP_WIRE_OVERHEAD, UDP_WIRE_OVERHEAD, Packet
from repro.netsim.stats import LinkStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.engine import Simulator


@dataclass
class LinkConfig:
    """Per-link parameters.

    Attributes:
        delay: one-way propagation delay in seconds.  Datacenter cable runs
            are a few hundred nanoseconds.
        bandwidth_bps: link speed in bits/sec; ``None`` disables
            serialization delay (useful for analytic experiments where the
            capacity model lives in the switch service rate instead).
        loss_rate: probability that a packet traversing the link is dropped.
        reorder_jitter: if non-zero, each delivery is additionally delayed by
            a uniform random amount in ``[0, reorder_jitter]`` seconds, which
            lets later packets overtake earlier ones.
    """

    delay: float = 200e-9
    bandwidth_bps: Optional[float] = 40e9
    loss_rate: float = 0.0
    reorder_jitter: float = 0.0


class Link:
    """A full-duplex point-to-point link between two ports."""

    def __init__(self, sim: "Simulator", port_a: Port, port_b: Port,
                 config: Optional[LinkConfig] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.sim = sim
        self.port_a = port_a
        self.port_b = port_b
        self.config = config or LinkConfig()
        self.rng = rng or random.Random(0)
        self.delivered = 0
        self.dropped = 0
        #: Per-cause delivery/drop accounting (see :class:`LinkStats`).
        self.stats = LinkStats()
        #: Administrative/fault state: a downed link drops every packet
        #: (counted in ``stats.dropped_down``) instead of delivering.
        self.up = True
        #: Optional fault model installed by :mod:`repro.netsim.faults`;
        #: anything with an ``on_transmit(packet) -> FaultVerdict`` method.
        self.faults = None
        #: Optional telemetry tracer (:class:`repro.core.trace.Tracer`);
        #: ``None`` keeps transmission on the untraced fast path.
        self.telemetry = None
        #: Bits carried (accumulated by the tracer for utilization series).
        self.tel_bits = 0.0
        port_a.link = self
        port_b.link = self

    def set_down(self) -> None:
        """Take the link down; subsequent packets are dropped and counted."""
        self.up = False

    def set_up(self) -> None:
        """Bring the link back up."""
        self.up = True

    @property
    def name(self) -> str:
        """Stable ``a-b`` label used in fault traces and stats reports."""
        ends = sorted([self.port_a.node.name, self.port_b.node.name])
        return f"{ends[0]}-{ends[1]}"

    def other_end(self, port: Port) -> Port:
        """The port at the opposite end from ``port``."""
        if port is self.port_a:
            return self.port_b
        if port is self.port_b:
            return self.port_a
        raise ValueError("port is not attached to this link")

    def connects(self, node_a, node_b) -> bool:
        """Whether this link joins the two given nodes (in either order)."""
        ends = {self.port_a.node, self.port_b.node}
        return ends == {node_a, node_b}

    def transmit(self, packet: Packet, from_port: Port) -> None:
        """Carry ``packet`` from ``from_port`` to the opposite port."""
        if from_port is self.port_a:
            dst_port = self.port_b
        elif from_port is self.port_b:
            dst_port = self.port_a
        else:
            raise ValueError("port is not attached to this link")
        if not self.up:
            self.dropped += 1
            self.stats.dropped_down += 1
            return
        cfg = self.config
        if cfg.loss_rate > 0 and self.rng.random() < cfg.loss_rate:
            self.dropped += 1
            self.stats.dropped_loss += 1
            return
        latency = cfg.delay
        if cfg.bandwidth_bps:
            size = packet.payload_bytes + (
                UDP_WIRE_OVERHEAD if packet.udp is not None else IP_WIRE_OVERHEAD)
            latency += size * 8.0 / cfg.bandwidth_bps
        if cfg.reorder_jitter > 0:
            latency += self.rng.uniform(0.0, cfg.reorder_jitter)
            self.stats.reordered += 1
        if self.faults is not None:
            verdict = self.faults.on_transmit(packet)
            if verdict.drop:
                self.dropped += 1
                if verdict.reason == "corrupt":
                    self.stats.dropped_corrupt += 1
                else:
                    self.stats.dropped_loss += 1
                return
            if verdict.extra_delay > 0:
                latency += verdict.extra_delay
                self.stats.delayed += 1
            if verdict.reordered:
                self.stats.reordered += 1
        tel = self.telemetry
        if tel is not None:
            tel.link_tx(self, packet, latency,
                        packet.payload_bytes + (UDP_WIRE_OVERHEAD
                                                if packet.udp is not None
                                                else IP_WIRE_OVERHEAD))
        self.sim.call_after(latency, self._deliver, packet, dst_port)

    def _deliver(self, packet: Packet, dst_port: Port) -> None:
        self.delivered += 1
        self.stats.delivered += 1
        # Inlined Node.deliver (one call per hop on the hot path).
        node = dst_port.node
        node.packets_received += 1
        dst_port.rx_packets += 1
        node.receive(packet, dst_port)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.port_a.name} <-> {self.port_b.name})"


def connect(sim: "Simulator", node_a, node_b, config: Optional[LinkConfig] = None,
            rng: Optional[random.Random] = None) -> Link:
    """Create a new port on each node and wire them with a link."""
    port_a = node_a.add_port()
    port_b = node_b.add_port()
    return Link(sim, port_a, port_b, config=config, rng=rng)
