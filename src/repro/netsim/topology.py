"""Topology builders: the 4-switch testbed (Figure 8) and spine-leaf fabrics.

A :class:`Topology` bundles a simulator, its switches, hosts and links, and
keeps a :mod:`networkx` graph of the physical connectivity that the underlay
routing (:mod:`repro.netsim.routing`) uses to compute shortest paths.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional

import networkx as nx

from repro.netsim.engine import Simulator
from repro.netsim.host import Host, HostConfig, dpdk_host_config
from repro.netsim.link import Link, LinkConfig, connect
from repro.netsim.node import Node
from repro.netsim.switch import Switch, SwitchConfig


class Topology:
    """A simulated network: switches, hosts, links and their graph."""

    def __init__(self, sim: Optional[Simulator] = None, seed: int = 0) -> None:
        self.sim = sim or Simulator()
        self.rng = random.Random(seed)
        self.switches: Dict[str, Switch] = {}
        self.hosts: Dict[str, Host] = {}
        self.links: List[Link] = []
        self.graph = nx.Graph()
        self._next_switch_ip = 1
        self._next_host_ip = 1

    # ------------------------------------------------------------------ #
    # Construction.
    # ------------------------------------------------------------------ #

    def add_switch(self, name: str, config: Optional[SwitchConfig] = None,
                   ip: Optional[str] = None) -> Switch:
        """Create a switch; IPs default to ``10.0.0.x``."""
        if name in self.switches or name in self.hosts:
            raise ValueError(f"duplicate node name {name!r}")
        if ip is None:
            ip = f"10.0.0.{self._next_switch_ip}"
            self._next_switch_ip += 1
        switch = Switch(self.sim, name, ip, config=config,
                        rng=random.Random(self.rng.randrange(1 << 30)))
        self.switches[name] = switch
        self.graph.add_node(name, kind="switch")
        return switch

    def add_host(self, name: str, config: Optional[HostConfig] = None,
                 ip: Optional[str] = None) -> Host:
        """Create a host; IPs default to ``10.1.0.x``."""
        if name in self.switches or name in self.hosts:
            raise ValueError(f"duplicate node name {name!r}")
        if ip is None:
            third = self._next_host_ip // 250
            fourth = self._next_host_ip % 250 + 1
            ip = f"10.1.{third}.{fourth}"
            self._next_host_ip += 1
        host = Host(self.sim, name, ip, config=config,
                    rng=random.Random(self.rng.randrange(1 << 30)))
        self.hosts[name] = host
        self.graph.add_node(name, kind="host")
        return host

    def add_link(self, a: Node, b: Node, config: Optional[LinkConfig] = None) -> Link:
        """Wire two nodes together."""
        link = connect(self.sim, a, b, config=config,
                       rng=random.Random(self.rng.randrange(1 << 30)))
        self.links.append(link)
        self.graph.add_edge(a.name, b.name)
        return link

    def attach_switch(self, name: str, neighbors: Iterable[str],
                      switch_config: Optional[SwitchConfig] = None,
                      link_config: Optional[LinkConfig] = None) -> Switch:
        """Hot-plug a switch into a (possibly running) simulation: create
        the device and wire it to existing nodes in one call.

        The caller still owns routing (recompute shortest paths) and any
        control-plane onboarding; this only performs the physical bring-up.
        """
        switch = self.add_switch(name, config=switch_config)
        for neighbor in neighbors:
            self.add_link(switch, self.node(neighbor), config=link_config)
        return switch

    # ------------------------------------------------------------------ #
    # Lookup helpers.
    # ------------------------------------------------------------------ #

    def node(self, name: str) -> Node:
        """Node (switch or host) by name."""
        if name in self.switches:
            return self.switches[name]
        if name in self.hosts:
            return self.hosts[name]
        raise KeyError(name)

    def all_nodes(self) -> List[Node]:
        """Every switch and host."""
        return list(self.switches.values()) + list(self.hosts.values())

    def node_by_ip(self, ip: str) -> Optional[Node]:
        """Node whose interface address is ``ip``."""
        for node in self.all_nodes():
            if node.ip == ip:
                return node
        return None

    def link_between(self, a: Node, b: Node) -> Optional[Link]:
        """The physical link joining two nodes, if they are adjacent."""
        for link in self.links:
            if link.connects(a, b):
                return link
        return None

    def set_loss_rate(self, loss_rate: float, switches: Optional[Iterable[str]] = None) -> None:
        """Inject a per-switch random loss rate (Figure 9(d) methodology)."""
        targets = self.switches.values() if switches is None else [
            self.switches[name] for name in switches]
        for switch in targets:
            switch.injected_loss_rate = loss_rate

    def run(self, until: float) -> None:
        """Advance the simulation."""
        self.sim.run(until=until)


# ---------------------------------------------------------------------- #
# Builders.
# ---------------------------------------------------------------------- #

def build_testbed(switch_config: Optional[SwitchConfig] = None,
                  host_config: Optional[HostConfig] = None,
                  link_config: Optional[LinkConfig] = None,
                  num_hosts: int = 4,
                  seed: int = 0) -> Topology:
    """The paper's evaluation testbed (Figure 8).

    Four switches S0..S3 arranged in a ring (S0-S1-S2-S3-S0), with the
    client/server machines attached to S0.  This reproduces the evaluated
    paths: the chain ``[S0, S1, S2]`` makes a query from H0 traverse
    ``H0-S0-S1-S2-S1-S0-H0`` (each switch processes the packet twice), and
    S3 provides the alternate path ``S0-S3-S2`` used for read queries in the
    failure-handling experiment (Section 8.4).
    """
    topo = Topology(seed=seed)
    host_config = host_config or dpdk_host_config()
    switches = [topo.add_switch(f"S{i}", config=switch_config) for i in range(4)]
    for a, b in [(0, 1), (1, 2), (2, 3), (3, 0)]:
        topo.add_link(switches[a], switches[b], config=link_config)
    for i in range(num_hosts):
        host = topo.add_host(f"H{i}", config=host_config)
        topo.add_link(host, switches[0], config=link_config)
    return topo


def build_spine_leaf(num_spines: int, num_leaves: int,
                     hosts_per_leaf: int = 0,
                     switch_config: Optional[SwitchConfig] = None,
                     host_config: Optional[HostConfig] = None,
                     link_config: Optional[LinkConfig] = None,
                     seed: int = 0) -> Topology:
    """A two-layer spine-leaf fabric (Section 8.3).

    Every leaf connects to every spine.  The paper assumes 64-port switches,
    32 servers per leaf, and a non-blocking fabric (spines = leaves / 2); the
    builder does not enforce those ratios so tests can use small instances.
    """
    topo = Topology(seed=seed)
    spines = [topo.add_switch(f"spine{i}", config=switch_config) for i in range(num_spines)]
    leaves = [topo.add_switch(f"leaf{i}", config=switch_config) for i in range(num_leaves)]
    for leaf in leaves:
        for spine in spines:
            topo.add_link(leaf, spine, config=link_config)
    for li, leaf in enumerate(leaves):
        for h in range(hosts_per_leaf):
            host = topo.add_host(f"h{li}_{h}", config=host_config)
            topo.add_link(host, leaf, config=link_config)
    return topo


def build_line(num_switches: int,
               hosts_at: Optional[Dict[int, int]] = None,
               switch_config: Optional[SwitchConfig] = None,
               host_config: Optional[HostConfig] = None,
               link_config: Optional[LinkConfig] = None,
               seed: int = 0) -> Topology:
    """A simple line of switches, useful for unit tests.

    ``hosts_at`` maps switch index -> number of hosts attached there.
    """
    topo = Topology(seed=seed)
    switches = [topo.add_switch(f"S{i}", config=switch_config) for i in range(num_switches)]
    for i in range(num_switches - 1):
        topo.add_link(switches[i], switches[i + 1], config=link_config)
    for index, count in (hosts_at or {}).items():
        for h in range(count):
            host = topo.add_host(f"H{index}_{h}", config=host_config)
            topo.add_link(host, switches[index], config=link_config)
    return topo
