"""Register arrays: the switch on-chip SRAM exposed to the data plane.

Tofino-class ASICs provide per-stage register arrays that a P4 program can
read and modify at line rate.  NetChain stores values and sequence numbers
in them (Section 4.1).  The model here enforces the two resource limits the
paper discusses:

* a total SRAM budget per switch (tens of MB, Section 6), and
* a per-stage value width limit -- a single pipeline pass can only touch
  ``n`` bytes per stage across ``k`` stages, so values larger than ``k*n``
  need recirculation (Section 6, "Value size").
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class RegisterAllocationError(RuntimeError):
    """Raised when an allocation would exceed the switch SRAM budget."""


class RegisterArray:
    """A fixed-size array of slots, each holding ``bytes_per_slot`` bytes."""

    def __init__(self, name: str, slots: int, bytes_per_slot: int,
                 initial: Any = None) -> None:
        self.name = name
        self.slots = slots
        self.bytes_per_slot = bytes_per_slot
        self._data: List[Any] = [initial] * slots

    def size_bytes(self) -> int:
        """Total SRAM consumed by this array."""
        return self.slots * self.bytes_per_slot

    def read(self, index: int) -> Any:
        """Read slot ``index``."""
        return self._data[index]

    def write(self, index: int, value: Any) -> None:
        """Write slot ``index``."""
        self._data[index] = value

    def fill(self, value: Any) -> None:
        """Reset every slot to ``value``."""
        for i in range(self.slots):
            self._data[i] = value

    def snapshot(self) -> List[Any]:
        """A copy of the whole array (used by the controller's state sync)."""
        return list(self._data)

    def load(self, values: List[Any]) -> None:
        """Overwrite the array from a snapshot of the same length.

        In-place so that readers holding a direct reference to the backing
        list keep observing the array.  Note: the NetChain store arrays
        (``netchain_*``) are owned by :class:`repro.core.kvstore.SwitchKVStore`,
        which maintains derived lookup/value mirrors -- state on those
        arrays must be written through the store's ``write_loc``/
        ``import_items``, not by loading snapshots into the raw arrays.
        """
        if len(values) != self.slots:
            raise ValueError(
                f"snapshot length {len(values)} does not match array size {self.slots}")
        self._data[:] = values

    def __len__(self) -> int:
        return self.slots


class RegisterFile:
    """All register arrays on one switch, with an SRAM budget."""

    def __init__(self, sram_bytes: Optional[int] = None) -> None:
        self.sram_bytes = sram_bytes
        self.arrays: Dict[str, RegisterArray] = {}

    def allocated_bytes(self) -> int:
        """SRAM currently consumed by allocated arrays."""
        return sum(array.size_bytes() for array in self.arrays.values())

    def allocate(self, name: str, slots: int, bytes_per_slot: int,
                 initial: Any = None) -> RegisterArray:
        """Allocate a new named array, enforcing the SRAM budget."""
        if name in self.arrays:
            raise ValueError(f"register array {name!r} already allocated")
        requested = slots * bytes_per_slot
        if self.sram_bytes is not None and self.allocated_bytes() + requested > self.sram_bytes:
            raise RegisterAllocationError(
                f"allocating {requested} bytes for {name!r} exceeds SRAM budget "
                f"({self.allocated_bytes()}/{self.sram_bytes} bytes used)")
        array = RegisterArray(name, slots, bytes_per_slot, initial=initial)
        self.arrays[name] = array
        return array

    def get(self, name: str) -> RegisterArray:
        """Look up an array by name."""
        return self.arrays[name]

    def free(self, name: str) -> None:
        """Release an array back to the SRAM pool."""
        self.arrays.pop(name, None)
