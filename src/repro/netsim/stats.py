"""Measurement helpers: latency distributions and throughput time series.

The evaluation section of the paper reports saturation throughput
(Figures 9(a)-(d), 9(f), 11), latency-vs-throughput curves (Figure 9(e)) and
per-second throughput time series around failures (Figure 10).  These small
collectors provide exactly those aggregations.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass
class LinkStats:
    """Per-link delivery/drop accounting, split by cause.

    Fault injection (:mod:`repro.netsim.faults`) distinguishes *why* a
    packet never arrived: an administratively/fault-downed link, the
    probabilistic loss model, or corruption (dropped by the receiver's FCS
    check).  Tests assert on these counters to prove a fault actually
    fired, and experiments report them alongside throughput.
    """

    delivered: int = 0
    #: Dropped because the link was down (fault-injected or partitioned).
    dropped_down: int = 0
    #: Dropped by the probabilistic loss model.
    dropped_loss: int = 0
    #: Dropped because the frame was corrupted in flight.
    dropped_corrupt: int = 0
    #: Deliveries that were given extra fault-model delay.
    delayed: int = 0
    #: Deliveries that were given reordering jitter.
    reordered: int = 0

    def total_dropped(self) -> int:
        """Packets lost on this link for any reason."""
        return self.dropped_down + self.dropped_loss + self.dropped_corrupt


#: Exact samples a :class:`LatencyRecorder` keeps before collapsing into
#: a bounded histogram.  Small figure runs stay exact; 1M-op runs stay
#: in fixed memory.
DEFAULT_MAX_EXACT_SAMPLES = 65536


class LatencyRecorder:
    """Collects per-query latencies and reports summary statistics.

    Up to ``max_exact_samples`` samples are kept verbatim, so small runs
    (the figure experiments, the property tests) get exact nearest-rank
    percentiles -- identical numerics to the historical all-samples
    recorder.  Past the threshold the recorder collapses into a fixed
    :class:`~repro.netsim.telemetry.LogBucketHistogram` (bounded memory,
    <~3% relative quantile error) and keeps recording there.  Pass
    ``max_exact_samples=None`` to force exact mode regardless of size, or
    ``0`` to go straight to the histogram.
    """

    def __init__(self, max_exact_samples: int | None = DEFAULT_MAX_EXACT_SAMPLES) -> None:
        self.samples: List[float] = []
        self.max_exact_samples = max_exact_samples
        self._hist = None

    def _collapse(self):
        """Move the exact samples into a histogram; further recording is bounded."""
        from repro.netsim.telemetry import LogBucketHistogram

        hist = self._hist = LogBucketHistogram()
        for sample in self.samples:
            hist.record(sample)
        self.samples = []
        return hist

    @property
    def collapsed(self) -> bool:
        """Whether the recorder has switched to bounded-histogram mode."""
        return self._hist is not None

    def record(self, latency: float) -> None:
        """Add one latency sample (seconds)."""
        hist = self._hist
        if hist is not None:
            hist.record(latency)
            return
        self.samples.append(latency)
        limit = self.max_exact_samples
        if limit is not None and len(self.samples) > limit:
            self._collapse()

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one.

        Stays exact while the combined sample count fits under this
        recorder's threshold; collapses (both sides' views) into the
        histogram otherwise.
        """
        if (self._hist is None and other._hist is None
                and (self.max_exact_samples is None
                     or len(self.samples) + len(other.samples)
                     <= self.max_exact_samples)):
            self.samples.extend(other.samples)
            return
        hist = self._hist if self._hist is not None else self._collapse()
        if other._hist is not None:
            hist.merge(other._hist)
        else:
            for sample in other.samples:
                hist.record(sample)

    def count(self) -> int:
        hist = self._hist
        if hist is not None:
            return hist.count
        return len(self.samples)

    def mean(self) -> float:
        """Mean latency, 0.0 when empty (exact in both modes)."""
        hist = self._hist
        if hist is not None:
            return hist.mean()
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def percentile(self, p: float) -> float:
        """p-th percentile (0-100): nearest-rank while exact, bucketed after."""
        hist = self._hist
        if hist is not None:
            return hist.percentile(p)
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, int(math.ceil(p / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    def median(self) -> float:
        return self.percentile(50.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def clear(self) -> None:
        self.samples.clear()
        self._hist = None

    # -- serialization (matrix workers ship recorder state as JSON) ------ #

    def state_dict(self) -> dict:
        """A JSON-safe snapshot of the recorder.

        ``from_state(state_dict())`` reproduces the recorder exactly --
        mode (exact samples vs collapsed histogram), every sample/bucket,
        and the collapse threshold -- so per-cell recorders can cross a
        process boundary as JSON and still :meth:`merge` losslessly.
        """
        if self._hist is not None:
            return {"mode": "histogram",
                    "max_exact_samples": self.max_exact_samples,
                    "histogram": self._hist.state_dict()}
        return {"mode": "exact",
                "max_exact_samples": self.max_exact_samples,
                "samples": list(self.samples)}

    @classmethod
    def from_state(cls, state: dict) -> "LatencyRecorder":
        """Rebuild a recorder from :meth:`state_dict` output."""
        mode = state.get("mode")
        if mode not in ("exact", "histogram"):
            raise ValueError(f"LatencyRecorder state has unknown mode {mode!r}")
        recorder = cls(max_exact_samples=state.get(
            "max_exact_samples", DEFAULT_MAX_EXACT_SAMPLES))
        if mode == "histogram":
            from repro.netsim.telemetry import LogBucketHistogram
            recorder._hist = LogBucketHistogram.from_state(state["histogram"])
        else:
            recorder.samples = [float(sample) for sample in state["samples"]]
        return recorder


class ThroughputTimeSeries:
    """Counts completions into fixed-width time bins (Figure 10 style)."""

    def __init__(self, bin_width: float = 1.0) -> None:
        self.bin_width = bin_width
        self.bins: Dict[int, int] = {}

    def record(self, time: float, count: int = 1) -> None:
        """Record ``count`` completions at simulation time ``time``."""
        index = int(time / self.bin_width)
        self.bins[index] = self.bins.get(index, 0) + count

    def series(self) -> List[Tuple[float, float]]:
        """(bin start time, rate per second) for every bin, gaps included."""
        if not self.bins:
            return []
        first = min(self.bins)
        last = max(self.bins)
        result = []
        for index in range(first, last + 1):
            rate = self.bins.get(index, 0) / self.bin_width
            result.append((index * self.bin_width, rate))
        return result

    def rate_at(self, time: float) -> float:
        """Rate in the bin containing ``time``."""
        index = int(time / self.bin_width)
        return self.bins.get(index, 0) / self.bin_width

    def total(self) -> int:
        """Total completions recorded."""
        return sum(self.bins.values())


@dataclass
class ThroughputMeasurement:
    """Result of a fixed-duration throughput measurement."""

    completed: int = 0
    duration: float = 0.0
    #: Multiplier applied when mapping scaled simulation rates back to the
    #: paper's absolute rates (see DESIGN.md, "Scale model").
    scale: float = 1.0

    def qps(self) -> float:
        """Queries per second in simulated (scaled-down) units."""
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration

    def scaled_qps(self) -> float:
        """Queries per second scaled back to the paper's absolute units."""
        return self.qps() * self.scale

    def scaled_mqps(self) -> float:
        """Scaled throughput in millions of queries per second."""
        return self.scaled_qps() / 1e6


class IntervalCounter:
    """Counts events and reports rates over arbitrary time windows."""

    def __init__(self) -> None:
        self._times: List[float] = []

    def record(self, time: float) -> None:
        self._times.append(time)

    def count_between(self, start: float, end: float) -> int:
        """Number of events with ``start <= t < end`` (times must be recorded
        in nondecreasing order, which simulation time guarantees)."""
        lo = bisect_right(self._times, start - 1e-15)
        hi = bisect_right(self._times, end - 1e-15)
        return hi - lo

    def rate_between(self, start: float, end: float) -> float:
        """Average events per second over the window."""
        if end <= start:
            return 0.0
        return self.count_between(start, end) / (end - start)

    def total(self) -> int:
        return len(self._times)
