"""A simplified TCP-like reliable transport for server-based baselines.

The paper attributes ZooKeeper's collapse under packet loss (Figure 9(d)) to
its use of TCP: "ZooKeeper uses TCP for reliable transmission which has a
lot of overhead under high loss rate, whereas NetChain simply uses UDP and
lets the clients retry".  To reproduce that behaviour the ZooKeeper baseline
runs its messages over this transport, which models the relevant TCP
machinery:

* in-order delivery with cumulative acknowledgements,
* a retransmission timeout with exponential backoff,
* an AIMD congestion window that halves on every loss event.

It is message-oriented rather than byte-stream-oriented: the unit of
transmission is an application message, which keeps the model cheap while
preserving the dynamics that matter for throughput under loss.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.netsim.host import Host
from repro.netsim.packet import Packet

_conn_ids = itertools.count(1)
_port_allocator: Dict[str, int] = {}


def _allocate_port(host: Host) -> int:
    port = _port_allocator.get(host.name, 40000)
    _port_allocator[host.name] = port + 1
    return port


@dataclass
class TcpConfig:
    """Transport parameters.

    The 20 ms minimum retransmission timeout models a datacenter-tuned TCP
    stack (Linux ships 200 ms; operators lower it for RPC workloads).  It is
    the constant that produces ZooKeeper's collapse under packet loss in
    Figure 9(d): every lost segment stalls its connection for at least one
    RTO, versus the microsecond-scale retry of NetChain's UDP clients.
    """

    #: Initial retransmission timeout in seconds.
    initial_rto: float = 20e-3
    #: Lower bound on the RTO (datacenter-tuned minimum).
    min_rto: float = 20e-3
    #: Upper bound on the RTO after backoff.
    max_rto: float = 1.0
    #: Initial congestion window, in messages.
    initial_cwnd: int = 10
    #: Maximum congestion window, in messages.
    max_cwnd: int = 64
    #: Bytes charged for an ACK segment.
    ack_bytes: int = 60
    #: Fixed per-segment header overhead in bytes.
    header_bytes: int = 40


@dataclass
class Segment:
    """A data or ACK segment carried inside a UDP packet."""

    conn_id: int
    kind: str  # "data" or "ack"
    seq: int
    message: Any = None
    size_bytes: int = 0

    def copy(self) -> "Segment":
        return Segment(conn_id=self.conn_id, kind=self.kind, seq=self.seq,
                       message=self.message, size_bytes=self.size_bytes)


@dataclass
class _Outstanding:
    segment: Segment
    sent_at: float
    retries: int = 0
    timer: Any = None


class TcpEndpoint:
    """One side of a connection."""

    def __init__(self, conn: "TcpConnection", host: Host, local_port: int,
                 remote_host: Host, remote_port: int) -> None:
        self.conn = conn
        self.host = host
        self.local_port = local_port
        self.remote_host = remote_host
        self.remote_port = remote_port
        self.on_message: Optional[Callable[[Any], None]] = None
        # Sender state.
        self._next_seq = 0
        self._send_queue: List[Segment] = []
        self._outstanding: Dict[int, _Outstanding] = {}
        self._cwnd = float(conn.config.initial_cwnd)
        self._rto = conn.config.initial_rto
        self._srtt: Optional[float] = None
        # Receiver state.
        self._expected_seq = 0
        self._reorder_buffer: Dict[int, Segment] = {}
        # Stats.
        self.messages_sent = 0
        self.messages_delivered = 0
        self.retransmissions = 0
        self.closed = False
        host.bind(local_port, self._on_packet)

    # -------------------------------------------------------------- #
    # Sending.
    # -------------------------------------------------------------- #

    def send(self, message: Any, size_bytes: int = 100) -> None:
        """Queue an application message for reliable in-order delivery."""
        if self.closed:
            return
        segment = Segment(conn_id=self.conn.conn_id, kind="data", seq=self._next_seq,
                          message=message, size_bytes=size_bytes)
        self._next_seq += 1
        self._send_queue.append(segment)
        self.messages_sent += 1
        self._pump()

    def _pump(self) -> None:
        while self._send_queue and len(self._outstanding) < int(self._cwnd):
            segment = self._send_queue.pop(0)
            self._transmit(segment, retries=0)

    def _transmit(self, segment: Segment, retries: int) -> None:
        if self.closed:
            return
        cfg = self.conn.config
        self.host.send_udp(self.remote_host.ip, self.remote_port, segment.copy(),
                           payload_bytes=segment.size_bytes + cfg.header_bytes,
                           src_port=self.local_port)
        out = _Outstanding(segment=segment, sent_at=self.host.sim.now, retries=retries)
        rto = min(cfg.max_rto, self._rto * (2 ** retries))
        out.timer = self.host.sim.schedule(rto, self._on_timeout, segment.seq)
        self._outstanding[segment.seq] = out

    def _on_timeout(self, seq: int) -> None:
        out = self._outstanding.get(seq)
        if out is None or self.closed:
            return
        # Loss event: retransmit with backoff and halve the window.
        self.retransmissions += 1
        self._cwnd = max(1.0, self._cwnd / 2.0)
        self._transmit(out.segment, retries=out.retries + 1)

    # -------------------------------------------------------------- #
    # Receiving.
    # -------------------------------------------------------------- #

    def _on_packet(self, packet: Packet) -> None:
        segment = packet.payload
        if not isinstance(segment, Segment) or segment.conn_id != self.conn.conn_id:
            return
        if segment.kind == "ack":
            self._on_ack(segment.seq)
            return
        # Data segment: always acknowledge (the ACK carries the segment seq).
        self._send_ack(segment.seq)
        if segment.seq < self._expected_seq:
            return  # duplicate
        self._reorder_buffer[segment.seq] = segment
        while self._expected_seq in self._reorder_buffer:
            ready = self._reorder_buffer.pop(self._expected_seq)
            self._expected_seq += 1
            self.messages_delivered += 1
            if self.on_message is not None:
                self.on_message(ready.message)

    def _send_ack(self, seq: int) -> None:
        cfg = self.conn.config
        ack = Segment(conn_id=self.conn.conn_id, kind="ack", seq=seq)
        self.host.send_udp(self.remote_host.ip, self.remote_port, ack,
                           payload_bytes=cfg.ack_bytes, src_port=self.local_port)

    def _on_ack(self, seq: int) -> None:
        out = self._outstanding.pop(seq, None)
        if out is None:
            return
        if out.timer is not None:
            out.timer.cancel()
        if out.retries == 0:
            sample = self.host.sim.now - out.sent_at
            cfg = self.conn.config
            self._srtt = sample if self._srtt is None else 0.875 * self._srtt + 0.125 * sample
            self._rto = min(cfg.max_rto, max(cfg.min_rto, 2.0 * self._srtt))
        # Additive increase: one message per window's worth of ACKs.
        cfg = self.conn.config
        self._cwnd = min(float(cfg.max_cwnd), self._cwnd + 1.0 / max(self._cwnd, 1.0))
        self._pump()

    def close(self) -> None:
        """Tear down this side of the connection."""
        self.closed = True
        for out in self._outstanding.values():
            if out.timer is not None:
                out.timer.cancel()
        self._outstanding.clear()
        self._send_queue.clear()
        self.host.unbind(self.local_port)


class TcpConnection:
    """A bidirectional reliable connection between two hosts."""

    def __init__(self, host_a: Host, host_b: Host,
                 config: Optional[TcpConfig] = None) -> None:
        self.conn_id = next(_conn_ids)
        self.config = config or TcpConfig()
        port_a = _allocate_port(host_a)
        port_b = _allocate_port(host_b)
        self._endpoints: Dict[str, TcpEndpoint] = {}
        self._endpoints[host_a.name] = TcpEndpoint(self, host_a, port_a, host_b, port_b)
        self._endpoints[host_b.name] = TcpEndpoint(self, host_b, port_b, host_a, port_a)

    def endpoint(self, host: Host) -> TcpEndpoint:
        """The endpoint living on ``host``."""
        return self._endpoints[host.name]

    def close(self) -> None:
        """Close both endpoints."""
        for endpoint in self._endpoints.values():
            endpoint.close()
