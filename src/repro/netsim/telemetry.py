"""Deterministic telemetry primitives for the network simulator.

This module holds the *mechanism* half of the telemetry plane: a metrics
registry (counters, gauges, fixed log-bucket histograms), a sim-time
periodic sampler that turns queue depths, link utilization and SRAM
occupancy into time series, and a structured control-plane event log.
The *policy* half -- per-query span tracing, the ``trace/v1`` run-dir
format and the scenario wiring -- lives in :mod:`repro.core.trace`,
which composes these pieces into a :class:`~repro.core.trace.TelemetryPlane`.

Everything here is keyed on **sim-time only**: no wall clock, no PIDs,
no process-global counters leak into the output, so a seeded run spills
byte-identical telemetry every time it is replayed.  When telemetry is
disabled (the default) none of this module is on the hot path at all --
instrumented call sites carry a single ``if tel is not None`` branch on
an attribute that stays ``None``.

``python -m repro.netsim.telemetry`` is the operator CLI::

    run    -- execute one traced seeded scenario into a trace/v1 run dir
    report -- reconstruct critical-path breakdowns + per-stage percentiles
    info   -- print the run header and record counts
"""

from __future__ import annotations

import argparse
import json
import math
import resource
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


def peak_rss_bytes() -> int:
    """Peak RSS of this process in bytes.

    ``ru_maxrss`` is reported in KiB on Linux but in bytes on macOS; this
    is the one shared, platform-aware conversion point (used by the perf
    report, the scenario runner and the at-scale verifier).
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss if sys.platform == "darwin" else rss * 1024


class LogBucketHistogram:
    """Fixed log-bucket histogram with bounded memory.

    Values land in geometric buckets of ``buckets_per_decade`` per decade
    starting at ``lo``; percentile queries answer with the geometric
    midpoint of the covering bucket, clamped to the observed [min, max].
    With the default 40 buckets/decade the relative quantile error is
    under ~3%, and memory is a fixed few KiB regardless of sample count
    -- the point of the exercise at 1M-op scales.
    """

    __slots__ = ("lo", "buckets_per_decade", "counts", "count", "total",
                 "min", "max")

    def __init__(self, lo: float = 1e-9, decades: int = 12,
                 buckets_per_decade: int = 40) -> None:
        self.lo = lo
        self.buckets_per_decade = buckets_per_decade
        # Bucket 0 is the underflow bucket (<= lo); the last bucket
        # catches overflow past ``decades`` decades.
        self.counts = [0] * (decades * buckets_per_decade + 2)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _bucket(self, value: float) -> int:
        if value <= self.lo:
            return 0
        idx = int(math.log10(value / self.lo) * self.buckets_per_decade) + 1
        last = len(self.counts) - 1
        return idx if idx < last else last

    def record(self, value: float) -> None:
        self.counts[self._bucket(value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        if not self.count:
            return 0.0
        rank = max(1, int(math.ceil(p / 100.0 * self.count)))
        seen = 0
        for i, n in enumerate(self.counts):
            if not n:
                continue
            seen += n
            if seen >= rank:
                # The underflow/overflow buckets have no midpoint; the
                # observed extremes are the only defensible estimates.
                if i == 0:
                    return self.min
                if i == len(self.counts) - 1:
                    return self.max
                # Geometric midpoint of bucket i, clamped to observations.
                mid = self.lo * 10.0 ** ((i - 0.5) / self.buckets_per_decade)
                return min(self.max, max(self.min, mid))
        return self.max

    def merge(self, other: "LogBucketHistogram") -> None:
        if (other.lo != self.lo
                or other.buckets_per_decade != self.buckets_per_decade
                or len(other.counts) != len(self.counts)):
            raise ValueError("cannot merge histograms with different bucketing")
        for i, n in enumerate(other.counts):
            if n:
                self.counts[i] += n
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean(),
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }

    def state_dict(self) -> Dict:
        """A JSON-safe snapshot (sparse buckets; infinities as ``None``)."""
        return {
            "lo": self.lo,
            "buckets_per_decade": self.buckets_per_decade,
            "num_buckets": len(self.counts),
            "buckets": {str(i): n for i, n in enumerate(self.counts) if n},
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_state(cls, state: Dict) -> "LogBucketHistogram":
        """Rebuild a histogram from :meth:`state_dict` output."""
        buckets_per_decade = state["buckets_per_decade"]
        decades = (state["num_buckets"] - 2) // buckets_per_decade
        hist = cls(lo=state["lo"], decades=decades,
                   buckets_per_decade=buckets_per_decade)
        if len(hist.counts) != state["num_buckets"]:
            raise ValueError(
                f"histogram state has {state['num_buckets']} buckets; "
                f"bucketing reconstructs {len(hist.counts)}")
        for index, n in state["buckets"].items():
            hist.counts[int(index)] = n
        hist.count = state["count"]
        hist.total = state["total"]
        hist.min = state["min"] if state["min"] is not None else math.inf
        hist.max = state["max"] if state["max"] is not None else -math.inf
        return hist


class MetricsRegistry:
    """Named counters, gauges and histograms plus the sampled time series.

    Counters are monotonic floats, gauges are last-write-wins, histograms
    are :class:`LogBucketHistogram`.  ``series`` holds one dict per
    sampler tick (``{"t": sim_time, ...}``) -- the raw material for the
    queue-depth / link-utilization / SRAM time series.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, LogBucketHistogram] = {}
        self.series: List[dict] = []

    def inc(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def histogram(self, name: str) -> LogBucketHistogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = LogBucketHistogram()
        return hist

    def add_sample(self, record: dict) -> None:
        self.series.append(record)

    def summary(self) -> dict:
        out: Dict[str, Any] = {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].summary() for k in sorted(self.histograms)
            },
            "sampled_ticks": len(self.series),
        }
        return out


class ControlEventLog:
    """Structured control-plane events keyed on sim-time.

    The controller, failure detector, migration coordinator and hot-key
    manager emit ``(sim_time, kind, fields)`` tuples through
    ``Controller._emit``; the Figure-10 style failure/recovery timeline
    is *derived* from these records (see :func:`failure_timeline`) rather
    than hand-instrumented.
    """

    __slots__ = ("sim", "events")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.events: List[Tuple[float, str, dict]] = []

    def emit(self, kind: str, **fields) -> None:
        self.events.append((self.sim._now, kind, fields))

    def as_records(self) -> List[dict]:
        records = []
        for t, kind, fields in self.events:
            rec = {"t": t, "ev": kind}
            rec.update(fields)
            records.append(rec)
        return records


def failure_timeline(events: List[dict]) -> List[dict]:
    """Derive per-switch failure/recovery phase durations from event records.

    Returns one dict per failed switch with the detection, fast-failover
    and recovery timestamps plus derived durations -- the data behind the
    paper's Figure-10 timeline.
    """
    timeline: Dict[str, dict] = {}

    def entry(name: str) -> dict:
        if name not in timeline:
            timeline[name] = {"switch": name}
        return timeline[name]

    for rec in events:
        kind = rec.get("ev")
        t = rec.get("t")
        if kind == "failure_detected":
            entry(rec["switch"])["detected_at"] = t
        elif kind == "fast_failover":
            entry(rec["switch"]).setdefault("failover_at", t)
        elif kind == "recovery_start":
            entry(rec["switch"])["recovery_start_at"] = t
        elif kind in ("recovery_complete", "recovery_aborted"):
            e = entry(rec["switch"])
            e["recovery_end_at"] = t
            e["recovery_outcome"] = kind
            for key in ("recovered", "shrunk", "skipped", "items"):
                if key in rec:
                    e[key] = rec[key]
    out = []
    for name in sorted(timeline):
        e = timeline[name]
        detected = e.get("detected_at")
        if detected is not None and e.get("failover_at") is not None:
            e["failover_latency"] = e["failover_at"] - detected
        if e.get("recovery_start_at") is not None and e.get("recovery_end_at") is not None:
            e["recovery_duration"] = e["recovery_end_at"] - e["recovery_start_at"]
        out.append(e)
    return out


@dataclass
class TelemetryConfig:
    """Configuration accepted by ``DeploymentSpec(telemetry=...)``.

    ``True`` or ``{}`` enables everything with defaults; a dict may set
    any field below.  ``run_dir=None`` spills into a fresh temp dir
    (recorded on the result as ``telemetry_dir``).
    """

    sample_interval: float = 5e-3   #: sim-seconds between metric samples
    trace: bool = True              #: per-query span tracing
    metrics: bool = True            #: periodic sampler + registry
    events: bool = True             #: control-plane event log
    run_dir: Optional[str] = None   #: trace/v1 output directory
    trace_sample: int = 1           #: trace every Nth submitted query

    @classmethod
    def coerce(cls, value) -> Optional["TelemetryConfig"]:
        """Normalize the spec field: None/False off, True/dict/instance on."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            try:
                config = cls(**value)
            except TypeError as exc:
                raise ValueError(f"invalid telemetry config: {exc}") from exc
            return config
        raise ValueError(
            f"telemetry must be None, bool, dict or TelemetryConfig, "
            f"got {type(value).__name__}"
        )

    def validate(self) -> None:
        if self.sample_interval <= 0:
            raise ValueError("telemetry sample_interval must be positive")
        if self.trace_sample < 1:
            raise ValueError("telemetry trace_sample must be >= 1")


class PeriodicSampler:
    """Samples topology state into the registry on a fixed sim-time cadence.

    Each tick appends one record to ``registry.series``::

        {"t": ..., "hosts": {name: tx_backlog_s}, "switches": {name:
         {"q": queue_backlog_s, "sram": bytes}}, "links": {name: bits or
         utilization}, "engine": {...}, "opmix": {"vg:op": count}}

    The sampler is strictly read-only over the simulation (it never
    touches RNGs or mutates node state), so enabling it cannot perturb
    the seeded event order.
    """

    def __init__(self, sim, registry: MetricsRegistry, topology,
                 interval: float, opmix_source=None) -> None:
        self.sim = sim
        self.registry = registry
        self.topology = topology
        self.interval = interval
        self.opmix_source = opmix_source
        self._cancel = None
        self._last_link_bits: Dict[str, float] = {}
        self._last_events = 0

    def start(self) -> None:
        self._last_events = self.sim.processed_events
        self._cancel = self.sim.every(self.interval, self._tick,
                                      start=self.interval)

    def stop(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    def _tick(self) -> None:
        sim = self.sim
        now = sim._now
        rec: Dict[str, Any] = {"t": now}

        hosts = {}
        for name, host in self.topology.hosts.items():
            backlog = host._tx_busy_until - now
            if backlog > 0:
                hosts[name] = backlog
        if hosts:
            rec["hosts"] = hosts

        switches = {}
        max_queue = 0.0
        max_sram = 0
        for name, switch in self.topology.switches.items():
            backlog = max(0.0, switch._busy_until - now)
            sram = switch.registers.allocated_bytes()
            if backlog > max_queue:
                max_queue = backlog
            if sram > max_sram:
                max_sram = sram
            if backlog > 0 or sram:
                entry: Dict[str, Any] = {}
                if backlog > 0:
                    entry["q"] = backlog
                if sram:
                    entry["sram"] = sram
                switches[name] = entry
        if switches:
            rec["switches"] = switches

        links = {}
        for link in self.topology.links:
            bits = link.tel_bits
            name = link.name
            delta = bits - self._last_link_bits.get(name, 0.0)
            self._last_link_bits[name] = bits
            if delta <= 0:
                continue
            bandwidth = link.config.bandwidth_bps
            if bandwidth:
                links[name] = delta / (bandwidth * self.interval)
            else:
                links[name] = delta
        if links:
            rec["links"] = links

        stats = sim.stats()
        rec["engine"] = {
            "d": stats["processed_events"] - self._last_events,
            "pending": stats["pending_live"],
        }
        self._last_events = stats["processed_events"]

        source = self.opmix_source
        if source is not None and source.opmix:
            rec["opmix"] = {
                f"vg{vg}:{op}": count
                for (vg, op), count in sorted(source.opmix.items())
            }

        registry = self.registry
        registry.add_sample(rec)
        gauges = registry.gauges
        if max_queue > gauges.get("max_switch_queue_s", 0.0):
            registry.gauge("max_switch_queue_s", max_queue)
        if max_sram > gauges.get("max_sram_bytes", 0):
            registry.gauge("max_sram_bytes", max_sram)
        host_peak = max(hosts.values(), default=0.0)
        if host_peak > gauges.get("max_host_tx_backlog_s", 0.0):
            registry.gauge("max_host_tx_backlog_s", host_peak)
        if links:
            peak_util = max(links.values())
            if peak_util > gauges.get("max_link_utilization", 0.0):
                registry.gauge("max_link_utilization", peak_util)


# ---------------------------------------------------------------------------
# CLI -- lazy imports keep netsim free of module-level repro.core/deploy deps.
# ---------------------------------------------------------------------------

def _cmd_run(args) -> int:
    from repro.deploy import (
        DeploymentSpec,
        ScenarioChecks,
        WorkloadSpec,
        run_scenario,
    )

    faults = []
    if args.failover:
        faults = [(args.duration / 2.0, "fail_switch", "S1")]
    spec = DeploymentSpec(
        backend=args.backend,
        store_size=args.store_size,
        value_size=64,
        seed=args.seed,
        faults=faults,
        options={"fault_reaction": True} if args.failover else {},
        telemetry={
            "run_dir": args.out,
            "sample_interval": args.sample_interval,
        },
    )
    workload = WorkloadSpec(
        num_clients=args.clients,
        concurrency=4,
        write_ratio=args.write_ratio,
        duration=args.duration,
        drain=0.1,
    )
    checks = ScenarioChecks(linearizability=True)
    result = run_scenario(spec, workload, checks)
    print(f"backend={spec.backend} seed={spec.seed} "
          f"ops={result.completed_ops} failed={result.failed_ops} "
          f"qps={result.success_qps:.0f}")
    print(f"trace run dir: {result.telemetry_dir}")
    metrics = result.metrics or {}
    print(json.dumps(metrics, sort_keys=True, indent=2, default=str))
    return 0


def _cmd_report(args) -> int:
    from repro.core import trace as trace_mod

    print(trace_mod.format_report(args.run_dir, top=args.top))
    return 0


def _cmd_info(args) -> int:
    from repro.core import trace as trace_mod

    info = trace_mod.run_info(args.run_dir)
    print(json.dumps(info, sort_keys=True, indent=2))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.netsim.telemetry",
        description="Trace/metrics tooling for seeded simulator runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one traced seeded scenario")
    run.add_argument("--backend", default="netchain")
    run.add_argument("--seed", type=int, default=11)
    run.add_argument("--store-size", type=int, default=64)
    run.add_argument("--clients", type=int, default=2)
    run.add_argument("--write-ratio", type=float, default=0.3)
    run.add_argument("--duration", type=float, default=0.1)
    run.add_argument("--sample-interval", type=float, default=5e-3)
    run.add_argument("--failover", action="store_true",
                     help="fail switch S1 mid-run and react")
    run.add_argument("--out", required=True, help="trace/v1 run directory")
    run.set_defaults(func=_cmd_run)

    report = sub.add_parser(
        "report", help="critical-path breakdown + per-stage percentiles")
    report.add_argument("run_dir")
    report.add_argument("--top", type=int, default=1,
                        help="show the N slowest traces hop by hop")
    report.set_defaults(func=_cmd_report)

    info = sub.add_parser("info", help="print run header and record counts")
    info.add_argument("run_dir")
    info.set_defaults(func=_cmd_info)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
