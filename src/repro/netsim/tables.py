"""Match-action tables, the switch's programmable lookup structure.

A Tofino-style switch exposes exact-match and ternary tables whose entries
are installed by the control plane.  NetChain uses them for two purposes:

* the key -> register-array-index table of the data-plane key-value store
  (Figure 3 of the paper), and
* the destination-IP rewrite rules installed by the controller during fast
  failover and failure recovery (Algorithms 2 and 3).

Entries carry a priority; higher priorities win, which is exactly how the
recovery rules override the failover rules (Section 5.2, Phase 2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional

_entry_ids = itertools.count(1)


@dataclass
class TableEntry:
    """One installed match-action entry."""

    match: Hashable
    action: Callable[..., Any]
    priority: int = 0
    entry_id: int = field(default_factory=lambda: next(_entry_ids))
    metadata: Dict[str, Any] = field(default_factory=dict)


class MatchTable:
    """An exact-match table with per-entry priorities.

    The table is keyed on a hashable match value (for NetChain, the key
    bytes or a destination IP).  ``lookup`` returns the highest-priority
    entry for the match, or ``None`` for a miss (the caller applies the
    default action, typically drop or continue).
    """

    def __init__(self, name: str, max_entries: Optional[int] = None) -> None:
        self.name = name
        self.max_entries = max_entries
        self._entries: Dict[Hashable, List[TableEntry]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, match: Hashable, action: Callable[..., Any],
               priority: int = 0, **metadata: Any) -> TableEntry:
        """Install an entry; raises if the table is full."""
        if self.max_entries is not None and self._size >= self.max_entries:
            raise TableFullError(f"table {self.name} is full ({self.max_entries} entries)")
        entry = TableEntry(match=match, action=action, priority=priority, metadata=dict(metadata))
        self._entries.setdefault(match, []).append(entry)
        self._entries[match].sort(key=lambda e: -e.priority)
        self._size += 1
        return entry

    def lookup(self, match: Hashable) -> Optional[TableEntry]:
        """Highest-priority entry for ``match``, or ``None`` on a miss."""
        entries = self._entries.get(match)
        if not entries:
            return None
        return entries[0]

    def remove(self, entry: TableEntry) -> bool:
        """Remove a previously installed entry.  Returns ``False`` if absent."""
        entries = self._entries.get(entry.match)
        if not entries or entry not in entries:
            return False
        entries.remove(entry)
        if not entries:
            del self._entries[entry.match]
        self._size -= 1
        return True

    def remove_match(self, match: Hashable) -> int:
        """Remove all entries for ``match``; returns how many were removed."""
        entries = self._entries.pop(match, [])
        self._size -= len(entries)
        return len(entries)

    def entries(self) -> List[TableEntry]:
        """All installed entries (highest priority first per match)."""
        result: List[TableEntry] = []
        for bucket in self._entries.values():
            result.extend(bucket)
        return result

    def clear(self) -> None:
        """Remove every entry."""
        self._entries.clear()
        self._size = 0


class TableFullError(RuntimeError):
    """Raised when an insert exceeds the table's configured capacity."""
