"""Programmable switch model.

This is the stand-in for a Barefoot Tofino switch: a device with

* an L3 forwarding table (dest-IP based, installed by the underlay routing
  protocol, Section 4.2 -- "standard L3 routing that forwards packets based
  on destination IP"),
* a programmable match-action pipeline on which data-plane programs such as
  the NetChain program (:mod:`repro.core.switch_program`) are installed,
* per-stage register arrays with an SRAM budget (:mod:`repro.netsim.registers`),
* a packet-processing capacity (packets per second) and a sub-microsecond
  pipeline delay, the two constants of Table 1 that make switches orders of
  magnitude faster than servers.

Capacity is modelled as a single-server queue: each pipeline pass occupies
``1/capacity_pps`` seconds of the pipeline, and packets beyond the ingress
queue limit are tail-dropped.  The paper's testbed mode processes every
query packet twice per switch (once in each direction); this emerges
naturally here because a query traverses the same switch on its way up and
down the topology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum, auto
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.netsim.node import Node, Port, stable_name_seed
from repro.netsim.packet import Packet
from repro.netsim.registers import RegisterFile
from repro.netsim.tables import MatchTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.engine import Simulator


class PipelineAction(Enum):
    """What a pipeline program decided to do with a packet."""

    #: Not interesting to this program; keep going (next program, then L3).
    CONTINUE = auto()
    #: Program rewrote the packet; forward it using the L3 table.
    FORWARD = auto()
    #: Drop the packet.
    DROP = auto()
    #: Program consumed the packet (e.g. delivered it to the local control agent).
    CONSUME = auto()


#: Module-level aliases: enum member access is an attribute lookup per use,
#: and the pipeline compares actions for every packet.
_DROP = PipelineAction.DROP
_CONSUME = PipelineAction.CONSUME
_FORWARD = PipelineAction.FORWARD


class PipelineProgram:
    """Interface for data-plane programs installed on a switch."""

    def process(self, switch: "Switch", packet: Packet, in_port: Port) -> PipelineAction:
        """Inspect/modify ``packet``; return the action the switch should take."""
        raise NotImplementedError


@dataclass
class SwitchConfig:
    """Resource and timing parameters of one switch.

    Defaults correspond to the paper's Tofino numbers (Table 1 and
    Section 7) scaled by ``1.0`` -- callers pass scaled-down capacities for
    tractable simulations (see ``repro.perfmodel.devices``).
    """

    #: Packets per second the pipeline can process.  ``None`` = unlimited.
    capacity_pps: Optional[float] = None
    #: Pipeline (per-pass) processing delay in seconds.
    pipeline_delay: float = 0.5e-6
    #: Number of pipeline stages usable for value storage (Section 7 uses 8).
    value_stages: int = 8
    #: Bytes of value each stage can read/write per pass (Section 6 uses 16).
    stage_value_bytes: int = 16
    #: On-chip SRAM budget available to NetChain, in bytes (Section 7: 8 MB
    #: of slots; Section 6 argues ~10 MB per switch is realistic).
    sram_bytes: Optional[int] = 10 * 1024 * 1024
    #: Ingress queue limit in packets (tail drop beyond this).
    ingress_queue_packets: int = 10000


class Switch(Node):
    """A programmable switch: L3 forwarding plus a match-action pipeline."""

    def __init__(self, sim: "Simulator", name: str, ip: str,
                 config: Optional[SwitchConfig] = None,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(sim, name, ip)
        self.config = config or SwitchConfig()
        self.rng = rng or random.Random(stable_name_seed(name))
        #: dest-IP -> egress port, installed by the underlay routing protocol.
        self.forwarding_table: Dict[str, Port] = {}
        #: Data-plane programs, run in order on every packet.
        self.programs: List[PipelineProgram] = []
        #: Register arrays (switch SRAM).
        self.registers = RegisterFile(sram_bytes=self.config.sram_bytes)
        #: Named match tables created by data-plane programs.
        self.tables: Dict[str, MatchTable] = {}
        #: Per-switch loss injection (Figure 9(d) injects loss per switch).
        self.injected_loss_rate = 0.0
        #: A callable the control plane registers to receive control packets.
        self.control_agent: Optional[Callable[[Packet, Port], None]] = None
        # Capacity accounting (single-server queue).
        self._busy_until = 0.0
        self._queued = 0
        self.pipeline_passes = 0
        self.dropped_capacity = 0
        self.dropped_no_route = 0
        self.dropped_injected = 0
        self.dropped_by_program = 0
        self.dropped_not_serving = 0
        #: When ``True`` the switch silently discards everything (fail-stop).
        self.failed = False
        #: Optional telemetry tracer (:class:`repro.core.trace.Tracer`);
        #: ``None`` keeps the ingress path untraced.
        self.telemetry = None
        #: Gray failure: when ``False`` the switch still performs L3 transit
        #: forwarding but no longer runs its pipeline programs, so packets
        #: addressed to the device itself (NetChain queries, control traffic)
        #: are silently discarded.  This is the partial-failure mode the
        #: fault injector uses to exercise failure *detection*: the device
        #: looks alive to the underlay but is dead to the service.
        self.serving = True

    # ------------------------------------------------------------------ #
    # Resource helpers used by data-plane programs.
    # ------------------------------------------------------------------ #

    def create_table(self, name: str, max_entries: Optional[int] = None) -> MatchTable:
        """Create (or return an existing) named match table."""
        if name not in self.tables:
            self.tables[name] = MatchTable(name, max_entries=max_entries)
        return self.tables[name]

    def install_program(self, program: PipelineProgram) -> None:
        """Append a data-plane program to the pipeline."""
        self.programs.append(program)

    def max_value_bytes_per_pass(self) -> int:
        """Largest value a single pipeline pass can carry (Section 6: k*n)."""
        return self.config.value_stages * self.config.stage_value_bytes

    def charge_extra_passes(self, passes: int) -> None:
        """Charge pipeline capacity for packet recirculation.

        Values larger than one pass can carry are re-circulated through the
        pipeline (Section 6), which costs effective throughput.  Each extra
        pass consumes one service slot of the capacity model.
        """
        if passes <= 0:
            return
        self.pipeline_passes += passes
        if self.config.capacity_pps is not None:
            self._busy_until = max(self._busy_until, self.sim.now)
            self._busy_until += passes / self.config.capacity_pps

    # ------------------------------------------------------------------ #
    # Packet path.
    # ------------------------------------------------------------------ #

    def receive(self, packet: Packet, port: Port) -> None:
        if self.failed:
            self.packets_dropped += 1
            return
        if self.injected_loss_rate > 0 and self.rng.random() < self.injected_loss_rate:
            self.dropped_injected += 1
            return
        cfg = self.config
        capacity = cfg.capacity_pps
        if capacity is None:
            tel = self.telemetry
            if tel is not None:
                tel.switch_enq(self, packet, 0.0)
            self.sim.call_after(cfg.pipeline_delay, self._process, packet, port)
            return
        # Single-server queue with tail drop.  The packet waits for the
        # backlog ahead of it but its own service slot is not added to its
        # latency: the scaled-down service rate models the throughput
        # ceiling, not per-packet processing delay (which is
        # ``pipeline_delay``).  See DESIGN.md, "Scale model".
        now = self.sim._now
        busy_until = self._busy_until
        backlog = busy_until - now
        if backlog < 0.0:
            backlog = 0.0
            busy_until = now
        service_time = 1.0 / capacity
        if backlog / service_time >= cfg.ingress_queue_packets:
            self.dropped_capacity += 1
            return
        self._busy_until = busy_until + service_time
        tel = self.telemetry
        if tel is not None:
            tel.switch_enq(self, packet, backlog)
        self.sim.call_after(backlog + cfg.pipeline_delay, self._process,
                            packet, port)

    def _process(self, packet: Packet, port: Port) -> None:
        if self.failed:
            return
        self.pipeline_passes += 1
        packet.pipeline_passes += 1
        if not self.serving:
            if packet.ip.dst_ip == self.ip:
                self.dropped_not_serving += 1
                return
            self.forward(packet)
            return
        for program in self.programs:
            action = program.process(self, packet, port)
            if action is _DROP:
                self.dropped_by_program += 1
                return
            if action is _CONSUME:
                return
            if action is _FORWARD:
                break
        self.forward(packet)

    def forward(self, packet: Packet) -> None:
        """L3 forward based on destination IP."""
        dst = packet.ip.dst_ip
        if dst == self.ip:
            # Destined to the switch itself: hand it to the control agent.
            if self.control_agent is not None:
                self.control_agent(packet, None)
            else:
                self.dropped_no_route += 1
            return
        out_port = self.forwarding_table.get(dst)
        if out_port is None:
            self.dropped_no_route += 1
            return
        ttl = packet.ip.ttl - 1
        packet.ip.ttl = ttl
        if ttl <= 0:
            self.packets_dropped += 1
            return
        # Inlined Node.transmit (one call per hop on the hot path).
        link = out_port.link
        if link is None:
            self.packets_dropped += 1
            return
        self.packets_sent += 1
        out_port.tx_packets += 1
        link.transmit(packet, out_port)

    # ------------------------------------------------------------------ #
    # Failure injection (Section 5 / Section 8.4).
    # ------------------------------------------------------------------ #

    def fail(self) -> None:
        """Fail-stop: the switch stops processing and forwarding packets."""
        self.failed = True

    def fail_gray(self) -> None:
        """Gray failure: keep forwarding transit traffic but stop serving
        packets addressed to this device (pipeline programs are skipped)."""
        self.serving = False

    def recover_device(self) -> None:
        """Bring the device back up (its NetChain state is *not* restored;
        the controller's failure-recovery protocol handles state)."""
        self.failed = False
        self.serving = True
        self._busy_until = 0.0
