"""Discrete-event simulation engine.

A tiny but complete discrete-event kernel: a priority queue of timestamped
events, a monotonically advancing virtual clock, and helpers for periodic
processes.  All times are in **seconds** (floats); the typical granularity
in this project is hundreds of nanoseconds (switch pipeline delays) up to
milliseconds (ZooKeeper fsync delays).

The engine is deterministic: ties are broken by insertion order, and all
randomness in the simulation flows through :class:`random.Random` instances
seeded by the caller.

Hot-path design (this is the innermost loop of every experiment, so its
constant factors *are* the simulator's throughput):

* Heap entries are plain 4-element lists ``[time, seq, callback, args]``
  rather than objects, so ``heapq`` sifts compare at C speed (``time``
  first, then the unique ``seq`` -- the callback is never compared).
* :meth:`Simulator.call_after` schedules fire-and-forget callbacks without
  allocating an :class:`Event` handle; callers that never cancel (links,
  hosts, switch pipelines) use it to avoid one allocation per event, and
  positional ``args`` replace per-event closure allocation.
* Cancellation is a tombstone: the entry's callback slot is set to ``None``
  in place, and the entry is discarded when it surfaces at the top of the
  heap.  A tombstone count triggers heap compaction when more than half the
  queue is dead, so cancel-heavy workloads (retry timers, TCP RTOs) cannot
  grow the heap without bound.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable, Optional

#: Queues smaller than this are never compacted: rebuilding a tiny heap
#: costs more bookkeeping than the dead entries occupy.
_COMPACT_MIN_QUEUE = 64


class Event:
    """A cancellable handle to a scheduled callback.

    Events order by ``(time, seq)`` so that events scheduled earlier for
    the same timestamp run first (FIFO within a timestamp).  The handle
    wraps the underlying heap entry; cancelling tombstones the entry in
    place instead of searching the heap.
    """

    __slots__ = ("_sim", "_entry", "cancelled")

    def __init__(self, sim: "Simulator", entry: list) -> None:
        self._sim = sim
        self._entry = entry
        #: Whether :meth:`cancel` was called (fired events stay ``False``).
        self.cancelled = False

    @property
    def time(self) -> float:
        """Absolute simulation time this event fires at."""
        return self._entry[0]

    @property
    def seq(self) -> int:
        """Insertion sequence number (the FIFO tie-breaker)."""
        return self._entry[1]

    def cancel(self) -> None:
        """Mark this event so the simulator skips it when dequeued."""
        self.cancelled = True
        entry = self._entry
        if entry[2] is None:
            # Already fired (or already cancelled): nothing queued to
            # tombstone, and double-counting would corrupt compaction.
            return
        entry[2] = None
        entry[3] = ()
        self._sim._note_tombstone()


class _Periodic:
    """State of one periodic process (see :meth:`Simulator.every`).

    A single slotted object per process -- each tick reschedules through the
    simulator's no-handle fast path, so steady-state periodic processes
    allocate nothing but their heap entries.
    """

    __slots__ = ("sim", "interval", "callback", "jitter", "rng", "stopped")

    def __init__(self, sim: "Simulator", interval: float,
                 callback: Callable[[], None], jitter: float, rng) -> None:
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.jitter = jitter
        self.rng = rng
        self.stopped = False

    def tick(self) -> None:
        if self.stopped:
            return
        self.callback()
        delay = self.interval
        if self.jitter and self.rng is not None:
            delay += self.rng.uniform(-self.jitter, self.jitter)
        if delay < 0:
            delay = 0.0
        self.sim.call_after(delay, self.tick)

    def cancel(self) -> None:
        self.stopped = True


class Simulator:
    """Event loop with a virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1e-6, lambda: print("one microsecond in"))
        sim.run(until=1.0)
    """

    def __init__(self) -> None:
        #: Heap of ``[time, seq, callback, args]`` entries; ``callback`` is
        #: ``None`` for tombstoned (cancelled) entries.
        self._queue: list = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._processed = 0
        self._tombstones = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._processed

    @property
    def tombstones(self) -> int:
        """Number of cancelled entries still sitting in the queue."""
        return self._tombstones

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns a cancellable :class:`Event` handle.  Negative delays are
        clamped to zero, which keeps callers simple when a computed delay
        underflows to a tiny negative float.
        """
        if delay < 0:
            delay = 0.0
        seq = self._seq
        self._seq = seq + 1
        entry = [self._now + delay, seq, callback, args]
        heappush(self._queue, entry)
        return Event(self, entry)

    def call_after(self, delay: float, callback: Callable[..., None],
                   *args) -> None:
        """Fast-path :meth:`schedule` for callbacks that are never
        cancelled: no :class:`Event` handle is allocated."""
        if delay < 0:
            delay = 0.0
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, [self._now + delay, seq, callback, args])

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        delay = time - self._now
        return self.schedule(delay if delay > 0.0 else 0.0, callback, *args)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None,
            stop_when: Optional[Callable[[], bool]] = None) -> None:
        """Run the event loop.

        Args:
            until: stop once the clock would pass this time (the event at
                exactly ``until`` still runs).
            max_events: safety valve for runaway simulations.
            stop_when: checked after every event; when it returns true the
                loop stops *at the current event's timestamp* instead of
                fast-forwarding the clock to ``until``.  This is how
                futures wait for a reply without distorting simulated time.
        """
        self._running = True
        queue = self._queue
        # ``self._processed`` is incremented per event (not batched in a
        # local) because callbacks may re-enter ``run`` -- a synchronous
        # future waiting on a reply drives a nested loop over this queue.
        if stop_when is None and max_events is None:
            # Fast path for the dominant call shape, ``run(until=...)``:
            # no per-event predicate or budget checks.
            limit = float("inf") if until is None else until
            while queue and self._running:
                entry = queue[0]
                callback = entry[2]
                if callback is None:
                    heappop(queue)
                    self._tombstones -= 1
                    continue
                event_time = entry[0]
                if event_time > limit:
                    self._now = until
                    self._running = False
                    return
                heappop(queue)
                self._now = event_time
                args = entry[3]
                entry[2] = None
                entry[3] = None
                if args:
                    callback(*args)
                else:
                    callback()
                self._processed += 1
            if until is not None and self._now < until:
                self._now = until
            self._running = False
            return
        executed = 0
        while queue and self._running:
            entry = queue[0]
            callback = entry[2]
            if callback is None:
                heappop(queue)
                self._tombstones -= 1
                continue
            event_time = entry[0]
            if until is not None and event_time > until:
                # Leave it queued so a later run() continues where we stopped.
                self._now = until
                self._running = False
                return
            heappop(queue)
            self._now = event_time
            args = entry[3]
            # Mark the entry fired *before* the callback runs: a late
            # ``Event.cancel`` (e.g. a reply cancelling its own retry timer
            # from inside that timer's callback chain) must not count a
            # tombstone for an entry that already left the queue.
            entry[2] = None
            entry[3] = None
            if args:
                callback(*args)
            else:
                callback()
            self._processed += 1
            executed += 1
            if stop_when is not None and stop_when():
                self._running = False
                return
            if max_events is not None and executed >= max_events:
                self._running = False
                return
        if until is not None and self._now < until:
            self._now = until
        self._running = False

    def stop(self) -> None:
        """Stop the event loop after the current event returns."""
        self._running = False

    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def pending_live(self) -> int:
        """Number of queued events that are not tombstones."""
        return len(self._queue) - self._tombstones

    def stats(self) -> dict:
        """Engine health snapshot (sampled by the telemetry plane).

        Everything here is a function of the seeded event sequence, so the
        snapshot is deterministic and safe to spill into trace artifacts.
        """
        return {
            "now": self._now,
            "processed_events": self._processed,
            "pending": len(self._queue),
            "pending_live": len(self._queue) - self._tombstones,
            "tombstones": self._tombstones,
        }

    # ------------------------------------------------------------------ #
    # Tombstone bookkeeping.
    # ------------------------------------------------------------------ #

    def _note_tombstone(self) -> None:
        """Record one cancellation; compact when the heap is mostly dead.

        Without compaction a workload that schedules and cancels timers
        faster than their deadlines pass (client retry timers, TCP RTOs)
        grows the heap without bound and every push/pop pays ``log`` of the
        garbage.  Compaction keeps the heap at most half dead.
        """
        self._tombstones += 1
        queue = self._queue
        if len(queue) >= _COMPACT_MIN_QUEUE and self._tombstones * 2 > len(queue):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstoned entries and re-heapify the queue.

        In place (``[:]``): ``run`` loops hold a direct reference to the
        queue list, and cancellations -- hence compactions -- routinely
        happen from inside event callbacks.
        """
        self._queue[:] = [entry for entry in self._queue if entry[2] is not None]
        heapify(self._queue)
        self._tombstones = 0

    # ------------------------------------------------------------------ #
    # Periodic processes.
    # ------------------------------------------------------------------ #

    def every(self, interval: float, callback: Callable[[], None],
              start: float = 0.0, jitter: float = 0.0,
              rng=None) -> Callable[[], None]:
        """Run ``callback`` periodically until the returned canceller is called.

        Args:
            interval: period in seconds.
            callback: invoked once per period.
            start: delay before the first invocation.
            jitter: if non-zero, each period is perturbed uniformly in
                ``[-jitter, +jitter]`` using ``rng.uniform``.
            rng: a ``random.Random`` used when ``jitter`` is non-zero.

        Returns:
            A zero-argument function that cancels the periodic process.
        """
        process = _Periodic(self, interval, callback, jitter, rng)
        self.call_after(start, process.tick)
        return process.cancel
