"""Discrete-event simulation engine.

A tiny but complete discrete-event kernel: a priority queue of timestamped
events, a monotonically advancing virtual clock, and helpers for periodic
processes.  All times are in **seconds** (floats); the typical granularity
in this project is hundreds of nanoseconds (switch pipeline delays) up to
milliseconds (ZooKeeper fsync delays).

The engine is deterministic: ties are broken by insertion order, and all
randomness in the simulation flows through :class:`random.Random` instances
seeded by the caller.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so that events scheduled earlier for
    the same timestamp run first (FIFO within a timestamp).
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the simulator skips it when dequeued."""
        self.cancelled = True


class Simulator:
    """Event loop with a virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1e-6, lambda: print("one microsecond in"))
        sim.run(until=1.0)
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Negative delays are clamped to zero, which keeps callers simple when
        a computed delay underflows to a tiny negative float.
        """
        if delay < 0:
            delay = 0.0
        event = Event(time=self._now + delay, seq=next(self._counter), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(max(0.0, time - self._now), callback)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None,
            stop_when: Optional[Callable[[], bool]] = None) -> None:
        """Run the event loop.

        Args:
            until: stop once the clock would pass this time (the event at
                exactly ``until`` still runs).
            max_events: safety valve for runaway simulations.
            stop_when: checked after every event; when it returns true the
                loop stops *at the current event's timestamp* instead of
                fast-forwarding the clock to ``until``.  This is how
                futures wait for a reply without distorting simulated time.
        """
        self._running = True
        executed = 0
        while self._queue and self._running:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if until is not None and event.time > until:
                # Put it back so a later run() continues where we stopped.
                heapq.heappush(self._queue, event)
                self._now = until
                break
            self._now = event.time
            event.callback()
            self._processed += 1
            executed += 1
            if stop_when is not None and stop_when():
                self._running = False
                return
            if max_events is not None and executed >= max_events:
                break
        else:
            if until is not None and self._now < until:
                self._now = until
        self._running = False

    def stop(self) -> None:
        """Stop the event loop after the current event returns."""
        self._running = False

    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def every(self, interval: float, callback: Callable[[], None],
              start: float = 0.0, jitter: float = 0.0,
              rng=None) -> Callable[[], None]:
        """Run ``callback`` periodically until the returned canceller is called.

        Args:
            interval: period in seconds.
            callback: invoked once per period.
            start: delay before the first invocation.
            jitter: if non-zero, each period is perturbed uniformly in
                ``[-jitter, +jitter]`` using ``rng.uniform``.
            rng: a ``random.Random`` used when ``jitter`` is non-zero.

        Returns:
            A zero-argument function that cancels the periodic process.
        """
        state = {"stopped": False}

        def tick() -> None:
            if state["stopped"]:
                return
            callback()
            delay = interval
            if jitter and rng is not None:
                delay += rng.uniform(-jitter, jitter)
            self.schedule(max(0.0, delay), tick)

        self.schedule(start, tick)

        def cancel() -> None:
            state["stopped"] = True

        return cancel
