"""On-chip key-value storage for one switch (Figure 3, Section 4.1).

NetChain separates key and value storage in the switch ASIC:

* each **key** is an entry in an exact-match table whose action returns the
  key's *index* (the slot number), and
* each **value** is stored at that index in register arrays, striped across
  pipeline stages 16 bytes at a time (NetCache's layout, Section 7: 8 stages
  of 64K 16-byte slots = 8 MB of value storage),
* a dedicated register array holds the per-key **sequence number** used by
  the ordering protocol (Algorithm 1), and another the head **session
  number** used across head changes (Section 5.2).

The class below owns those structures on a simulated switch and performs
the resource accounting the paper discusses (SRAM budget, per-stage value
width, recirculation passes for oversized values).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.protocol import KEY_BYTES, normalize_key
from repro.netsim.switch import Switch
from repro.netsim.tables import MatchTable, TableFullError


class StoreFullError(RuntimeError):
    """Raised when the key-value store has no free slots left."""


class ValueTooLargeError(ValueError):
    """Raised when a value exceeds what the pipeline can store even with
    recirculation disabled."""


@dataclass
class KVStoreConfig:
    """Sizing of the per-switch store.

    The defaults mirror the prototype in Section 7: 64K slots per stage,
    8 stages, 16 bytes per stage (8 MB of value storage per switch).
    """

    #: Number of key slots (entries in the index table / register array length).
    slots: int = 65536
    #: Whether values larger than one pipeline pass are allowed (they cost
    #: extra recirculation passes, Section 6).
    allow_recirculation: bool = False


@dataclass(slots=True)
class StoredItem:
    """A decoded item as read from the register arrays."""

    value: bytes
    seq: int
    session: int
    valid: bool

    def version(self) -> Tuple[int, int]:
        """(session, seq) — the lexicographic version used for ordering."""
        return (self.session, self.seq)


class SwitchKVStore:
    """The NetChain storage structures on one switch."""

    def __init__(self, switch: Switch, config: Optional[KVStoreConfig] = None) -> None:
        self.switch = switch
        self.config = config or KVStoreConfig()
        slots = self.config.slots
        self.index: MatchTable = switch.create_table("netchain_index", max_entries=slots)
        self.stage_bytes = switch.config.stage_value_bytes
        self.num_stages = switch.config.value_stages
        self._stages = [
            switch.registers.allocate(f"netchain_value_stage{i}", slots, self.stage_bytes,
                                      initial=b"")
            for i in range(self.num_stages)
        ]
        self._vlen = switch.registers.allocate("netchain_value_len", slots, 2, initial=0)
        self._seq = switch.registers.allocate("netchain_seq", slots, 4, initial=0)
        self._session = switch.registers.allocate("netchain_session", slots, 2, initial=0)
        self._valid = switch.registers.allocate("netchain_valid", slots, 1, initial=False)
        # Direct references to the arrays' backing lists: register reads and
        # writes are the per-query hot path, and the method indirection costs
        # more than the model earns.  ``RegisterArray.load`` mutates in place,
        # so these references never go stale.
        self._stage_data = [stage._data for stage in self._stages]
        self._vlen_data = self._vlen._data
        self._seq_data = self._seq._data
        self._session_data = self._session._data
        self._valid_data = self._valid._data
        #: Materialized value per slot, maintained alongside the striped
        #: stage arrays so the per-query read path does not re-join chunks.
        #: The register arrays stay authoritative for the SRAM model (and
        #: tests assert on them); this is a read cache the store itself
        #: keeps coherent because every value write goes through
        #: :meth:`write_loc`.
        self._value_data: List[bytes] = [b""] * slots
        #: key -> slot mirror of the index match table for O(1) hot-path
        #: lookups without the table-model indirection.
        self._loc_of_key: Dict[bytes, int] = {}
        self._free_slots: List[int] = list(range(slots - 1, -1, -1))
        self._key_of_slot: Dict[int, bytes] = {}

    # ------------------------------------------------------------------ #
    # Capacity / resource accounting.
    # ------------------------------------------------------------------ #

    @property
    def capacity(self) -> int:
        """Total number of key slots."""
        return self.config.slots

    def used_slots(self) -> int:
        """Number of slots currently holding a key."""
        return len(self._key_of_slot)

    def free_slots(self) -> int:
        return self.capacity - self.used_slots()

    def max_value_bytes(self) -> int:
        """Largest value storable: one pass worth, or all stages' worth if
        recirculation is enabled (the storage itself is still bounded by the
        stage arrays)."""
        return self.num_stages * self.stage_bytes

    def passes_required(self, value_len: int) -> int:
        """Pipeline passes needed to read/write a value of this size
        (Section 6: values beyond ``k*n`` bytes need recirculation)."""
        per_pass = self.switch.max_value_bytes_per_pass()
        if value_len <= per_pass:
            return 1
        return -(-value_len // per_pass)

    def sram_bytes_used(self) -> int:
        """SRAM consumed by all NetChain structures on this switch."""
        return self.switch.registers.allocated_bytes()

    # ------------------------------------------------------------------ #
    # Control-plane operations (insert / delete / garbage collection).
    # ------------------------------------------------------------------ #

    def insert_key(self, key) -> int:
        """Allocate a slot and install the index entry for ``key``.

        Insert is a control-plane operation in NetChain (Section 4.1): the
        controller calls this on every switch of the key's chain.
        """
        key = normalize_key(key)
        existing = self.lookup(key)
        if existing is not None:
            return existing
        if not self._free_slots:
            raise StoreFullError(f"{self.switch.name}: no free key slots "
                                 f"({self.capacity} in use)")
        loc = self._free_slots.pop()
        try:
            self.index.insert(key, lambda: loc, loc=loc)
        except TableFullError as exc:
            self._free_slots.append(loc)
            raise StoreFullError(str(exc)) from exc
        self._key_of_slot[loc] = key
        self._loc_of_key[key] = loc
        self._valid.write(loc, True)
        self._vlen.write(loc, 0)
        self._seq.write(loc, 0)
        self._session.write(loc, 0)
        self._value_data[loc] = b""
        for stage in self._stages:
            stage.write(loc, b"")
        return loc

    def remove_key(self, key) -> bool:
        """Garbage-collect a deleted key: free its slot and index entry."""
        key = normalize_key(key)
        loc = self.lookup(key)
        if loc is None:
            return False
        self.index.remove_match(key)
        self._key_of_slot.pop(loc, None)
        self._loc_of_key.pop(key, None)
        self._valid.write(loc, False)
        self._free_slots.append(loc)
        return True

    # ------------------------------------------------------------------ #
    # Data-plane operations.
    # ------------------------------------------------------------------ #

    def lookup(self, key) -> Optional[int]:
        """Index-table lookup: slot for ``key`` or ``None`` on a miss."""
        if type(key) is bytes and len(key) == KEY_BYTES:
            return self._loc_of_key.get(key)
        return self._loc_of_key.get(normalize_key(key))

    def read_loc(self, loc: int) -> StoredItem:
        """Read the value, sequence and session stored at ``loc``."""
        return StoredItem(value=self._value_data[loc], seq=self._seq_data[loc],
                          session=self._session_data[loc],
                          valid=self._valid_data[loc])

    def write_loc(self, loc: int, value: bytes, seq: int, session: int = 0,
                  valid: bool = True) -> None:
        """Store a value and its version at ``loc``, striping across stages."""
        value_len = len(value)
        limit = self.max_value_bytes()
        if value_len > limit:
            raise ValueTooLargeError(
                f"value of {value_len} bytes exceeds the {limit}-byte pipeline limit")
        if (not self.config.allow_recirculation
                and value_len > self.switch.max_value_bytes_per_pass()):
            raise ValueTooLargeError(
                f"value of {value_len} bytes needs recirculation, which is disabled")
        stage_bytes = self.stage_bytes
        start = 0
        for data in self._stage_data:
            data[loc] = value[start:start + stage_bytes] if start < value_len else b""
            start += stage_bytes
        self._value_data[loc] = value
        self._vlen_data[loc] = value_len
        self._seq_data[loc] = seq
        self._session_data[loc] = session
        self._valid_data[loc] = valid

    def read(self, key) -> Optional[StoredItem]:
        """Convenience: lookup + read."""
        loc = self.lookup(key)
        if loc is None:
            return None
        return self.read_loc(loc)

    def invalidate(self, key) -> bool:
        """Data-plane delete: mark the item invalid (slot reclaimed later by
        the control plane, Section 4.1)."""
        loc = self.lookup(key)
        if loc is None:
            return False
        self._valid.write(loc, False)
        return True

    def keys(self) -> Iterable[bytes]:
        """All keys currently installed on this switch."""
        return list(self._key_of_slot.values())

    # ------------------------------------------------------------------ #
    # State synchronization (used by the controller's failure recovery).
    # ------------------------------------------------------------------ #

    def export_items(self, keys: Optional[Iterable[bytes]] = None) -> Dict[bytes, StoredItem]:
        """Snapshot items (optionally restricted to ``keys``) for state copy."""
        selected = list(keys) if keys is not None else list(self._key_of_slot.values())
        result: Dict[bytes, StoredItem] = {}
        for key in selected:
            loc = self.lookup(key)
            if loc is not None:
                result[normalize_key(key)] = self.read_loc(loc)
        return result

    def import_items(self, items: Dict[bytes, StoredItem]) -> int:
        """Install keys and state copied from another switch.

        Returns the number of bytes of state written, which the controller
        uses to model synchronization time.
        """
        copied_bytes = 0
        for key, item in items.items():
            loc = self.insert_key(key)
            self.write_loc(loc, item.value, item.seq, item.session, valid=item.valid)
            copied_bytes += len(item.value) + 8
        return copied_bytes
