"""The NetChain packet format and query/reply helpers.

Figure 2(b) of the paper defines the custom header stack carried in a UDP
payload::

    OP | KEY | VALUE | SC | S0 S1 ... Sk | SEQ

plus the reserved UDP port that invokes the NetChain processing logic on a
switch.  This module defines that header as a dataclass with a byte-level
wire encoding (so tests can check that queries fit in a jumbo frame and
that value-size limits are enforced), the operation codes, and constructors
for the query and reply packets exchanged between agents and switches.

Extra fields beyond the figure:

* ``session`` -- the head session number used to order writes across head
  changes (Section 5.2, "Handling special cases"), compared
  lexicographically with the sequence number as in NOPaxos.
* ``vgroup`` -- the virtual group of the key, which the controller uses to
  scope recovery rules to one group at a time (Section 5.2, "Minimizing
  disruptions with virtual groups").
* ``query_id`` -- a client-chosen identifier used to match replies and make
  retries idempotent from the client's point of view.
* ``epoch`` -- the virtual group's chain-configuration number, stamped by
  the directory when the query is built.  A switch whose installed epoch for
  the group is newer drops the query (it was addressed under a superseded
  chain layout), which is what makes the planned-reconfiguration commit
  (``repro.core.reconfig``) safe against in-flight stragglers.
* ``cas_expected`` -- the comparison operand for the compare-and-swap
  operation used to build exclusive locks (Section 8.5).
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Optional

from repro.netsim.packet import (
    NETCHAIN_UDP_PORT,
    IPv4Header,
    Packet,
    UDPHeader,
    int_to_ip,
    ip_to_int,
)

#: Fixed key width used by the prototype (Section 7: 16-byte keys).
KEY_BYTES = 16

#: Value size supported by the prototype at line rate (Section 8.1: up to
#: 128 bytes with 8 stages x 16 bytes).
MAX_PROTOTYPE_VALUE_BYTES = 128

_query_ids = itertools.count(1)


def next_query_id() -> int:
    """Allocate a globally unique query id (shared with header defaults, so
    client-chosen ids never collide with implicitly numbered headers)."""
    return next(_query_ids)


class OpCode(IntEnum):
    """NetChain operations (Section 4.1 plus the CAS used for locks)."""

    READ = 1
    WRITE = 2
    INSERT = 3
    DELETE = 4
    CAS = 5
    #: Hot-key tier clean-version notification (tail -> sibling replicas);
    #: switch-to-switch only, never sent by clients and never replied to.
    CLEAN = 6
    READ_REPLY = 17
    WRITE_REPLY = 18
    INSERT_REPLY = 19
    DELETE_REPLY = 20
    CAS_REPLY = 21


#: Reply op corresponding to each request op.
REPLY_FOR = {
    OpCode.READ: OpCode.READ_REPLY,
    OpCode.WRITE: OpCode.WRITE_REPLY,
    OpCode.INSERT: OpCode.INSERT_REPLY,
    OpCode.DELETE: OpCode.DELETE_REPLY,
    OpCode.CAS: OpCode.CAS_REPLY,
}

REQUEST_OPS = frozenset(REPLY_FOR) | {OpCode.CLEAN}
REPLY_OPS = frozenset(REPLY_FOR.values())


class QueryStatus(IntEnum):
    """Outcome reported in a reply."""

    OK = 0
    KEY_NOT_FOUND = 1
    CAS_FAILED = 2
    REJECTED = 3


#: Interning cache for string keys: key encoding sits on the per-query hot
#: path and workloads reuse a small, hot key population.  Bounded so an
#: adversarial key stream cannot grow it without limit.
_KEY_CACHE: dict = {}
_KEY_CACHE_MAX = 1 << 16


def normalize_key(key) -> bytes:
    """Encode a key as the fixed-width 16-byte field used on the wire."""
    if type(key) is str:
        cached = _KEY_CACHE.get(key)
        if cached is not None:
            return cached
        raw = key.encode("utf-8")
        if len(raw) > KEY_BYTES:
            raise ValueError(f"key longer than {KEY_BYTES} bytes: {raw!r}")
        padded = raw.ljust(KEY_BYTES, b"\x00")
        if len(_KEY_CACHE) >= _KEY_CACHE_MAX:
            _KEY_CACHE.clear()
        _KEY_CACHE[key] = padded
        return padded
    if isinstance(key, bytes):
        raw = key
    else:
        raw = str(key).encode("utf-8")
    if len(raw) > KEY_BYTES:
        raise ValueError(f"key longer than {KEY_BYTES} bytes: {raw!r}")
    return raw.ljust(KEY_BYTES, b"\x00")


def normalize_value(value) -> bytes:
    """Encode a value as bytes."""
    if value is None:
        return b""
    if isinstance(value, bytes):
        return value
    return str(value).encode("utf-8")


@dataclass(slots=True)
class NetChainHeader:
    """The NetChain header carried in the UDP payload."""

    op: OpCode
    key: bytes
    value: bytes = b""
    seq: int = 0
    session: int = 0
    chain: List[str] = field(default_factory=list)
    vgroup: int = 0
    epoch: int = 0
    query_id: int = field(default_factory=lambda: next(_query_ids))
    status: QueryStatus = QueryStatus.OK
    cas_expected: Optional[bytes] = None

    # Wire layout: op(1) status(1) key(16) session(2) seq(4) vgroup(2)
    # epoch(2) query_id(8) sc(1) chain(4*sc) value_len(2) value cas_len(2) cas.
    _FIXED = struct.Struct("!BB16sHIHHQB")
    _FIXED_SIZE = _FIXED.size

    @property
    def sc(self) -> int:
        """Switch count: number of remaining chain hops stored in the header."""
        return len(self.chain)

    def wire_size(self) -> int:
        """Size of the encoded header in bytes."""
        size = self._FIXED_SIZE + 4 * len(self.chain) + 4 + len(self.value)
        if self.cas_expected is not None:
            size += len(self.cas_expected)
        return size

    def to_bytes(self) -> bytes:
        """Serialize to the wire format."""
        out = bytearray(self._FIXED.pack(
            int(self.op), int(self.status), self.key, self.session, self.seq,
            self.vgroup, self.epoch, self.query_id, len(self.chain)))
        for hop in self.chain:
            out += struct.pack("!I", ip_to_int(hop))
        out += struct.pack("!H", len(self.value))
        out += self.value
        cas = self.cas_expected if self.cas_expected is not None else b""
        out += struct.pack("!H", len(cas) if self.cas_expected is not None else 0xFFFF)
        out += cas
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "NetChainHeader":
        """Parse the wire format."""
        (op, status, key, session, seq, vgroup, epoch, query_id,
         sc) = cls._FIXED.unpack_from(data, 0)
        offset = cls._FIXED.size
        chain = []
        for _ in range(sc):
            (addr,) = struct.unpack_from("!I", data, offset)
            chain.append(int_to_ip(addr))
            offset += 4
        (value_len,) = struct.unpack_from("!H", data, offset)
        offset += 2
        value = data[offset:offset + value_len]
        offset += value_len
        (cas_len,) = struct.unpack_from("!H", data, offset)
        offset += 2
        if cas_len == 0xFFFF:
            cas_expected: Optional[bytes] = None
        else:
            cas_expected = data[offset:offset + cas_len]
        return cls(op=OpCode(op), key=key, value=value, seq=seq, session=session,
                   chain=chain, vgroup=vgroup, epoch=epoch, query_id=query_id,
                   status=QueryStatus(status), cas_expected=cas_expected)

    def copy(self) -> "NetChainHeader":
        """Deep-enough copy for retransmissions and forwarding."""
        return NetChainHeader(op=self.op, key=self.key, value=self.value,
                              seq=self.seq, session=self.session,
                              chain=list(self.chain), vgroup=self.vgroup,
                              epoch=self.epoch, query_id=self.query_id,
                              status=self.status,
                              cas_expected=self.cas_expected)

    def is_request(self) -> bool:
        return self.op in REQUEST_OPS

    def is_reply(self) -> bool:
        return self.op in REPLY_OPS


def build_query_packet(client_ip: str, client_port: int, dst_ip: str,
                       header: NetChainHeader, created_at: float = 0.0) -> Packet:
    """Wrap a NetChain header into a UDP packet addressed to ``dst_ip``."""
    return Packet(ip=IPv4Header(src_ip=client_ip, dst_ip=dst_ip),
                  udp=UDPHeader(src_port=client_port, dst_port=NETCHAIN_UDP_PORT),
                  payload=header, payload_bytes=header.wire_size(),
                  created_at=created_at)


def make_read(key, chain_ips: List[str], vgroup: int = 0,
              epoch: int = 0) -> NetChainHeader:
    """Build a read query header.

    Read queries are addressed to the tail; the header carries the rest of
    the chain in *reverse* order so that failover rules on the tail's
    neighbours know where to redirect (Section 4.2).
    The caller addresses the packet to ``chain_ips[-1]`` (the tail); the
    header's chain list holds the remaining switches from the tail backwards.
    """
    remaining = list(chain_ips[-2::-1])
    return NetChainHeader(op=OpCode.READ, key=normalize_key(key), chain=remaining,
                          vgroup=vgroup, epoch=epoch)


def make_write(key, value, chain_ips: List[str], vgroup: int = 0,
               epoch: int = 0) -> NetChainHeader:
    """Build a write query header.

    Write queries are addressed to the head; the header carries the rest of
    the chain in traversal order (head to tail).
    """
    remaining = list(chain_ips[1:])
    return NetChainHeader(op=OpCode.WRITE, key=normalize_key(key),
                          value=normalize_value(value), chain=remaining,
                          vgroup=vgroup, epoch=epoch)


def make_cas(key, expected, new_value, chain_ips: List[str], vgroup: int = 0,
             epoch: int = 0) -> NetChainHeader:
    """Build a compare-and-swap query (write path, conditional on ``expected``)."""
    remaining = list(chain_ips[1:])
    return NetChainHeader(op=OpCode.CAS, key=normalize_key(key),
                          value=normalize_value(new_value),
                          cas_expected=normalize_value(expected),
                          chain=remaining, vgroup=vgroup, epoch=epoch)


def make_delete(key, chain_ips: List[str], vgroup: int = 0,
                epoch: int = 0) -> NetChainHeader:
    """Build a delete query header (data-plane invalidation; the control
    plane garbage-collects the slot, Section 4.1)."""
    remaining = list(chain_ips[1:])
    return NetChainHeader(op=OpCode.DELETE, key=normalize_key(key), chain=remaining,
                          vgroup=vgroup, epoch=epoch)


def make_clean(key, seq: int, session: int, vgroup: int = 0,
               epoch: int = 0) -> NetChainHeader:
    """Build a hot-key-tier clean-version notification.

    Sent by the wide-chain tail to its sibling replicas after it commits a
    write of a tier-managed key; carries the committed ``(session, seq)``
    so the replica can mark its copy clean (``repro.core.hotkeys``).
    """
    return NetChainHeader(op=OpCode.CLEAN, key=normalize_key(key), seq=seq,
                          session=session, vgroup=vgroup, epoch=epoch)
