"""Control-plane failure detection (Section 5, "failure handling").

The paper's controller learns about switch failures from the network
(neighbor reports / routing withdrawals) rather than by being told by an
experiment harness.  This module closes that loop in the simulator: a
:class:`FailureDetector` runs as a periodic control-plane process, probes
every member switch over the management channel, and drives
:meth:`NetChainController.handle_switch_failure` when a switch stops
answering -- whether it fail-stopped, gray-failed (forwards but no longer
serves), or was cut off by link faults or a partition.

The detector also notices previously failed switches answering probes
again (a healed partition, a repaired device) and reintroduces them as
empty members, which is what makes partition-heal scenarios run without
any scripted controller calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.controller import NetChainController


@dataclass
class DetectorConfig:
    """Failure-detection knobs.

    A probe models one management-channel health check: it succeeds iff the
    device is up, its service agent answers (gray failures fail this), and
    at least one of its links is alive (a fully cut-off switch cannot serve
    chains even if its control channel is out of band).
    """

    #: Seconds between probe rounds.
    probe_interval: float = 50e-3
    #: Delay before the first probe round; defaults to half the interval so
    #: probes interleave rather than collide with scheduled fault times.
    start_offset: Optional[float] = None
    #: Consecutive failed probes before the controller reacts.
    suspicion_threshold: int = 1
    #: Whether detection triggers failure recovery (Algorithm 3) after the
    #: fast failover, mirroring ``handle_switch_failure(recover=...)``.
    auto_recover: bool = True
    #: Delay between failover and the start of recovery.
    recovery_start_delay: float = 0.0
    #: Preferred replacement switch handed to recovery (None = controller
    #: chooses).
    new_switch: Optional[str] = None
    #: Reintroduce failed switches that answer probes again.
    auto_reintroduce: bool = True
    #: Consecutive healthy probes before reintroduction (hysteresis).
    reintroduce_threshold: int = 2


class FailureDetector:
    """Periodic health prober that drives the controller's failure handling."""

    def __init__(self, controller: NetChainController,
                 config: Optional[DetectorConfig] = None) -> None:
        self.controller = controller
        self.topology = controller.topology
        self.sim = controller.sim
        self.config = config or DetectorConfig()
        self.misses: Dict[str, int] = {}
        self.heals: Dict[str, int] = {}
        #: (time, switch) pairs, appended at detection / reintroduction.
        self.detections: List[Tuple[float, str]] = []
        self.reintroductions: List[Tuple[float, str]] = []
        self._handled: Set[str] = set()
        self._cancel = None

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #

    def start(self) -> "FailureDetector":
        """Begin probing (idempotent)."""
        if self._cancel is None:
            cfg = self.config
            offset = cfg.start_offset
            if offset is None:
                offset = cfg.probe_interval * 0.5
            self._cancel = self.sim.every(cfg.probe_interval, self._probe_round,
                                          start=offset)
        return self

    def stop(self) -> None:
        """Stop probing."""
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    # ------------------------------------------------------------------ #
    # Probing.
    # ------------------------------------------------------------------ #

    def probe(self, name: str) -> bool:
        """One health check of a member switch."""
        switch = self.topology.switches[name]
        if switch.failed or not switch.serving:
            return False
        links = [link for link in self.topology.links
                 if switch in (link.port_a.node, link.port_b.node)]
        if links and not any(link.up for link in links):
            return False
        return True

    def _probe_round(self) -> None:
        cfg = self.config
        controller = self.controller
        for name in controller.members:
            healthy = self.probe(name)
            if name in self._handled or name in controller.failed_switches:
                self._watch_for_reintroduction(name, healthy)
                continue
            if healthy:
                self.misses[name] = 0
                continue
            self.misses[name] = self.misses.get(name, 0) + 1
            if self.misses[name] >= cfg.suspicion_threshold:
                self._handled.add(name)
                self.detections.append((self.sim.now, name))
                controller._emit("failure_detected", switch=name,
                                 misses=self.misses[name])
                controller.handle_switch_failure(
                    name, new_switch=cfg.new_switch, recover=cfg.auto_recover,
                    recovery_start_delay=cfg.recovery_start_delay)

    def _watch_for_reintroduction(self, name: str, healthy: bool) -> None:
        cfg = self.config
        controller = self.controller
        if not cfg.auto_reintroduce or not healthy:
            self.heals[name] = 0
            return
        if name in controller.recovering:
            # Do not flap membership while Algorithm 3 is splicing chains.
            self.heals[name] = 0
            return
        self.heals[name] = self.heals.get(name, 0) + 1
        if self.heals[name] >= cfg.reintroduce_threshold:
            controller.reintroduce_switch(name)
            self._handled.discard(name)
            self.heals[name] = 0
            self.misses[name] = 0
            self.reintroductions.append((self.sim.now, name))
            controller._emit("reintroduced", switch=name)
