"""The NetChain data-plane program (Algorithm 1 + routing + failure rules).

This is the Python equivalent of the paper's P4 program.  It is installed on
every NetChain switch and does three things:

1. **Key-value query processing** (Algorithm 1): reads are answered from the
   local store; writes are sequenced by the head and applied by replicas only
   if they carry a newer ``(session, seq)`` version, which serializes
   out-of-order UDP delivery (Section 4.3).
2. **Chain routing** (Section 4.2): after processing, the switch rewrites
   the destination IP to the next chain hop stored in the header (or back to
   the client when it is the last hop) and lets the underlay L3 routing carry
   the packet there.
3. **Failure-handling rules** (Algorithms 2 and 3): destination-IP rewrite
   rules installed by the controller on the failed switch's neighbours.
   Failover rules skip the failed switch; recovery rules first *stop*
   queries of a virtual group and later *redirect* them to the replacement
   switch, with higher priority than the failover rules.

Differences from the paper's encoding, documented for reviewers: the chain
IP list in our header holds only the hops *after* the current destination
(the paper keeps the current destination as the first list element), so the
failover action pops one address where Algorithm 2 pops two.  The semantics
are identical.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.kvstore import SwitchKVStore
from repro.core.protocol import (
    NETCHAIN_UDP_PORT,
    REPLY_FOR,
    REPLY_OPS,
    REQUEST_OPS,
    NetChainHeader,
    OpCode,
    QueryStatus,
    make_clean,
)
from repro.netsim.node import Port
from repro.netsim.packet import IPv4Header, Packet, UDPHeader
from repro.netsim.switch import PipelineAction, PipelineProgram, Switch

_rule_ids = itertools.count(1)

#: Module-level aliases for the hot pipeline path (enum member access is an
#: attribute lookup per use).
_CONTINUE = PipelineAction.CONTINUE
_FORWARD = PipelineAction.FORWARD
_DROP = PipelineAction.DROP


@dataclass
class RedirectRule:
    """A controller-installed destination-IP rule on a neighbour switch.

    ``kind`` is one of:

    * ``"failover"`` -- Algorithm 2: skip the failed switch by popping the
      next hop from the chain list (or reply to the client when the failed
      switch was the last hop).
    * ``"drop"``     -- Algorithm 3 phase 1: stop forwarding queries of the
      given virtual groups while state is synchronized.
    * ``"forward"``  -- Algorithm 3 phase 2: send queries to the replacement
      switch ``new_dst_ip`` instead (installed with a higher priority so it
      overrides the failover rule).
    """

    match_dst_ip: str
    kind: str
    priority: int = 0
    new_dst_ip: Optional[str] = None
    vgroups: Optional[Set[int]] = None
    write_only: bool = False
    rule_id: int = field(default_factory=lambda: next(_rule_ids))

    def matches(self, packet: Packet, header: NetChainHeader) -> bool:
        if packet.ip.dst_ip != self.match_dst_ip:
            return False
        if self.vgroups is not None and header.vgroup not in self.vgroups:
            return False
        if self.write_only and header.op == OpCode.READ:
            return False
        return True


@dataclass
class ProgramStats:
    """Data-plane counters, useful in tests and experiments."""

    reads: int = 0
    writes_applied: int = 0
    writes_stale_dropped: int = 0
    cas_failures: int = 0
    replies_sent: int = 0
    misses: int = 0
    redirects: int = 0
    dropped_by_rule: int = 0
    recirculations: int = 0
    #: Queries dropped because their header carried a superseded chain epoch
    #: (stragglers addressed under a pre-reconfiguration layout).
    dropped_stale_epoch: int = 0
    #: Writes dropped during a per-vgroup migration freeze window.
    dropped_frozen: int = 0
    #: Hot-key-tier rotated reads forwarded toward the wide tail because
    #: this replica's copy was not (yet) marked clean.
    reads_forwarded_dirty: int = 0
    #: Hot-key-tier CLEAN notifications sent (as the wide-chain tail).
    clean_notifications: int = 0


class NetChainSwitchProgram(PipelineProgram):
    """Algorithm 1 and friends, installed as a pipeline program on a switch."""

    def __init__(self, switch: Switch, kvstore: Optional[SwitchKVStore] = None,
                 reply_on_miss: bool = True, create_store: bool = True) -> None:
        self.switch = switch
        if kvstore is None and create_store:
            kvstore = SwitchKVStore(switch)
        self.kvstore = kvstore
        self.reply_on_miss = reply_on_miss
        #: Session number this switch uses when acting as the head of a
        #: virtual group's chain (bumped by the controller when it promotes
        #: a new head, Section 5.2).
        self.head_sessions: Dict[int, int] = {}
        self.rules: List[RedirectRule] = []
        #: Chain-configuration epoch installed per virtual group.  Queries
        #: whose header carries an older epoch are dropped (they were built
        #: against a superseded chain layout); the client's retry re-resolves
        #: the directory and comes back with the current epoch.
        self.vgroup_epochs: Dict[int, int] = {}
        #: Virtual groups whose writes are frozen (phase 1 of a planned
        #: migration: state is being synchronized to the target chain).
        #: Reads keep flowing -- the frozen state cannot change.
        self.frozen_write_vgroups: Set[int] = set()
        #: Hot-key sketch installed by the hot-key tier's manager
        #: (:mod:`repro.core.hotkeys`); ``None`` keeps the read path at its
        #: steady-state cost.
        self.hotkeys = None
        #: Per-key clean version ``(session, seq)`` for hot keys this switch
        #: replicates as a non-tail wide-chain member.  A rotated read is
        #: served only while the stored version equals the clean version;
        #: otherwise it forwards toward the wide tail.
        self._read_gate: Dict[bytes, tuple] = {}
        #: Per-key sibling-replica IPs to CLEAN-notify after committing a
        #: write, installed on the wide-chain tail of each hot key.
        self._clean_notify: Dict[bytes, tuple] = {}
        self.stats = ProgramStats()
        #: Optional telemetry tracer (:class:`repro.core.trace.Tracer`);
        #: ``None`` keeps the query path at its steady-state cost.
        self.telemetry = None
        #: When False the switch ignores NetChain queries entirely (used by
        #: the controller before a replacement switch is activated).
        self.active = True

    # ------------------------------------------------------------------ #
    # Controller-facing API (rule and session management).
    # ------------------------------------------------------------------ #

    def add_rule(self, rule: RedirectRule) -> RedirectRule:
        """Install a redirect/drop rule; higher priority rules win."""
        self.rules.append(rule)
        self.rules.sort(key=lambda r: -r.priority)
        return rule

    def remove_rule(self, rule: RedirectRule) -> None:
        """Remove a previously installed rule (no error if already gone)."""
        if rule in self.rules:
            self.rules.remove(rule)

    def remove_rules_matching(self, dst_ip: Optional[str] = None,
                              kind: Optional[str] = None) -> int:
        """Bulk-remove the rules matching every provided criterion."""
        def is_target(rule: RedirectRule) -> bool:
            if dst_ip is not None and rule.match_dst_ip != dst_ip:
                return False
            if kind is not None and rule.kind != kind:
                return False
            return True

        before = len(self.rules)
        self.rules = [r for r in self.rules if not is_target(r)]
        return before - len(self.rules)

    def set_head_session(self, vgroup: int, session: int) -> None:
        """Set the session number used when this switch heads ``vgroup``."""
        self.head_sessions[vgroup] = session

    def set_vgroup_epoch(self, vgroup: int, epoch: int) -> None:
        """Install a chain-configuration epoch; older-epoch queries drop."""
        self.vgroup_epochs[vgroup] = epoch

    def freeze_vgroup_writes(self, vgroup: int) -> None:
        """Stop applying writes for one virtual group (migration phase 1)."""
        self.frozen_write_vgroups.add(vgroup)

    def unfreeze_vgroup_writes(self, vgroup: int) -> None:
        """Lift a migration write freeze."""
        self.frozen_write_vgroups.discard(vgroup)

    def set_read_gate(self, key: bytes, version: tuple) -> None:
        """Install the clean version gating rotated reads of a hot key."""
        self._read_gate[key] = version

    def clear_read_gate(self, key: bytes) -> None:
        """Remove a hot key's read gate (the key narrowed)."""
        self._read_gate.pop(key, None)

    def set_clean_notify(self, key: bytes, sibling_ips: tuple) -> None:
        """As the wide-chain tail, CLEAN-notify these siblings on commit."""
        self._clean_notify[key] = tuple(sibling_ips)

    def clear_clean_notify(self, key: bytes) -> None:
        """Stop CLEAN-notifying for a hot key (the key narrowed)."""
        self._clean_notify.pop(key, None)

    # ------------------------------------------------------------------ #
    # Pipeline entry point.
    # ------------------------------------------------------------------ #

    def process(self, switch: Switch, packet: Packet, in_port: Port) -> PipelineAction:
        udp = packet.udp
        if udp is None or udp.dst_port != NETCHAIN_UDP_PORT:
            return _CONTINUE
        header = packet.payload
        if type(header) is not NetChainHeader:
            return _CONTINUE
        # One pipeline pass may combine local chain processing with one or
        # more failure-handling rewrites: a redirect rule can point the
        # packet at *this* switch ("N overlaps with S2": apply the rule
        # before processing), and processing can point it at a failed switch
        # ("N overlaps with S0": apply the rule after processing).  The loop
        # below alternates the two until the packet leaves the switch; it is
        # bounded because every local processing step consumes chain hops
        # and every rule application either changes the destination or ends
        # the query.
        ip = packet.ip
        my_ip = switch.ip
        if ip.dst_ip == my_ip and header.op in REPLY_OPS:
            # A reply addressed to a switch is a protocol error; drop it
            # rather than forward it in a loop.
            return _DROP
        rules = self.rules
        if not rules:
            # Fast path: no failure-handling rules installed (the steady
            # state).  Process locally-addressed queries once and forward;
            # the rule/processing alternation below cannot trigger.
            if ip.dst_ip != my_ip or header.op not in REQUEST_OPS:
                return _FORWARD
            if not self.active:
                return _DROP
            return self._process_query(switch, packet, header)
        limit = len(rules) + len(header.chain) + 3
        for _ in range(limit):
            if ip.dst_ip == my_ip and header.op in REQUEST_OPS:
                if not self.active:
                    return _DROP
                action = self._process_query(switch, packet, header)
                if action is not _FORWARD:
                    return action
                continue
            if not rules:
                return _FORWARD
            rule = self._first_match(packet, header)
            if rule is None:
                return _FORWARD
            if rule.kind == "drop":
                self.stats.dropped_by_rule += 1
                return _DROP
            self.stats.redirects += 1
            if rule.kind == "forward":
                packet.ip.dst_ip = rule.new_dst_ip
                continue
            if rule.kind == "failover":
                if header.chain:
                    packet.ip.dst_ip = header.chain.pop(0)
                    continue
                # The failed switch was the last hop: reply on its behalf.
                self._make_reply(switch, packet, header, QueryStatus.OK)
                return _FORWARD
            raise ValueError(f"unknown rule kind {rule.kind!r}")
        return _FORWARD

    def _first_match(self, packet: Packet, header: NetChainHeader) -> Optional[RedirectRule]:
        for rule in self.rules:
            if rule.matches(packet, header):
                return rule
        return None

    # ------------------------------------------------------------------ #
    # Algorithm 1: query processing.
    # ------------------------------------------------------------------ #

    def _process_query(self, switch: Switch, packet: Packet,
                       header: NetChainHeader) -> PipelineAction:
        if not header.is_request():
            # A reply addressed to the switch itself is a protocol error;
            # drop it rather than loop.
            return _DROP
        tel = self.telemetry
        if tel is not None:
            tel.switch_stage(switch, packet, header)
        # Reconfiguration guards, checked before the store lookup so a
        # straggler addressed under a superseded chain layout drops even
        # after its keys were garbage-collected here (replying NOT_FOUND
        # would be an inconsistent definite answer).
        installed_epoch = self.vgroup_epochs.get(header.vgroup)
        if installed_epoch is not None and header.epoch < installed_epoch:
            self.stats.dropped_stale_epoch += 1
            return _DROP
        if (header.vgroup in self.frozen_write_vgroups
                and header.op != OpCode.READ):
            # Migration phase 1: the group's state is being synchronized;
            # writes drop and the client's retry lands after the commit.
            self.stats.dropped_frozen += 1
            return _DROP
        if header.op == OpCode.CLEAN:
            # Hot-key tier: a clean-version notification from the wide
            # tail.  Pure metadata -- no store access, never replied to.
            # Losing one only leaves the replica dirty (it keeps
            # forwarding reads to the tail) until the next commit.
            return self._apply_clean(header)
        if self.kvstore is None:
            # A transit-only switch (no storage role) addressed directly:
            # treat as a miss.
            self.stats.misses += 1
            if self.reply_on_miss:
                self._make_reply(switch, packet, header, QueryStatus.KEY_NOT_FOUND)
                return _FORWARD
            return _DROP
        loc = self.kvstore.lookup(header.key)
        if loc is None:
            self.stats.misses += 1
            if self.reply_on_miss:
                self._make_reply(switch, packet, header, QueryStatus.KEY_NOT_FOUND)
                return _FORWARD
            return _DROP
        self._charge_recirculation(switch, header)
        if header.op == OpCode.READ:
            return self._process_read(switch, packet, header, loc)
        return self._process_write(switch, packet, header, loc)

    def _process_read(self, switch: Switch, packet: Packet, header: NetChainHeader,
                      loc: int) -> PipelineAction:
        item = self.kvstore.read_loc(loc)
        self.stats.reads += 1
        hotkeys = self.hotkeys
        if hotkeys is not None:
            hotkeys.record(header.key)
        gate = self._read_gate
        if gate and header.chain:
            # Hot-key tier: a non-tail wide-chain replica serves a rotated
            # read only while its copy is clean (== committed); dirty
            # copies forward toward the wide tail, which always serves.
            clean = gate.get(header.key)
            if clean is not None and (item.session, item.seq) != clean:
                packet.ip.dst_ip = header.chain.pop(0)
                packet.payload_bytes = header.wire_size()
                self.stats.reads_forwarded_dirty += 1
                return _FORWARD
        if not item.valid:
            self._make_reply(switch, packet, header, QueryStatus.KEY_NOT_FOUND)
            return _FORWARD
        header.value = item.value
        header.seq = item.seq
        header.session = item.session
        self._make_reply(switch, packet, header, QueryStatus.OK)
        return _FORWARD

    def _process_write(self, switch: Switch, packet: Packet, header: NetChainHeader,
                       loc: int) -> PipelineAction:
        stored = self.kvstore.read_loc(loc)
        is_head = header.seq == 0 and header.session == 0
        if is_head:
            # Head: assign a monotonically increasing version.  A new head
            # promoted after a failure uses a larger session number so its
            # versions order after everything the failed head issued.
            session = max(self.head_sessions.get(header.vgroup, 0), stored.session)
            header.session = session
            header.seq = stored.seq + 1
            if header.op == OpCode.CAS and stored.value != (header.cas_expected or b""):
                self.stats.cas_failures += 1
                header.value = stored.value
                self._make_reply(switch, packet, header, QueryStatus.CAS_FAILED)
                return _FORWARD
            self._apply_write(loc, header)
        else:
            if (header.session, header.seq) > (stored.session, stored.seq):
                self._apply_write(loc, header)
            else:
                # Stale write: Algorithm 1 line 13, Drop().  The client's
                # retry (writes are idempotent) will carry a newer version.
                self.stats.writes_stale_dropped += 1
                return _DROP
        if header.chain:
            packet.ip.dst_ip = header.chain.pop(0)
            packet.payload_bytes = header.wire_size()
            return _FORWARD
        notify = self._clean_notify
        if notify:
            # Hot-key tier: this switch is the wide-chain tail of the key
            # and just committed a write -- tell the sibling replicas the
            # new clean version so they resume serving rotated reads.
            targets = notify.get(header.key)
            if targets is not None:
                self._send_clean(switch, header, targets)
        self._make_reply(switch, packet, header, QueryStatus.OK)
        return _FORWARD

    def _apply_clean(self, header: NetChainHeader) -> "PipelineAction":
        gate = self._read_gate
        current = gate.get(header.key)
        if current is not None:
            version = (header.session, header.seq)
            if version > current:
                # Monotonic: reordered UDP delivery cannot roll the clean
                # version back to an older write.
                gate[header.key] = version
        return _DROP

    def _send_clean(self, switch: Switch, header: NetChainHeader,
                    targets: tuple) -> None:
        epoch = self.vgroup_epochs.get(header.vgroup, header.epoch)
        for ip in targets:
            clean = make_clean(header.key, header.seq, header.session,
                               vgroup=header.vgroup, epoch=epoch)
            packet = Packet(ip=IPv4Header(src_ip=switch.ip, dst_ip=ip),
                            udp=UDPHeader(src_port=NETCHAIN_UDP_PORT,
                                          dst_port=NETCHAIN_UDP_PORT),
                            payload=clean, payload_bytes=clean.wire_size(),
                            created_at=switch.sim.now)
            switch.forward(packet)
            self.stats.clean_notifications += 1

    def _apply_write(self, loc: int, header: NetChainHeader) -> None:
        valid = header.op != OpCode.DELETE
        value = b"" if header.op == OpCode.DELETE else header.value
        self.kvstore.write_loc(loc, value, header.seq, header.session, valid=valid)
        self.stats.writes_applied += 1

    # ------------------------------------------------------------------ #
    # Helpers.
    # ------------------------------------------------------------------ #

    def _charge_recirculation(self, switch: Switch, header: NetChainHeader) -> None:
        """Account for extra pipeline passes needed by oversized values."""
        cfg = switch.config
        if len(header.value) <= cfg.value_stages * cfg.stage_value_bytes:
            return  # fits in one pass, nothing to charge
        passes = self.kvstore.passes_required(len(header.value))
        if passes > 1:
            extra = passes - 1
            self.stats.recirculations += extra
            switch.charge_extra_passes(extra)

    def _make_reply(self, switch: Switch, packet: Packet, header: NetChainHeader,
                    status: QueryStatus) -> None:
        """Turn the query packet into a reply addressed back to the client."""
        tel = self.telemetry
        if tel is not None:
            tel.op_complete(header)  # header.op is still the request op here
        header.op = REPLY_FOR.get(header.op, header.op)
        header.status = status
        header.chain = []
        client_ip = packet.ip.src_ip
        client_port = packet.udp.src_port
        packet.ip.src_ip = switch.ip
        packet.ip.dst_ip = client_ip
        packet.udp.src_port = NETCHAIN_UDP_PORT
        packet.udp.dst_port = client_port
        packet.ip.ttl = 64
        packet.payload_bytes = header.wire_size()
        self.stats.replies_sent += 1
