"""Causal per-query tracing and the telemetry plane (``trace/v1``).

This is the *policy* half of the telemetry stack (the mechanism half --
registry, histograms, sampler, event log -- lives in
:mod:`repro.netsim.telemetry`):

* :class:`Tracer` -- the single object instrumented hot paths talk to.
  Hosts, links, switches, switch programs and agents each hold a
  ``telemetry`` attribute that is ``None`` by default; when a scenario
  enables telemetry it points at one shared tracer, and every hop of a
  traced query emits one span record keyed on sim-time.
* ``trace/v1`` run directories -- spans, metric time series and
  control-plane events spill as NDJSON, mirroring the ``history/v1``
  idiom (header line, compact sorted-key ASCII records, incremental
  flush), so a seeded run's telemetry is byte-identical across replays.
* :class:`TelemetryPlane` -- composes tracer + metrics registry +
  periodic sampler + control event log for one scenario, wired through
  ``DeploymentSpec(telemetry=...)``.
* Reconstruction -- :func:`trace_breakdowns` / :func:`stage_percentiles`
  / :func:`format_report` rebuild per-query critical paths (host stack,
  NIC queue, link transit, switch queue, pipeline stages) and per-stage
  percentiles from a spilled run; ``python -m repro.netsim.telemetry
  report <run_dir>`` is the CLI front end.

Span records (``spans.ndjson``) -- all carry ``t`` (sim-time), ``id``
(per-run trace id, dense from 1) and ``ev``:

``sub``
    query submitted by an agent: ``n`` agent, ``op``, ``key``.
``qtx``
    one (re)transmission: ``n`` agent, ``r`` retry index, ``dst`` IP.
``htx`` / ``hrx``
    host TX/RX path: ``n`` host, ``d`` stack delay, ``q`` NIC-queue wait
    (omitted when zero).
``lnk``
    link transit: ``n`` link, ``l`` latency (propagation+serialization).
``swq``
    switch ingress: ``n`` switch, ``w`` queue wait (omitted when zero),
    ``p`` pipeline delay.
``swp``
    switch-program stage on a chain hop: ``n`` switch, ``op``, ``vg``
    vgroup, ``sc`` remaining chain hops (chain position).
``rep`` / ``tmo``
    terminal reply / retry exhaustion: ``n`` agent, ``st`` status,
    ``l`` end-to-end latency, ``r`` retries.

Nothing machine- or process-dependent appears in any record: trace ids
are allocated per run (not the process-global query ids), times are
sim-times, and the header carries only the deployment meta.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.history_store import encode_bytes
from repro.netsim.telemetry import (
    ControlEventLog,
    MetricsRegistry,
    PeriodicSampler,
    TelemetryConfig,
    failure_timeline,
)

TRACE_SCHEMA = "trace/v1"
METRICS_SCHEMA = "trace-metrics/v1"
EVENTS_SCHEMA = "trace-events/v1"

SPANS_FILE = "spans.ndjson"
METRICS_FILE = "metrics.ndjson"
EVENTS_FILE = "events.ndjson"

#: Critical-path stages a query's latency decomposes into.  ``other`` is
#: the residual (retry timeouts, in-flight waits not covered by spans).
STAGES = ("host_stack", "nic_queue", "link", "switch_queue",
          "switch_pipeline")


def _record_line(record: Dict[str, Any]) -> bytes:
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")).encode("ascii") + b"\n"


def _key_label(raw: bytes) -> str:
    """Human-readable spelling of a fixed-width key (trailing NULs stripped)."""
    return encode_bytes(raw.rstrip(b"\x00")) or ""


class TraceWriter:
    """Incremental NDJSON writer: header line first, one record per line."""

    def __init__(self, path, schema: str, meta: Optional[dict] = None,
                 flush_every: int = 4096) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "wb")
        header: Dict[str, Any] = {"schema": schema}
        if meta:
            header["meta"] = dict(meta)
        self._file.write(_record_line(header))
        self.records = 0
        self.flush_every = max(1, flush_every)
        self.closed = False

    def write(self, record: Dict[str, Any]) -> None:
        self._file.write(_record_line(record))
        self.records += 1
        if self.records % self.flush_every == 0:
            self._file.flush()

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._file.flush()
            self._file.close()


class Tracer:
    """The one object every instrumented hot path talks to.

    Call sites keep a ``telemetry`` attribute that defaults to ``None``
    and guard with a single ``if tel is not None`` -- the whole cost of
    the disabled mode.  When attached, the tracer stamps a fresh trace id
    into each sampled query's packet (carried in the slotted ``Packet``
    header and across ``copy()``), emits one span per hop, accumulates
    per-link bit counts for the utilization time series, the per-vgroup
    op mix, and the query-latency histograms.
    """

    __slots__ = ("sim", "writer", "registry", "trace_packets",
                 "sample_every", "submits", "span_count", "opmix",
                 "_next_id")

    def __init__(self, sim, writer: Optional[TraceWriter] = None,
                 registry: Optional[MetricsRegistry] = None,
                 trace_packets: bool = True, sample_every: int = 1) -> None:
        self.sim = sim
        self.writer = writer
        self.registry = registry
        self.trace_packets = trace_packets and writer is not None
        self.sample_every = max(1, sample_every)
        self.submits = 0
        self.span_count = 0
        #: ``(vgroup, op_name) -> completed queries`` -- sampled into the
        #: metrics time series and totalled in the summary.
        self.opmix: Dict[Tuple[int, str], int] = {}
        self._next_id = 1

    @property
    def traces(self) -> int:
        """Trace ids allocated so far."""
        return self._next_id - 1

    def _span(self, record: Dict[str, Any]) -> None:
        self.span_count += 1
        self.writer.write(record)

    # ------------------------------------------------------------------ #
    # Agent hooks.
    # ------------------------------------------------------------------ #

    def query_submit(self, agent, pending) -> int:
        """Allocate (or decline) a trace id for a freshly submitted query."""
        self.submits += 1
        if not self.trace_packets:
            return 0
        if self.sample_every > 1 and (self.submits - 1) % self.sample_every:
            return 0
        tid = self._next_id
        self._next_id = tid + 1
        self._span({"t": self.sim._now, "id": tid, "ev": "sub",
                    "n": agent.name, "op": pending.op_name or pending.op.name.lower(),
                    "key": _key_label(pending.key)})
        return tid

    def query_tx(self, agent, pending, dst_ip: str) -> None:
        self._span({"t": self.sim._now, "id": pending.trace_id, "ev": "qtx",
                    "n": agent.name, "r": pending.retries, "dst": dst_ip})

    def query_reply(self, agent, pending, header, latency: float) -> None:
        registry = self.registry
        if registry is not None:
            registry.histogram("query_latency_s").record(latency)
            if pending.op_name:
                registry.histogram(f"query_latency_s:{pending.op_name}").record(latency)
        if pending.trace_id:
            rec = {"t": self.sim._now, "id": pending.trace_id, "ev": "rep",
                   "n": agent.name, "st": header.status.name.lower(),
                   "l": latency}
            if pending.retries:
                rec["r"] = pending.retries
            self._span(rec)

    def query_timeout(self, agent, pending) -> None:
        registry = self.registry
        if registry is not None:
            registry.inc("query_timeouts")
        if pending.trace_id:
            self._span({"t": self.sim._now, "id": pending.trace_id,
                        "ev": "tmo", "n": agent.name, "r": pending.retries})

    # ------------------------------------------------------------------ #
    # Netsim hooks (hosts, links, switches).
    # ------------------------------------------------------------------ #

    def host_tx(self, host, packet, delay: float) -> None:
        tid = packet.trace_id
        if tid:
            stack = host.config.stack_delay
            rec = {"t": self.sim._now, "id": tid, "ev": "htx",
                   "n": host.name, "d": stack}
            queue = delay - stack
            if queue > 0:
                rec["q"] = queue
            self._span(rec)

    def host_rx(self, host, packet, delay: float) -> None:
        tid = packet.trace_id
        if tid:
            stack = host.config.stack_delay
            rec = {"t": self.sim._now, "id": tid, "ev": "hrx",
                   "n": host.name, "d": stack}
            queue = delay - stack
            if queue > 0:
                rec["q"] = queue
            self._span(rec)

    def link_tx(self, link, packet, latency: float, size: int) -> None:
        link.tel_bits += size * 8.0
        tid = packet.trace_id
        if tid:
            self._span({"t": self.sim._now, "id": tid, "ev": "lnk",
                        "n": link.name, "l": latency})

    def switch_enq(self, switch, packet, wait: float) -> None:
        tid = packet.trace_id
        if tid:
            rec = {"t": self.sim._now, "id": tid, "ev": "swq",
                   "n": switch.name, "p": switch.config.pipeline_delay}
            if wait > 0:
                rec["w"] = wait
            self._span(rec)

    # ------------------------------------------------------------------ #
    # Switch-program hooks.
    # ------------------------------------------------------------------ #

    def switch_stage(self, switch, packet, header) -> None:
        tid = packet.trace_id
        if tid:
            self._span({"t": self.sim._now, "id": tid, "ev": "swp",
                        "n": switch.name, "op": header.op.name.lower(),
                        "vg": header.vgroup, "sc": len(header.chain)})

    def op_complete(self, header) -> None:
        """Called by the switch program as a reply is minted (op mix)."""
        key = (header.vgroup, header.op.name.lower())
        self.opmix[key] = self.opmix.get(key, 0) + 1


class TelemetryPlane:
    """Tracer + registry + sampler + event log for one scenario run.

    Built by :func:`repro.deploy.scenario.run_scenario` when the spec
    carries ``telemetry=...``; deployments wire it to their nodes via
    ``Deployment.attach_telemetry``.  :meth:`finish` spills the metric
    time series and control events next to the spans and returns the
    deterministic summary dict stored on ``ScenarioResult.metrics``.
    """

    def __init__(self, sim, config: TelemetryConfig, run_dir,
                 meta: Optional[dict] = None) -> None:
        config.validate()
        self.sim = sim
        self.config = config
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.meta = dict(meta or {})
        self.registry = MetricsRegistry()
        writer = None
        if config.trace:
            writer = TraceWriter(self.run_dir / SPANS_FILE, TRACE_SCHEMA,
                                 meta=self.meta)
        self.tracer = Tracer(sim, writer=writer, registry=self.registry,
                             trace_packets=config.trace,
                             sample_every=config.trace_sample)
        self.event_log = ControlEventLog(sim) if config.events else None
        self.sampler: Optional[PeriodicSampler] = None
        self._topology = None
        self.finished = False

    # -- wiring -------------------------------------------------------- #

    def attach_topology(self, topology) -> None:
        """Instrument every host, switch and link of a topology."""
        self._topology = topology
        tracer = self.tracer
        for host in topology.hosts.values():
            host.telemetry = tracer
        for switch in topology.switches.values():
            switch.telemetry = tracer
        for link in topology.links:
            link.telemetry = tracer

    def attach_netchain(self, cluster) -> None:
        """Instrument the NetChain-family pieces: agents, programs, controller."""
        tracer = self.tracer
        for agent in cluster.agent_list():
            agent.telemetry = tracer
        controller = cluster.controller
        for program in controller.programs.values():
            program.telemetry = tracer
        if self.event_log is not None:
            controller.event_log = self.event_log

    def start(self) -> None:
        if self.config.metrics and self._topology is not None:
            self.sampler = PeriodicSampler(
                self.sim, self.registry, self._topology,
                self.config.sample_interval, opmix_source=self.tracer)
            self.sampler.start()

    # -- teardown ------------------------------------------------------ #

    def finish(self) -> dict:
        """Stop sampling, spill metrics + events, close the span file."""
        if self.finished:
            return self.summary()
        self.finished = True
        if self.sampler is not None:
            self.sampler.stop()

        if self.config.metrics:
            writer = TraceWriter(self.run_dir / METRICS_FILE, METRICS_SCHEMA,
                                 meta=self.meta)
            for record in self.registry.series:
                writer.write(record)
            writer.close()
        if self.event_log is not None:
            writer = TraceWriter(self.run_dir / EVENTS_FILE, EVENTS_SCHEMA,
                                 meta=self.meta)
            for record in self.event_log.as_records():
                writer.write(record)
            writer.close()
        if self.tracer.writer is not None:
            self.tracer.writer.close()
        return self.summary()

    def summary(self) -> dict:
        """Deterministic scenario-level metrics (``ScenarioResult.metrics``)."""
        tracer = self.tracer
        registry = self.registry
        out: Dict[str, Any] = {
            "schema": "telemetry/v1",
            "spans": tracer.span_count,
            "traces": tracer.traces,
            "queries": tracer.submits,
            "sampled_ticks": len(registry.series),
            "gauges": {k: registry.gauges[k] for k in sorted(registry.gauges)},
            "counters": {k: registry.counters[k]
                         for k in sorted(registry.counters)},
            "histograms": {k: registry.histograms[k].summary()
                           for k in sorted(registry.histograms)},
            "opmix": {f"vg{vg}:{op}": count
                      for (vg, op), count in sorted(tracer.opmix.items())},
            "engine": self.sim.stats(),
        }
        if self.event_log is not None:
            out["events"] = len(self.event_log.events)
        return out


# --------------------------------------------------------------------- #
# Reading + reconstruction.
# --------------------------------------------------------------------- #

def read_ndjson(path) -> Tuple[dict, List[dict]]:
    """Read one trace NDJSON file: (header, records)."""
    path = Path(path)
    header: dict = {}
    records: List[dict] = []
    with open(path, "rb") as handle:
        for i, line in enumerate(handle):
            record = json.loads(line)
            if i == 0:
                header = record
            else:
                records.append(record)
    return header, records


def iter_spans(run_dir) -> Iterator[dict]:
    path = Path(run_dir) / SPANS_FILE
    if not path.exists():  # metrics-only run (TelemetryConfig(trace=False))
        return
    with open(path, "rb") as handle:
        first = True
        for line in handle:
            if first:
                first = False
                continue
            yield json.loads(line)


def run_info(run_dir) -> dict:
    """Headers and record counts of every file in a trace/v1 run dir."""
    run_dir = Path(run_dir)
    info: Dict[str, Any] = {"run_dir": str(run_dir)}
    for name in (SPANS_FILE, METRICS_FILE, EVENTS_FILE):
        path = run_dir / name
        if not path.exists():
            continue
        header, records = read_ndjson(path)
        info[name] = {
            "schema": header.get("schema"),
            "meta": header.get("meta", {}),
            "records": len(records),
            "bytes": path.stat().st_size,
        }
    return info


def trace_breakdowns(spans) -> Dict[int, dict]:
    """Group spans by trace id and decompose each trace's latency.

    Returns ``{trace_id: {"op", "key", "start", "latency", "status",
    "retries", "completed", "hops", "chain_hops", "stages": {stage:
    seconds}, "spans": [...]}}``.  A retried query aggregates the spans
    of *all* its transmissions, so stage sums describe work performed,
    and ``other`` (latency minus the stage sums) absorbs retry waits.
    """
    traces: Dict[int, dict] = {}

    def entry(tid: int) -> dict:
        trace = traces.get(tid)
        if trace is None:
            trace = traces[tid] = {
                "id": tid, "op": "?", "key": "", "start": None,
                "latency": None, "status": None, "retries": 0,
                "completed": False, "hops": 0, "chain_hops": 0,
                "stages": {name: 0.0 for name in STAGES}, "spans": [],
            }
        return trace

    for span in spans:
        tid = span.get("id")
        if not tid:
            continue
        trace = entry(tid)
        trace["spans"].append(span)
        ev = span["ev"]
        stages = trace["stages"]
        if ev == "sub":
            trace["op"] = span.get("op", "?")
            trace["key"] = span.get("key", "")
            trace["start"] = span["t"]
        elif ev in ("htx", "hrx"):
            stages["host_stack"] += span.get("d", 0.0)
            stages["nic_queue"] += span.get("q", 0.0)
        elif ev == "lnk":
            stages["link"] += span.get("l", 0.0)
            trace["hops"] += 1
        elif ev == "swq":
            stages["switch_queue"] += span.get("w", 0.0)
            stages["switch_pipeline"] += span.get("p", 0.0)
        elif ev == "swp":
            trace["chain_hops"] += 1
        elif ev == "rep":
            trace["latency"] = span.get("l")
            trace["status"] = span.get("st")
            trace["retries"] = span.get("r", 0)
            trace["completed"] = True
        elif ev == "tmo":
            trace["retries"] = span.get("r", 0)
            trace["status"] = "timeout"

    for trace in traces.values():
        if trace["completed"] and trace["latency"] is not None:
            trace["other"] = max(
                0.0, trace["latency"] - sum(trace["stages"].values()))
    return traces


def _exact_percentile(ordered: List[float], p: float) -> float:
    if not ordered:
        return 0.0
    import math
    rank = max(0, min(len(ordered) - 1,
                      int(math.ceil(p / 100.0 * len(ordered))) - 1))
    return ordered[rank]


def stage_percentiles(traces: Dict[int, dict],
                      ps=(50.0, 95.0, 99.0)) -> Dict[str, Dict[str, float]]:
    """Per-stage latency percentiles over all completed traces."""
    completed = [t for t in traces.values() if t["completed"]]
    out: Dict[str, Dict[str, float]] = {}
    for stage in STAGES + ("other", "total"):
        if stage == "total":
            values = sorted(t["latency"] for t in completed)
        elif stage == "other":
            values = sorted(t.get("other", 0.0) for t in completed)
        else:
            values = sorted(t["stages"][stage] for t in completed)
        if not values:
            continue
        out[stage] = {"mean": sum(values) / len(values)}
        for p in ps:
            out[stage][f"p{p:g}"] = _exact_percentile(values, p)
    return out


def _fmt_us(seconds: float) -> str:
    return f"{seconds * 1e6:10.2f}"


def format_report(run_dir, top: int = 1) -> str:
    """Human/CI-facing report: stage percentiles, slowest traces, timeline."""
    run_dir = Path(run_dir)
    info = run_info(run_dir)
    lines: List[str] = []
    meta = {}
    for name in (SPANS_FILE, METRICS_FILE, EVENTS_FILE):
        meta = info.get(name, {}).get("meta", {})
        if meta:
            break
    lines.append(f"## Trace report: {run_dir.name}")
    lines.append("")
    lines.append(f"- meta: `{json.dumps(meta, sort_keys=True)}`")
    for name in (SPANS_FILE, METRICS_FILE, EVENTS_FILE):
        if name in info:
            lines.append(f"- {name}: {info[name]['records']} records, "
                         f"{info[name]['bytes']} bytes")

    traces = trace_breakdowns(iter_spans(run_dir))
    completed = [t for t in traces.values() if t["completed"]]
    timed_out = [t for t in traces.values() if t["status"] == "timeout"]
    lines.append(f"- traces: {len(traces)} "
                 f"({len(completed)} completed, {len(timed_out)} timed out)")
    lines.append("")

    if completed:
        pct = stage_percentiles(traces)
        lines.append("### Critical-path stages (us, over completed traces)")
        lines.append("")
        lines.append("| stage | mean | p50 | p95 | p99 |")
        lines.append("|---|---|---|---|---|")
        for stage in STAGES + ("other", "total"):
            row = pct.get(stage)
            if row is None:
                continue
            lines.append(
                f"| {stage} | {row['mean'] * 1e6:.2f} "
                f"| {row['p50'] * 1e6:.2f} | {row['p95'] * 1e6:.2f} "
                f"| {row['p99'] * 1e6:.2f} |")
        lines.append("")

        slowest = sorted(completed, key=lambda t: (-t["latency"], t["id"]))
        for trace in slowest[:max(0, top)]:
            lines.append(
                f"### Slowest trace #{trace['id']}: {trace['op']} "
                f"{trace['key']!r} -- {trace['latency'] * 1e6:.2f} us, "
                f"{trace['chain_hops']} chain hop(s), "
                f"{trace['retries']} retries")
            lines.append("")
            lines.append("| t (us) | hop | detail |")
            lines.append("|---|---|---|")
            start = trace["start"] or 0.0
            for span in trace["spans"]:
                offset = (span["t"] - start) * 1e6
                detail = {k: v for k, v in span.items()
                          if k not in ("t", "id", "ev", "n")}
                lines.append(f"| {offset:.2f} | {span['ev']} {span.get('n', '')} "
                             f"| `{json.dumps(detail, sort_keys=True)}` |")
            lines.append("")

    events_path = run_dir / EVENTS_FILE
    if events_path.exists():
        _, events = read_ndjson(events_path)
        if events:
            lines.append("### Control-plane events")
            lines.append("")
            for rec in events:
                fields = {k: v for k, v in rec.items() if k not in ("t", "ev")}
                lines.append(f"- `{rec['t'] * 1e3:9.3f} ms` **{rec['ev']}** "
                             f"`{json.dumps(fields, sort_keys=True)}`")
            lines.append("")
            timeline = failure_timeline(events)
            if timeline:
                lines.append("### Failure/recovery timeline (derived)")
                lines.append("")
                for e in timeline:
                    parts = [f"switch {e['switch']}"]
                    if "failover_latency" in e:
                        parts.append(
                            f"failover {e['failover_latency'] * 1e3:.3f} ms "
                            f"after detection")
                    if "recovery_duration" in e:
                        parts.append(
                            f"recovery {e['recovery_duration'] * 1e3:.3f} ms"
                            f" ({e.get('recovery_outcome', '?')})")
                    lines.append("- " + "; ".join(parts))
                lines.append("")

    metrics_path = run_dir / METRICS_FILE
    if metrics_path.exists():
        header, series = read_ndjson(metrics_path)
        if series:
            lines.append("### Sampled time series")
            lines.append("")
            lines.append(f"- {len(series)} ticks at "
                         f"{meta.get('sample_interval', '?')} s")
            peak_q = 0.0
            peak_util = 0.0
            for rec in series:
                for entry in rec.get("switches", {}).values():
                    peak_q = max(peak_q, entry.get("q", 0.0))
                for util in rec.get("links", {}).values():
                    peak_util = max(peak_util, util)
            lines.append(f"- peak switch queue backlog: {peak_q * 1e6:.2f} us")
            lines.append(f"- peak link utilization: {peak_util:.1%}")
            lines.append("")

    return "\n".join(lines).rstrip() + "\n"
