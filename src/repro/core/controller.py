"""The NetChain control plane (Section 5).

The controller is the auxiliary master of Vertical Paxos: it owns the
reconfiguration protocol while the switches' data plane runs the steady
state protocol.  Concretely it

* assigns keys to chains of ``f+1`` switches with consistent hashing and
  virtual nodes (Section 4.1),
* installs the NetChain program, index-table entries and register state on
  switches (insert/delete are control-plane operations),
* performs **fast failover** (Algorithm 2): when a switch fails it installs
  destination-IP rewrite rules on the failed switch's neighbours so every
  affected chain immediately continues with ``f`` nodes, and
* performs **failure recovery** (Algorithm 3): it copies state to a
  replacement switch and splices it into the chain with a two-phase atomic
  switching protocol, one virtual group at a time so that only a small
  fraction of keys lose write availability at any moment (Section 5.2).

All controller actions take simulated time (rule installation latency,
state-synchronization throughput), which is what produces the throughput
time series of Figure 10.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.kvstore import KVStoreConfig, SwitchKVStore
from repro.core.protocol import normalize_key, normalize_value
from repro.core.ring import ConsistentHashRing
from repro.core.switch_program import NetChainSwitchProgram, RedirectRule
from repro.netsim.routing import install_shortest_path_routes, reroute_around_failures
from repro.netsim.switch import Switch
from repro.netsim.topology import Topology


@dataclass
class ControllerConfig:
    """Control-plane parameters.

    The state-synchronization rate is expressed in items per second because
    the prototype controller copies key-value items over per-item RPCs
    through the switch OS agent (Section 7); ~140 items/s reproduces the
    ~150 s recovery of a 20K-item store observed in Figure 10(a).
    """

    #: Chain length, f+1.  The paper's deployments use 3.
    replication: int = 3
    #: Virtual nodes (= virtual groups) per switch.
    vnodes_per_switch: int = 10
    #: Key slots per switch store.
    store_slots: int = 65536
    #: Latency of installing one rule on one switch (control channel RPC).
    rule_install_latency: float = 1e-3
    #: Extra delay before the controller reacts to a failure (detection time).
    failure_detection_delay: float = 0.0
    #: Items per second the controller can copy during state synchronization.
    sync_items_per_sec: float = 140.0
    #: Fraction of the state copy that happens in the pre-synchronization
    #: step (Step 1 of Algorithm 3), during which availability is unaffected.
    #: The measured prototype behaviour (Figure 10) corresponds to 0.0.
    presync_fraction: float = 0.0
    #: Fixed per-virtual-group overhead added to each group's recovery.
    per_group_overhead: float = 50e-3
    #: Control-plane latency of an insert/delete operation.
    insert_latency: float = 2e-3
    #: Whether values larger than one pipeline pass are accepted.
    allow_recirculation: bool = False
    #: Seed for randomized choices (replacement switch selection).
    seed: int = 0


@dataclass
class ChainInfo:
    """The chain currently serving one virtual group."""

    vgroup: int
    switches: List[str]

    def head(self) -> str:
        return self.switches[0]

    def tail(self) -> str:
        return self.switches[-1]


@dataclass
class RecoveryReport:
    """Summary of one completed failure recovery, for tests and experiments."""

    failed_switch: str
    groups_recovered: int = 0
    #: Groups restored by shrinking the chain to its live members because no
    #: disjoint replacement switch was available.
    groups_shrunk: int = 0
    #: Groups skipped because no live chain member held their state.
    groups_skipped: int = 0
    items_copied: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    aborted: bool = False
    replacements: Dict[int, str] = field(default_factory=dict)


class NetChainController:
    """The logically centralized NetChain controller."""

    def __init__(self, topology: Topology, member_switches: Optional[Sequence[str]] = None,
                 config: Optional[ControllerConfig] = None) -> None:
        """Args:
            topology: the simulated network.
            member_switches: names of the switches that store NetChain data.
                Defaults to every switch in the topology.
            config: control-plane parameters.
        """
        self.topology = topology
        self.sim = topology.sim
        self.config = config or ControllerConfig()
        self.rng = random.Random(self.config.seed)
        self.members: List[str] = list(member_switches or topology.switches.keys())
        if len(self.members) < self.config.replication:
            raise ValueError("not enough member switches for the requested replication")
        self.ring = ConsistentHashRing(self.members,
                                       vnodes_per_switch=self.config.vnodes_per_switch,
                                       replication=self.config.replication,
                                       seed=self.config.seed)
        self.programs: Dict[str, NetChainSwitchProgram] = {}
        self.stores: Dict[str, SwitchKVStore] = {}
        self._install_programs()
        #: vgroup -> chain (switch names, head first).  Agents read through
        #: :meth:`chain_ips_for_key`, which consults this table; the table is
        #: only touched by reconfigurations, never by queries.
        self.chain_table: Dict[int, ChainInfo] = {
            vgroup: ChainInfo(vgroup, self.ring.chain_for_vgroup(vgroup))
            for vgroup in self.ring.vnodes
        }
        #: Head session number per virtual group (Section 5.2).
        self.sessions: Dict[int, int] = {vgroup: 0 for vgroup in self.ring.vnodes}
        #: Chain-configuration epoch per virtual group, stamped into query
        #: headers by :meth:`route_for_key` and bumped by planned
        #: reconfigurations so straggler queries addressed under a
        #: superseded layout are dropped by the data plane.
        self.epochs: Dict[int, int] = {vgroup: 0 for vgroup in self.ring.vnodes}
        #: Keys registered per virtual group (used to scope state sync).
        self.keys_by_vgroup: Dict[int, Set[bytes]] = {}
        #: key -> (chain IPs, vgroup) routing cache for the per-query hot
        #: path.  Validity is keyed on the ring generation plus a chain
        #: version bumped by every chain-table commit and epoch bump, so
        #: reconfigurations invalidate it wholesale.
        self._route_cache: Dict = {}
        self._route_token: Tuple[int, int] = (-1, -1)
        self._chain_version = 0
        self.failed_switches: Set[str] = set()
        #: Switches whose failure recovery (Algorithm 3) is in progress;
        #: guards against double-started recoveries and against membership
        #: flapping while chains are being spliced.
        self.recovering: Set[str] = set()
        self.events: List[Tuple[float, str]] = []
        self.recovery_reports: List[RecoveryReport] = []
        #: Hot-key tier policy loop (:class:`repro.core.hotkeys.HotKeyManager`)
        #: when the tier is enabled; ``None`` keeps routing on the plain
        #: chain-table path.
        self.hotkey_manager = None
        #: Optional structured event log
        #: (:class:`repro.netsim.telemetry.ControlEventLog`), attached by
        #: the telemetry plane; ``None`` keeps ``_emit`` a no-op.  The
        #: detector, migration coordinator and hot-key manager also emit
        #: through :meth:`_emit`.
        self.event_log = None
        install_shortest_path_routes(topology)

    # ------------------------------------------------------------------ #
    # Setup.
    # ------------------------------------------------------------------ #

    def _install_programs(self) -> None:
        store_config = KVStoreConfig(slots=self.config.store_slots,
                                     allow_recirculation=self.config.allow_recirculation)
        for name, switch in self.topology.switches.items():
            if name in self.members:
                store = SwitchKVStore(switch, config=store_config)
                program = NetChainSwitchProgram(switch, kvstore=store)
                self.stores[name] = store
            else:
                # Non-member switches still run the program so they can host
                # failover rules when they neighbour a failed member.
                program = NetChainSwitchProgram(switch, kvstore=None, create_store=False)
            self.programs[name] = program
            switch.install_program(program)

    def _log(self, message: str) -> None:
        self.events.append((self.sim.now, message))

    def _emit(self, kind: str, **fields) -> None:
        """Emit a structured control-plane event when telemetry is attached."""
        log = self.event_log
        if log is not None:
            log.emit(kind, **fields)

    # ------------------------------------------------------------------ #
    # Directory API used by agents.
    # ------------------------------------------------------------------ #

    def switch_ip(self, name: str) -> str:
        """IP address of a member switch."""
        return self.topology.switches[name].ip

    def chain_for_key(self, key) -> ChainInfo:
        """The chain currently assigned to ``key``'s virtual group."""
        vgroup = self.ring.vgroup_for_key(key)
        return self.chain_table[vgroup]

    def chain_ips_for_key(self, key) -> Tuple[List[str], int]:
        """(chain IPs head-to-tail, virtual group) for a key — what agents
        embed into query headers (Section 4.2)."""
        info = self.chain_for_key(key)
        return [self.switch_ip(name) for name in info.switches], info.vgroup

    def route_for_key(self, key) -> Tuple[Sequence[str], int, int]:
        """(chain IPs, virtual group, chain epoch) — the full routing state
        agents stamp into each transmission of a query.

        Cached per key: agents re-resolve the directory on every
        transmission (first send and each retry), which makes this the
        single most-called control-plane entry point.  The cache is
        invalidated wholesale whenever the ring or any chain assignment
        changes; the epoch is always read live.
        """
        manager = self.hotkey_manager
        if manager is not None and manager.hot_routes:
            hot = manager.hot_routes.get(normalize_key(key))
            if hot is not None:
                # Writes (and non-rotated reads) of a widened key traverse
                # the whole wide chain; the commit point is the wide tail.
                return hot.ips, hot.vgroup, self.epochs.get(hot.vgroup, 0)
        token = (self.ring.generation, self._chain_version)
        cache = self._route_cache
        if self._route_token != token:
            cache.clear()
            self._route_token = token
        entry = cache.get(key)
        if entry is None:
            info = self.chain_for_key(key)
            switches = self.topology.switches
            # A tuple, not a list: the cached route is shared by reference
            # across every transmission of the key, so it must be immutable.
            ips = tuple(switches[name].ip for name in info.switches)
            entry = (ips, info.vgroup)
            if len(cache) >= 1 << 16:
                # Bounded like protocol._KEY_CACHE: an unbounded distinct-key
                # stream (e.g. read misses) must not grow memory forever.
                cache.clear()
            cache[key] = entry
        ips, vgroup = entry
        return ips, vgroup, self.epochs.get(vgroup, 0)

    def read_route_for_key(self, key):
        """Hot-key-tier rotated read route, or ``None`` for cold keys.

        Agents consult this before building a read; ``None`` (the steady
        state, one dict/None check) falls through to the normal
        tail-addressed read via :meth:`route_for_key`.  Returns
        ``(dst_ip, chain_suffix, vgroup, epoch)`` where the suffix holds
        the wide-chain hops after ``dst_ip``, toward the wide tail.
        """
        manager = self.hotkey_manager
        if manager is None or not manager.hot_routes:
            return None
        return manager.read_route(key)

    # ------------------------------------------------------------------ #
    # Key management (control-plane insert / delete, Section 4.1).
    # ------------------------------------------------------------------ #

    def insert_key(self, key, value=b"", on_done: Optional[Callable[[], None]] = None) -> None:
        """Insert a key: install index entries on the chain switches.

        Takes control-plane latency; ``on_done`` fires when the key is
        queryable.
        """
        def do_insert() -> None:
            self._insert_now(key, value)
            if on_done is not None:
                on_done()

        self.sim.schedule(self.config.insert_latency, do_insert)

    def _insert_now(self, key, value=b"") -> None:
        info = self.chain_for_key(key)
        raw_key = normalize_key(key)
        raw_value = normalize_value(value)
        for name in info.switches:
            store = self.stores[name]
            loc = store.insert_key(raw_key)
            if raw_value:
                store.write_loc(loc, raw_value, seq=0, session=0)
        self.keys_by_vgroup.setdefault(info.vgroup, set()).add(raw_key)

    def populate(self, items: Dict, default_value=b"") -> None:
        """Bulk-load keys without simulating per-key control latency.

        ``items`` may be a dict of ``key -> value`` or an iterable of keys.
        """
        if isinstance(items, dict):
            pairs = items.items()
        else:
            pairs = ((key, default_value) for key in items)
        for key, value in pairs:
            self._insert_now(key, value)

    def garbage_collect(self, key) -> None:
        """Reclaim the slots of a deleted key on all its chain switches."""
        if self.hotkey_manager is not None:
            self.hotkey_manager.forget_key(key)
        info = self.chain_for_key(key)
        raw_key = normalize_key(key)
        for name in info.switches:
            self.stores[name].remove_key(raw_key)
        self.keys_by_vgroup.get(info.vgroup, set()).discard(raw_key)

    def total_items(self) -> int:
        """Number of keys registered across all groups."""
        return sum(len(keys) for keys in self.keys_by_vgroup.values())

    # ------------------------------------------------------------------ #
    # Shared reconfiguration primitives.
    #
    # Failure recovery (Algorithm 3) and planned migration
    # (:mod:`repro.core.reconfig`) are the same two-phase protocol applied
    # to different membership changes; these primitives are the common
    # machinery: state-copy timing, the copy itself, the head-session bump
    # that orders a new head's writes after everything the old head issued,
    # and the atomic chain-table/ring commit.
    # ------------------------------------------------------------------ #

    def sync_duration(self, num_items: int) -> float:
        """Simulated time to synchronize ``num_items`` items of one group."""
        return num_items / self.config.sync_items_per_sec + self.config.per_group_overhead

    def copy_group_state(self, ref_name: str, dest_names: Sequence[str],
                         keys: Sequence[bytes]) -> int:
        """Copy a group's items from a reference switch to destinations.

        Destinations that already hold a key are overwritten with the
        reference state: during a freeze the reference holds the committed
        truth, and squashing a never-acknowledged partial write on an
        overlapping member is what keeps Invariant 1 across the commit.
        Returns the number of items copied per destination.
        """
        items = self.stores[ref_name].export_items(keys)
        for dest in dest_names:
            if dest == ref_name:
                continue
            self.stores[dest].import_items(items)
        return len(items)

    def bump_group_session(self, vgroup: int, new_head: str,
                           floor: int = 0) -> int:
        """Advance a group's head session and install it on the new head.

        ``floor`` lets a migration that re-homes keys from another group
        start above that group's session as well.  Returns the new session.
        """
        self.sessions[vgroup] = max(self.sessions.get(vgroup, 0), floor) + 1
        session = self.sessions[vgroup]
        self.programs[new_head].set_head_session(vgroup, session)
        return session

    def bump_group_epoch(self, vgroup: int) -> int:
        """Advance a group's chain epoch and install it on every program.

        Installation is a control-plane broadcast: any switch that sees a
        query stamped with an older epoch for this group drops it, so
        stragglers addressed under the superseded chain cannot apply or
        answer anywhere.
        """
        self.epochs[vgroup] = self.epochs.get(vgroup, 0) + 1
        epoch = self.epochs[vgroup]
        for program in self.programs.values():
            program.set_vgroup_epoch(vgroup, epoch)
        # Epoch bumps accompany every chain-layout change (including the
        # reconfiguration coordinator's direct chain_table swaps), so they
        # also invalidate the route cache.
        self._chain_version += 1
        return epoch

    def commit_chain(self, vgroup: int, chain: Sequence[str],
                     moved_from: Optional[str] = None) -> None:
        """Atomically swap one group's serving chain in the directory.

        When ``moved_from`` owned the group's virtual node (it failed or is
        leaving), the vnode is reassigned to the new head so ring-derived
        lookups agree with the chain table.
        """
        self.chain_table[vgroup] = ChainInfo(vgroup, list(chain))
        self._chain_version += 1
        vnode = self.ring.vnodes.get(vgroup)
        if moved_from is not None and vnode is not None and vnode.switch == moved_from:
            self.ring.reassign_vnode(vgroup, chain[0])

    # ------------------------------------------------------------------ #
    # Elastic membership (hot-plug support for planned reconfiguration).
    # ------------------------------------------------------------------ #

    def provision_switch(self, name: str) -> None:
        """Prepare a topology switch to store NetChain data: install the
        program and an empty store, add it to the probed membership.

        The switch serves no virtual group yet -- it joins chains only when
        a :class:`repro.core.reconfig.MigrationCoordinator` commits groups
        onto it (or failure recovery picks it as a replacement).
        """
        if name in self.members:
            raise ValueError(f"{name!r} is already a member switch")
        switch = self.topology.switches[name]
        store_config = KVStoreConfig(slots=self.config.store_slots,
                                     allow_recirculation=self.config.allow_recirculation)
        program = self.programs.get(name)
        if program is None or program.kvstore is None:
            store = SwitchKVStore(switch, config=store_config)
            program = NetChainSwitchProgram(switch, kvstore=store)
            self.stores[name] = store
            self.programs[name] = program
            switch.install_program(program)
        # A late joiner must know every group's current epoch, or it would
        # accept stragglers that the rest of the fabric already rejects.
        for vgroup, epoch in self.epochs.items():
            if epoch:
                program.set_vgroup_epoch(vgroup, epoch)
        self.members.append(name)
        self._log(f"provisioned {name} as a member switch")
        self._emit("provisioned", switch=name)

    def decommission_switch(self, name: str) -> None:
        """Retire a member switch after migration drained it: it stops being
        probed and chosen for recoveries but keeps forwarding as a plain
        transit switch."""
        if name in self.members:
            self.members.remove(name)
        self._log(f"decommissioned {name}")
        self._emit("decommissioned", switch=name)

    # ------------------------------------------------------------------ #
    # Fast failover (Algorithm 2).
    # ------------------------------------------------------------------ #

    def neighbor_switches(self, name: str) -> List[Switch]:
        """Physical switch neighbours of a switch (hosts cannot hold rules)."""
        node = self.topology.switches[name]
        return [n for n in node.neighbors() if isinstance(n, Switch)]

    def handle_switch_failure(self, failed: str,
                              new_switch: Optional[str] = None,
                              recover: bool = True,
                              recovery_start_delay: float = 0.0) -> None:
        """Full failure handling: detection delay, fast failover, then
        (optionally) failure recovery after ``recovery_start_delay``."""
        def react() -> None:
            self.fast_failover(failed)
            if recover:
                self.sim.schedule(recovery_start_delay,
                                  lambda: self.failure_recovery(failed, new_switch))

        self.sim.schedule(self.config.failure_detection_delay, react)

    def fast_failover(self, failed: str) -> None:
        """Remove ``failed`` from all its chains by updating only its
        neighbour switches (Algorithm 2)."""
        if failed in self.failed_switches:
            return
        self.failed_switches.add(failed)
        if self.hotkey_manager is not None:
            # Hot routes through the failed switch must die with it:
            # rotated reads would otherwise keep retrying into it until
            # the manager's next poll.
            self.hotkey_manager.on_switch_failed(failed)
        failed_ip = self.switch_ip(failed)
        self._log(f"fast failover: {failed} ({failed_ip})")
        self._emit("fast_failover", switch=failed)
        # The underlay's fast rerouting steers traffic around the failed
        # device; NetChain relies on it for reachability (Section 4.2).
        reroute_around_failures(self.topology, self.failed_switches)
        delay = self.config.rule_install_latency
        for neighbor in self.neighbor_switches(failed):
            program = self.programs.get(neighbor.name)
            if program is None:
                continue
            rule = RedirectRule(match_dst_ip=failed_ip, kind="failover", priority=10)
            self.sim.schedule(delay, lambda p=program, r=rule: p.add_rule(r))
        # Promote the next chain node to head for every group the failed
        # switch headed: bump the session number it will use (Section 5.2).
        for vgroup, info in self.chain_table.items():
            if failed in info.switches and info.switches[0] == failed and len(info.switches) > 1:
                new_head = info.switches[1]
                if new_head in self.failed_switches:
                    continue
                self.sessions[vgroup] += 1
                session = self.sessions[vgroup]
                program = self.programs[new_head]
                self.sim.schedule(delay, lambda p=program, g=vgroup, s=session:
                                  p.set_head_session(g, s))

    # ------------------------------------------------------------------ #
    # Failure recovery (Algorithm 3).
    # ------------------------------------------------------------------ #

    def affected_vgroups(self, failed: str) -> List[int]:
        """Virtual groups whose chain contains the failed switch."""
        return sorted(vgroup for vgroup, info in self.chain_table.items()
                      if failed in info.switches)

    def failure_recovery(self, failed: str, new_switch: Optional[str] = None) -> RecoveryReport:
        """Restore every chain that lost ``failed`` back to ``f+1`` switches.

        Groups are recovered strictly one at a time; while a group is being
        recovered its write queries (and, for a failed tail, also its read
        queries) are dropped by the neighbours' stop rules.  The returned
        report is filled in as the (simulated-time) recovery progresses.
        """
        if failed in self.recovering:
            # A second recovery request for a switch already being recovered
            # (e.g. a re-firing failure detector): report it as a no-op.
            self._log(f"failure recovery of {failed} already in progress")
            report = RecoveryReport(failed_switch=failed, started_at=self.sim.now,
                                    finished_at=self.sim.now)
            return report
        report = RecoveryReport(failed_switch=failed, started_at=self.sim.now)
        self.recovery_reports.append(report)
        self.recovering.add(failed)
        groups = self.affected_vgroups(failed)
        self._log(f"failure recovery of {failed}: {len(groups)} virtual groups")
        self._emit("recovery_start", switch=failed, groups=len(groups))
        if not self._live_switches(failed):
            self.recovering.discard(failed)
            raise RuntimeError("no live switches available for recovery")

        def recover_next(index: int) -> None:
            if index >= len(groups):
                report.finished_at = self.sim.now
                self.recovering.discard(failed)
                self._log(f"failure recovery of {failed} complete")
                self._emit("recovery_complete", switch=failed,
                           recovered=report.groups_recovered,
                           shrunk=report.groups_shrunk,
                           skipped=report.groups_skipped,
                           items=report.items_copied)
                return
            # Re-derive liveness per group: further switches may have failed
            # while earlier groups were being synchronized.
            live = self._live_switches(failed)
            if not live:
                report.aborted = True
                report.finished_at = self.sim.now
                self.recovering.discard(failed)
                self._log(f"failure recovery of {failed} aborted: no live switches")
                self._emit("recovery_aborted", switch=failed)
                return
            vgroup = groups[index]
            self._recover_group(failed, vgroup, new_switch, live, report,
                                on_done=lambda: recover_next(index + 1))

        recover_next(0)
        return report

    def _live_switches(self, failed: str) -> List[str]:
        return [s for s in self.members if s not in self.failed_switches and s != failed]

    def _choose_replacement(self, chain: List[str], preferred: Optional[str],
                            live: List[str]) -> Optional[str]:
        """A live switch not already on the chain, or ``None`` when the
        membership is too small for a disjoint replacement (the chain is
        then shrunk to its live members instead of splicing a duplicate)."""
        if (preferred is not None and preferred not in chain
                and preferred in live):
            return preferred
        candidates = [s for s in live if s not in chain]
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def _recover_group(self, failed: str, vgroup: int, preferred: Optional[str],
                       live: List[str], report: RecoveryReport,
                       on_done: Callable[[], None]) -> None:
        info = self.chain_table[vgroup]
        if failed not in info.switches:
            on_done()
            return
        chain = list(info.switches)
        idx = chain.index(failed)
        is_tail = idx == len(chain) - 1
        is_head = idx == 0
        failed_ip = self.switch_ip(failed)
        live_chain = [s for s in chain if s != failed and s not in self.failed_switches]
        if not live_chain:
            # No live replica holds this group's state; nothing to copy
            # from.  Leave the group to a later recovery (e.g. after a
            # reintroduction) instead of wedging the whole run.
            report.groups_skipped += 1
            self._log(f"vgroup {vgroup}: no live replica, skipped")
            on_done()
            return
        new_name = self._choose_replacement(chain, preferred, live)
        if new_name is None:
            self._shrink_group(failed, vgroup, chain, live_chain, report, on_done)
            return
        keys = sorted(self.keys_by_vgroup.get(vgroup, set()))
        sync_time = self.sync_duration(len(keys))
        presync_time = sync_time * self.config.presync_fraction
        stop_time = sync_time - presync_time
        neighbors = [self.programs[s.name] for s in self.neighbor_switches(failed)
                     if s.name in self.programs]
        rule_delay = self.config.rule_install_latency
        stop_rules: List[Tuple[NetChainSwitchProgram, RedirectRule]] = []

        def cleanup_and_skip() -> None:
            for program, rule in stop_rules:
                program.remove_rule(rule)
            report.groups_skipped += 1
            on_done()

        def step1_presync() -> None:
            # Step 1: pre-synchronization; availability unaffected.
            self.sim.schedule(presync_time, step2_phase1)

        def step2_phase1() -> None:
            # Phase 1: stop queries for this group at the failed switch's
            # neighbours, then finish synchronizing.  Write queries stop for
            # head/middle recovery; reads stop too when the tail failed.
            for program in neighbors:
                rule = RedirectRule(match_dst_ip=failed_ip, kind="drop", priority=30,
                                    vgroups={vgroup}, write_only=not is_tail)
                stop_rules.append((program, rule))
                self.sim.schedule(rule_delay, lambda p=program, r=rule: p.add_rule(r))
            self.sim.schedule(rule_delay + stop_time, do_state_copy)

        def do_state_copy() -> None:
            # Re-validate against failures that happened during the stop
            # window: both the reference switch and the chosen replacement
            # may have failed since this group's recovery started.
            nonlocal new_name
            current_live = [s for s in chain if s != failed
                            and s not in self.failed_switches]
            if not current_live:
                self._log(f"vgroup {vgroup}: reference switches lost mid-recovery")
                cleanup_and_skip()
                return
            if not is_tail:
                following = [s for s in chain[idx + 1:] if s in current_live]
                ref_name = following[0] if following else current_live[-1]
            else:
                ref_name = current_live[-1]
            if new_name in self.failed_switches:
                fresh_live = self._live_switches(failed)
                new_name = self._choose_replacement(chain, None, fresh_live)
                if new_name is None:
                    self._log(f"vgroup {vgroup}: replacement lost mid-recovery, "
                              f"shrinking chain")
                    for program, rule in stop_rules:
                        program.remove_rule(rule)
                    self._shrink_group(failed, vgroup, chain, current_live,
                                       report, on_done)
                    return
                self._log(f"vgroup {vgroup}: replacement re-chosen -> {new_name}")
            # Copy the group's items from the reference switch to the new one.
            report.items_copied += self.copy_group_state(ref_name, [new_name], keys)
            step2_phase2()

        def step2_phase2() -> None:
            # Phase 2: activation.  The new switch starts processing and the
            # neighbours forward this group's queries to it, with a higher
            # priority than the fast-failover rule.
            new_ip = self.switch_ip(new_name)
            if is_head:
                self.bump_group_session(vgroup, new_name)
            for program in neighbors:
                rule = RedirectRule(match_dst_ip=failed_ip, kind="forward", priority=20,
                                    new_dst_ip=new_ip, vgroups={vgroup})
                self.sim.schedule(rule_delay, lambda p=program, r=rule: p.add_rule(r))
            # Remove the stop rules once the forward rules are in.
            def finish() -> None:
                for program, rule in stop_rules:
                    program.remove_rule(rule)
                new_chain = list(chain)
                new_chain[idx] = new_name
                # Commit-point re-check: the replacement may have failed in
                # the activation window.  Never commit a chain that routes
                # through a known-failed switch -- fall back to the live
                # members, which hold the state.
                live_now = [s for s in new_chain if s not in self.failed_switches]
                if len(live_now) < len(new_chain):
                    if not live_now:
                        report.groups_skipped += 1
                        self._log(f"vgroup {vgroup}: all members lost at "
                                  f"activation, skipped")
                        on_done()
                        return
                    self.commit_chain(vgroup, live_now, moved_from=failed)
                    report.groups_shrunk += 1
                    self._log(f"vgroup {vgroup}: replacement {new_name} lost "
                              f"at activation, chain -> {live_now}")
                    on_done()
                    return
                self.commit_chain(vgroup, new_chain, moved_from=failed)
                report.groups_recovered += 1
                report.replacements[vgroup] = new_name
                self._log(f"recovered vgroup {vgroup}: {failed} -> {new_name}")
                self._emit("group_recovered", vgroup=vgroup,
                           replacement=new_name)
                on_done()

            self.sim.schedule(2 * rule_delay, finish)

        step1_presync()

    def _shrink_group(self, failed: str, vgroup: int, chain: List[str],
                      live_chain: List[str], report: RecoveryReport,
                      on_done: Callable[[], None]) -> None:
        """Restore a group by shrinking its chain to the live members.

        Used when the membership has no disjoint replacement switch left:
        the live members already hold the state (fast failover kept them
        serving), so the controller simply rewrites the chain table to the
        ``f``-node chain after one rule-install latency.  The group runs
        with one fewer replica until a reintroduced switch allows a future
        recovery to restore ``f+1``.
        """
        def finish() -> None:
            if chain[0] == failed:
                # The failed switch headed this group: make sure the new
                # head's session orders after everything it issued (a
                # prior fast failover normally already did this; bumping
                # again is harmless because versions only need to grow).
                self.bump_group_session(vgroup, live_chain[0])
            self.commit_chain(vgroup, live_chain, moved_from=failed)
            report.groups_shrunk += 1
            self._log(f"shrunk vgroup {vgroup}: {failed} removed, "
                      f"chain -> {live_chain}")
            self._emit("group_shrunk", vgroup=vgroup)
            on_done()

        self.sim.schedule(self.config.rule_install_latency, finish)

    # ------------------------------------------------------------------ #
    # Planned reconfigurations (Section 5, last paragraph).
    # ------------------------------------------------------------------ #

    def remove_switch(self, name: str) -> None:
        """Planned removal (e.g. firmware upgrade): handled like failover."""
        self.fast_failover(name)

    def reintroduce_switch(self, name: str) -> None:
        """Bring a previously failed/removed switch back as an empty member.

        Its old chains keep their recovered membership; the switch becomes a
        candidate replacement for future recoveries.
        """
        self.failed_switches.discard(name)
        self.topology.switches[name].recover_device()
        program = self.programs.get(name)
        if program is not None:
            program.active = True
        reroute_around_failures(self.topology, self.failed_switches)
