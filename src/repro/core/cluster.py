"""One-call assembly of a NetChain deployment on the simulated testbed.

Most examples, tests and experiments need the same setup: build the
Figure 8 testbed, install the NetChain program on the switches, start the
controller, and attach one client agent per host.  :class:`NetChainCluster`
bundles that, with the scale model applied to all device capacities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.agent import AgentConfig, NetChainAgent
from repro.core.controller import ControllerConfig, NetChainController
from repro.core.detector import DetectorConfig, FailureDetector
from repro.netsim.engine import Simulator
from repro.netsim.faults import FaultInjector, FaultSchedule
from repro.netsim.link import LinkConfig
from repro.netsim.topology import Topology
from repro.perfmodel.devices import scaled_testbed


@dataclass
class ClusterConfig:
    """Deployment parameters for a simulated NetChain cluster.

    Invalid parameter combinations raise :class:`ValueError` at
    construction time, so a bad config fails where it was written instead
    of deep inside chain building or the simulation.
    """

    #: Scale factor applied to all device capacities (see DESIGN.md).
    scale: float = 1000.0
    #: Number of client/server machines attached to the testbed.
    num_hosts: int = 4
    #: Chain length (f+1).
    replication: int = 3
    #: Virtual nodes (groups) per switch.
    vnodes_per_switch: int = 10
    #: Key slots per switch.
    store_slots: int = 65536
    #: Client retry timeout.
    retry_timeout: float = 500e-6
    #: Client retry budget.
    max_retries: int = 20
    #: Random seed.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.num_hosts < 1:
            raise ValueError(f"num_hosts must be at least 1, got {self.num_hosts}")
        if self.replication < 1:
            raise ValueError(
                f"replication (chain length) must be at least 1, got {self.replication}")
        if self.vnodes_per_switch < 1:
            raise ValueError(
                f"vnodes_per_switch must be at least 1, got {self.vnodes_per_switch}")
        if self.store_slots < 1:
            raise ValueError(f"store_slots must be at least 1, got {self.store_slots}")
        if self.retry_timeout <= 0:
            raise ValueError(
                f"retry_timeout must be positive, got {self.retry_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")


class NetChainCluster:
    """A ready-to-use NetChain deployment on the 4-switch testbed."""

    def __init__(self, config: Optional[ClusterConfig] = None,
                 topology: Optional[Topology] = None,
                 member_switches: Optional[List[str]] = None,
                 controller_config: Optional[ControllerConfig] = None) -> None:
        self.config = config or ClusterConfig()
        cfg = self.config
        if topology is None:
            topology = scaled_testbed(scale=cfg.scale, num_hosts=cfg.num_hosts,
                                      seed=cfg.seed)
        self.topology = topology
        if controller_config is None:
            controller_config = ControllerConfig(
                replication=cfg.replication,
                vnodes_per_switch=cfg.vnodes_per_switch,
                store_slots=cfg.store_slots,
                seed=cfg.seed,
            )
        members = member_switches if member_switches is not None \
            else sorted(topology.switches)
        if controller_config.replication > len(members):
            raise ValueError(
                f"replication (chain length) {controller_config.replication} exceeds "
                f"the {len(members)} member switches {sorted(members)}; shrink the "
                f"chain or add switches")
        self.controller = NetChainController(topology, member_switches=member_switches,
                                             config=controller_config)
        # One shared config for every agent: it is read-only to the agents
        # (each allocates its own UDP port because ``udp_port`` stays None).
        agent_config = AgentConfig(retry_timeout=cfg.retry_timeout,
                                   max_retries=cfg.max_retries)
        self.agents: Dict[str, NetChainAgent] = {}
        for name, host in topology.hosts.items():
            self.agents[name] = NetChainAgent(host, self.controller, config=agent_config)
        self._fault_injector: Optional[FaultInjector] = None
        self.detector: Optional[FailureDetector] = None

    # ------------------------------------------------------------------ #
    # Convenience accessors.
    # ------------------------------------------------------------------ #

    @property
    def sim(self) -> Simulator:
        """The underlying simulator."""
        return self.topology.sim

    def agent(self, host_name: str = "H0") -> NetChainAgent:
        """The agent on a given host (defaults to H0)."""
        return self.agents[host_name]

    def agent_list(self) -> List[NetChainAgent]:
        """All agents, in host-name order."""
        return [self.agents[name] for name in sorted(self.agents)]

    def session(self, host_name: str = "H0", window: int = 16):
        """A :class:`repro.core.client.KVSession` over the host's agent."""
        return self.agents[host_name].session(window=window)

    def populate(self, num_keys: int, value_size: int = 64,
                 key_prefix: str = "k") -> List[str]:
        """Pre-install ``num_keys`` keys with ``value_size``-byte values.

        Mirrors the evaluation's "store size" parameter (Section 8.1).
        Returns the key names.
        """
        from repro.workloads.generators import standard_key_names
        keys = standard_key_names(num_keys, key_prefix)
        value = bytes(value_size)
        self.controller.populate(keys, default_value=value)
        return keys

    def run(self, until: float) -> None:
        """Advance the simulation to absolute time ``until``."""
        self.sim.run(until=until)

    def total_completed(self) -> int:
        """Queries completed across all agents."""
        return sum(agent.completed for agent in self.agents.values())

    def faults(self, seed: Optional[int] = None) -> FaultInjector:
        """The cluster's fault injector (created on first use).

        The default seed is the cluster seed, so a whole scenario replays
        from the single :class:`ClusterConfig.seed` knob.  Asking for a
        different seed once the injector exists is an error -- its RNG
        streams are already derived, so the request could not be honored.
        """
        if self._fault_injector is None:
            self._fault_injector = FaultInjector(
                self.topology, seed=self.config.seed if seed is None else seed)
        elif seed is not None and seed != self._fault_injector.seed:
            raise ValueError(
                f"fault injector already created with seed "
                f"{self._fault_injector.seed}; cannot reseed to {seed}")
        return self._fault_injector

    # ------------------------------------------------------------------ #
    # Elastic reconfiguration (hot-plug + live migration).
    # ------------------------------------------------------------------ #

    def add_switch(self, name: str, link_to: Optional[List[str]] = None,
                   switch_config=None):
        """Hot-plug a switch into the running cluster.

        The device comes up with the cluster's scaled capacity, links to
        ``link_to`` (default: the first and last current member, which
        extends the testbed ring), gets underlay routes, and is provisioned
        with the NetChain program and an empty store.  It serves no keys
        until a migration (or failure recovery) commits groups onto it.
        """
        from repro.netsim.routing import reroute_around_failures
        from repro.perfmodel.devices import scaled_switch_config

        members = self.controller.members
        if link_to is None:
            link_to = [members[-1], members[0]] if len(members) > 1 else members[:1]
        if switch_config is None:
            switch_config = scaled_switch_config(self.config.scale)
        switch = self.topology.attach_switch(name, link_to,
                                             switch_config=switch_config,
                                             link_config=LinkConfig())
        reroute_around_failures(self.topology, self.controller.failed_switches)
        self.controller.provision_switch(name)
        return switch

    def migrate(self, target_members: List[str], config=None):
        """Plan and start a live migration to ``target_members``.

        Returns the running :class:`repro.core.reconfig.MigrationCoordinator`;
        advance the simulation until ``coordinator.done`` and inspect
        ``coordinator.report``.
        """
        from repro.core.reconfig import migrate
        return migrate(self.controller, target_members, config=config)

    def fault_schedule(self, seed: Optional[int] = None,
                       poll_interval: float = 1e-3) -> FaultSchedule:
        """A new :class:`FaultSchedule` over the cluster's injector."""
        return FaultSchedule(self.faults(seed), poll_interval=poll_interval)

    def enable_hotkey_tier(self, config=None):
        """Turn on the adaptive hot-key tier (:mod:`repro.core.hotkeys`).

        Installs a detection sketch on every member switch, starts the
        :class:`~repro.core.hotkeys.HotKeyManager` policy loop, and (unless
        disabled in the config) attaches an epoch-validated read cache to
        every host agent.  ``config`` may be a
        :class:`~repro.core.hotkeys.HotKeyTierConfig` or an options dict.
        Returns the manager; ``manager.stop()`` reverts everything.
        """
        from repro.core.hotkeys import enable_hotkey_tier
        return enable_hotkey_tier(self, config)

    def start_failure_detector(self, config: Optional[DetectorConfig] = None
                               ) -> FailureDetector:
        """Start the control-plane failure detector (idempotent per cluster).

        With a detector running, injected faults (fail-stop, gray failure,
        partitions that cut a switch off) trigger failover and recovery by
        themselves -- no test or experiment calls the controller directly.
        Passing a config when a detector already runs replaces it (the old
        one is stopped); passing none reuses the existing detector.
        """
        if self.detector is not None and config is not None:
            self.detector.stop()
            self.detector = None
        if self.detector is None:
            self.detector = FailureDetector(self.controller, config=config)
        self.detector.start()
        return self.detector

    def fail_switch(self, name: str, at: float, new_switch: Optional[str] = None,
                    recover: bool = True, detection_delay: float = 1.0,
                    recovery_start_delay: float = 20.0) -> None:
        """Schedule a fail-stop switch failure and the controller's reaction.

        The defaults mirror the Figure 10 methodology: a one-second delay is
        injected before failover to make the throughput drop visible, and
        recovery starts 20 seconds later to separate the two phases.
        """
        controller = self.controller

        def inject() -> None:
            self.topology.switches[name].fail()
            original = controller.config.failure_detection_delay
            controller.config.failure_detection_delay = detection_delay
            controller.handle_switch_failure(name, new_switch=new_switch, recover=recover,
                                             recovery_start_delay=recovery_start_delay)
            controller.config.failure_detection_delay = original

        self.sim.schedule_at(at, inject)
