"""Out-of-core operation histories: NDJSON spill, indexes, streaming checks.

:mod:`repro.core.history` buffers every invocation in memory and checks
linearizability post-hoc, which caps verified runs at what one process can
hold.  This module removes that cap without weakening the check:

* **NDJSON as the source of truth** -- :class:`HistoryWriter` appends one
  JSON record per completed operation to ``<run_dir>/ops.ndjson``
  (versioned schema ``history/v1``), flushed incrementally, so a run of
  any size spills with bounded memory.
* **Disposable per-key offset indexes** -- the writer derives
  ``index.bin`` (packed little-endian ``uint64`` byte offsets, mmapped by
  readers) plus ``index.json`` (per-key slice table and content hashes)
  during the run.  The index owns no data: delete it and
  :func:`rebuild_index` regenerates it from the NDJSON alone.
* **Streaming verification** -- :func:`check_linearizable_streaming`
  drives the existing Wing & Gong per-key checker
  (:func:`repro.core.history.check_key_linearizable`) over per-key
  streams, fanning keys out to a ``multiprocessing`` worker pool as each
  key's stream is read, so memory is bounded by the largest single key
  stream plus the dispatch window -- never the whole run.
* **Verdict memoization** -- per-key verdicts are cached by a digest of
  (key-stream content hash, initial value, state budget, checker
  version), so re-running a scenario matrix re-checks only key streams
  that actually changed.

Recording at scale uses :class:`SpillingHistory`, a drop-in recording
surface for :class:`repro.core.history.History`: completed operations are
appended to the run directory and released from memory immediately; only
in-flight operations stay resident.

A spilled run re-checks offline::

    PYTHONPATH=src python -m repro.core.history_store check <run_dir>
    PYTHONPATH=src python -m repro.core.history_store index <run_dir>  # rebuild
    PYTHONPATH=src python -m repro.core.history_store info <run_dir>

Record schema (``history/v1``): one JSON object per line, first line is
the header ``{"schema": "history/v1", ...}``.  Fields -- ``id``,
``client``, ``op``, ``key``, ``inv`` (invocation time) always; ``ret``
(return time) and ``ok`` when the operation completed; ``value``,
``expected``, ``out`` when present; ``nf``/``cf``/``to`` (not-found /
cas-failed / timed-out) when true; ``r`` (retries) when non-zero; ``ver``
(version pair) when the backend reported one.  Bytes fields are plain
ASCII when printable, else ``"hex:<digits>"``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import mmap
import multiprocessing
import struct
import sys
from array import array
from collections import deque
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.core.client import canonical_key
from repro.core.history import (
    MISSING,
    HistoryOp,
    KeyReport,
    LinearizabilityReport,
    check_key_linearizable,
    version_violations_of,
)

SCHEMA = "history/v1"
INDEX_SCHEMA = "history-index/v1"

OPS_FILE = "ops.ndjson"
INDEX_BIN = "index.bin"
INDEX_JSON = "index.json"

#: Bumped whenever checker semantics change; part of every verdict digest,
#: so a semantic change invalidates memoized verdicts wholesale.
CHECKER_VERSION = 1

#: Marker distinguishing "key starts missing" from "key starts empty" in
#: verdict digests (``b""`` is a legitimate initial value).
_MISSING_MARK = "<missing>"


class TruncatedHistoryError(ValueError):
    """An NDJSON history file ends (or breaks) mid-record.

    ``offset`` is the byte offset of the first unreadable record -- the
    intact prefix ends there, and :func:`rebuild_index` with
    ``allow_truncated=True`` recovers exactly that prefix.
    """

    def __init__(self, path: Path, offset: int, reason: str) -> None:
        self.path = Path(path)
        self.offset = offset
        self.reason = reason
        super().__init__(
            f"{self.path}: truncated history at byte offset {offset}: {reason}")


# --------------------------------------------------------------------- #
# Record encoding.
# --------------------------------------------------------------------- #

def encode_bytes(data: Optional[bytes]) -> Optional[str]:
    """JSON-safe spelling of a bytes field: plain ASCII when printable,
    ``hex:`` otherwise; ``None`` stays ``None``."""
    if data is None:
        return None
    if all(0x20 <= b < 0x7F for b in data) and not data.startswith(b"hex:"):
        return data.decode("ascii")
    return "hex:" + data.hex()


def decode_bytes(text: Optional[str]) -> Optional[bytes]:
    """Inverse of :func:`encode_bytes`."""
    if text is None:
        return None
    if text.startswith("hex:"):
        return bytes.fromhex(text[4:])
    return text.encode("ascii")


def op_to_record(op: HistoryOp) -> Dict[str, Any]:
    """One :class:`HistoryOp` as a ``history/v1`` record dict.

    Default-valued fields are omitted so lines stay small at million-op
    scale; :func:`record_to_op` restores the defaults.
    """
    record: Dict[str, Any] = {
        "id": op.op_id,
        "client": op.client,
        "op": op.op,
        "key": encode_bytes(op.key),
        "inv": op.invoked_at,
    }
    if op.value is not None:
        record["value"] = encode_bytes(op.value)
    if op.expected is not None:
        record["expected"] = encode_bytes(op.expected)
    if op.returned_at is not None:
        record["ret"] = op.returned_at
    if op.ok is not None:
        record["ok"] = op.ok
    if op.output is not None:
        record["out"] = encode_bytes(op.output)
    if op.not_found:
        record["nf"] = True
    if op.cas_failed:
        record["cf"] = True
    if op.timed_out:
        record["to"] = True
    if op.retries:
        record["r"] = op.retries
    if op.version is not None:
        record["ver"] = list(op.version)
    return record


def record_to_op(record: Dict[str, Any]) -> HistoryOp:
    """Load one record dict back into a :class:`HistoryOp`.

    Keys are canonicalized on load, so a fixture written with the padded
    wire spelling lands in the same per-key stream as the live recording.
    """
    version = record.get("ver")
    return HistoryOp(
        op_id=int(record["id"]),
        client=record["client"],
        op=record["op"],
        key=canonical_key(decode_bytes(record["key"])),
        value=decode_bytes(record.get("value")),
        expected=decode_bytes(record.get("expected")),
        invoked_at=float(record["inv"]),
        returned_at=(float(record["ret"]) if "ret" in record else None),
        ok=record.get("ok"),
        output=decode_bytes(record.get("out")),
        not_found=bool(record.get("nf", False)),
        cas_failed=bool(record.get("cf", False)),
        timed_out=bool(record.get("to", False)),
        retries=int(record.get("r", 0)),
        version=(tuple(version) if version is not None else None),
    )


def _record_line(record: Dict[str, Any]) -> bytes:
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")).encode("ascii") + b"\n"


# --------------------------------------------------------------------- #
# Writing.
# --------------------------------------------------------------------- #

class HistoryWriter:
    """Appends completed operations to a run directory as NDJSON.

    The per-key offset index and per-key content hashes are derived while
    writing -- no second pass over the data -- and persisted on
    :meth:`close` as ``index.bin`` + ``index.json``.
    """

    def __init__(self, run_dir, meta: Optional[Dict[str, Any]] = None,
                 flush_every: int = 4096) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.meta = dict(meta or {})
        self.flush_every = max(1, flush_every)
        self.ops_path = self.run_dir / OPS_FILE
        self._file = open(self.ops_path, "wb")
        header = {"schema": SCHEMA}
        if self.meta:
            header["meta"] = self.meta
        line = _record_line(header)
        self._file.write(line)
        self._offset = len(line)
        #: Per-key byte offsets; ``array('Q')`` keeps a million offsets at
        #: 8 bytes each instead of a Python int object apiece.
        self._offsets: Dict[bytes, array] = {}
        self._hashes: Dict[bytes, Any] = {}
        self.total_ops = 0
        self.completed_ops = 0
        self.closed = False

    def append(self, op: HistoryOp) -> None:
        """Append one operation record and index it."""
        if self.closed:
            raise RuntimeError("HistoryWriter already closed")
        key = canonical_key(op.key)
        op.key = key  # the spilled record carries the canonical spelling
        line = _record_line(op_to_record(op))
        offsets = self._offsets.get(key)
        if offsets is None:
            offsets = self._offsets[key] = array("Q")
            self._hashes[key] = hashlib.sha256()
        offsets.append(self._offset)
        self._hashes[key].update(line)
        self._file.write(line)
        self._offset += len(line)
        self.total_ops += 1
        if op.completed:
            self.completed_ops += 1
        if self.total_ops % self.flush_every == 0:
            self._file.flush()

    def close(self) -> None:
        """Flush the data file and persist the derived index."""
        if self.closed:
            return
        self.closed = True
        self._file.flush()
        self._file.close()
        _write_index(self.run_dir, self._offsets, self._hashes,
                     data_bytes=self._offset, total_ops=self.total_ops,
                     completed_ops=self.completed_ops, meta=self.meta)

    def __enter__(self) -> "HistoryWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _write_index(run_dir: Path, offsets: Dict[bytes, array],
                 hashes: Dict[bytes, Any], data_bytes: int, total_ops: int,
                 completed_ops: int, meta: Dict[str, Any]) -> None:
    """Persist ``index.bin`` + ``index.json`` (deterministic key order)."""
    ordered = sorted(offsets, key=encode_bytes)
    table: Dict[str, Any] = {}
    start = 0
    with open(run_dir / INDEX_BIN, "wb") as bin_file:
        for key in ordered:
            arr = offsets[key]
            if sys.byteorder != "little":
                arr = array("Q", arr)
                arr.byteswap()
            bin_file.write(arr.tobytes())
            digest = hashes[key]
            table[encode_bytes(key)] = {
                "start": start,
                "count": len(offsets[key]),
                "sha256": digest.hexdigest() if hasattr(digest, "hexdigest")
                else digest,
            }
            start += len(offsets[key])
    index = {
        "schema": INDEX_SCHEMA,
        "data_bytes": data_bytes,
        "total_ops": total_ops,
        "completed_ops": completed_ops,
        "meta": meta,
        "keys": table,
    }
    (run_dir / INDEX_JSON).write_text(
        json.dumps(index, sort_keys=True, indent=1) + "\n", encoding="utf-8")


# --------------------------------------------------------------------- #
# Reading.
# --------------------------------------------------------------------- #

def _scan_records(path: Path, limit: Optional[int] = None
                  ) -> Iterator[Tuple[int, bytes, Dict[str, Any]]]:
    """Sequentially yield ``(offset, line, record)`` for every record line.

    The header line is validated and skipped.  A line that does not end in
    a newline (the file was cut mid-record) or does not parse raises
    :class:`TruncatedHistoryError` naming the byte offset where the intact
    prefix ends.  ``limit`` stops the scan at a byte offset -- the intact
    prefix recorded by an ``allow_truncated`` index rebuild.
    """
    with open(path, "rb") as handle:
        offset = 0
        first = True
        for line in handle:
            if limit is not None and offset >= limit:
                return
            if not line.endswith(b"\n"):
                raise TruncatedHistoryError(
                    path, offset, "file ends mid-record (no trailing newline)")
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise TruncatedHistoryError(
                    path, offset, f"unparseable record ({exc})") from None
            if first:
                first = False
                schema = record.get("schema") if isinstance(record, dict) else None
                if schema != SCHEMA:
                    raise ValueError(f"{path}: unsupported history schema "
                                     f"{schema!r} (expected {SCHEMA!r})")
                offset += len(line)
                continue
            yield offset, line, record
            offset += len(line)


class HistoryStore:
    """Read side of a spilled run: mmapped index, per-key record streams.

    The NDJSON file remains the source of truth; this object only follows
    the derived offsets, so per-key access never scans the whole run.
    """

    def __init__(self, run_dir) -> None:
        self.run_dir = Path(run_dir)
        self.ops_path = self.run_dir / OPS_FILE
        index_path = self.run_dir / INDEX_JSON
        if not index_path.exists():
            raise FileNotFoundError(
                f"{index_path} missing -- rebuild with rebuild_index() or "
                f"`python -m repro.core.history_store index {self.run_dir}`")
        index = json.loads(index_path.read_text(encoding="utf-8"))
        if index.get("schema") != INDEX_SCHEMA:
            raise ValueError(f"{index_path}: unsupported index schema "
                             f"{index.get('schema')!r}")
        self.meta: Dict[str, Any] = index.get("meta", {})
        self.total_ops: int = index["total_ops"]
        self.completed_ops: int = index.get("completed_ops", 0)
        self.data_bytes: int = index["data_bytes"]
        self._table: Dict[bytes, Dict[str, Any]] = {
            decode_bytes(name): entry for name, entry in index["keys"].items()}
        self._data = open(self.ops_path, "rb")
        bin_path = self.run_dir / INDEX_BIN
        self._bin_file = open(bin_path, "rb")
        size = bin_path.stat().st_size
        self._mmap = (mmap.mmap(self._bin_file.fileno(), 0,
                                access=mmap.ACCESS_READ) if size else None)

    # -- views ----------------------------------------------------------- #

    def keys(self) -> List[bytes]:
        """Canonical keys, in deterministic (encoded-name) order."""
        return sorted(self._table, key=encode_bytes)

    def key_count(self, key) -> int:
        entry = self._table.get(canonical_key(key))
        return entry["count"] if entry else 0

    def key_digest(self, key) -> Optional[str]:
        """Content hash (sha256 hex) of one key's record stream."""
        entry = self._table.get(canonical_key(key))
        return entry["sha256"] if entry else None

    def offsets_for_key(self, key) -> List[int]:
        """Byte offsets of one key's records, via the mmapped index."""
        entry = self._table.get(canonical_key(key))
        if entry is None or self._mmap is None:
            return []
        start, count = entry["start"], entry["count"]
        return list(struct.unpack_from(f"<{count}Q", self._mmap, start * 8))

    def ops_for_key(self, key) -> List[HistoryOp]:
        """One key's operations, in record (completion) order."""
        return [self._read_op(offset) for offset in self.offsets_for_key(key)]

    def _read_op(self, offset: int) -> HistoryOp:
        self._data.seek(offset)
        line = self._data.readline()
        if not line.endswith(b"\n"):
            raise TruncatedHistoryError(
                self.ops_path, offset, "record cut short (stale index?)")
        try:
            return record_to_op(json.loads(line))
        except (ValueError, KeyError) as exc:
            raise TruncatedHistoryError(
                self.ops_path, offset, f"unparseable record ({exc})") from None

    def iter_ops(self) -> Iterator[HistoryOp]:
        """Stream every indexed operation in file (completion) order.

        Bounded by the index's ``data_bytes``: after an ``allow_truncated``
        rebuild this iterates exactly the intact prefix.
        """
        for _offset, _line, record in _scan_records(self.ops_path,
                                                    limit=self.data_bytes):
            yield record_to_op(record)

    def per_key(self) -> Dict[bytes, List[HistoryOp]]:
        """Materialize every key's stream (small runs / tests only)."""
        return {key: self.ops_for_key(key) for key in self.keys()}

    def initial_values(self) -> Optional[Dict[bytes, Optional[bytes]]]:
        """The initial key values recorded in the run metadata, if any."""
        encoded = self.meta.get("initial")
        if encoded is None:
            return None
        return {canonical_key(decode_bytes(name)): decode_bytes(value)
                for name, value in encoded.items()}

    def version_violations(self) -> List[str]:
        return version_violations_of(self.iter_ops())

    def __len__(self) -> int:
        return self.total_ops

    def close(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        self._bin_file.close()
        self._data.close()

    def __enter__(self) -> "HistoryStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def rebuild_index(run_dir, allow_truncated: bool = False
                  ) -> Tuple[int, Optional[int]]:
    """Regenerate the index from ``ops.ndjson`` alone.

    Returns ``(total_ops, truncated_at)``.  A truncated or corrupt tail
    raises :class:`TruncatedHistoryError` unless ``allow_truncated`` is
    set, in which case the index covers the intact prefix and
    ``truncated_at`` is the byte offset where it ends.
    """
    run_dir = Path(run_dir)
    path = run_dir / OPS_FILE
    offsets: Dict[bytes, array] = {}
    hashes: Dict[bytes, Any] = {}
    meta: Dict[str, Any] = {}
    total = completed = 0
    end = 0
    truncated_at: Optional[int] = None
    with open(path, "rb") as handle:
        header = handle.readline()
    if header:
        try:
            meta = json.loads(header).get("meta", {})
        except ValueError:
            meta = {}
    try:
        for offset, line, record in _scan_records(path):
            op = record_to_op(record)
            key = op.key
            if key not in offsets:
                offsets[key] = array("Q")
                hashes[key] = hashlib.sha256()
            offsets[key].append(offset)
            hashes[key].update(line)
            total += 1
            if op.completed:
                completed += 1
            end = offset + len(line)
    except TruncatedHistoryError as exc:
        if not allow_truncated:
            raise
        truncated_at = exc.offset
        end = exc.offset
    _write_index(run_dir, offsets, hashes, data_bytes=end, total_ops=total,
                 completed_ops=completed, meta=meta)
    return total, truncated_at


# --------------------------------------------------------------------- #
# Bare NDJSON files (fixtures, exports): no run directory, no index.
# --------------------------------------------------------------------- #

def write_ndjson(path, ops: Iterable[HistoryOp],
                 meta: Optional[Dict[str, Any]] = None) -> None:
    """Write a standalone ``history/v1`` NDJSON file (no derived index)."""
    path = Path(path)
    header: Dict[str, Any] = {"schema": SCHEMA}
    if meta:
        header["meta"] = dict(meta)
    with open(path, "wb") as handle:
        handle.write(_record_line(header))
        for op in ops:
            op.key = canonical_key(op.key)
            handle.write(_record_line(op_to_record(op)))


def read_ndjson_meta(path) -> Dict[str, Any]:
    """The header metadata of a standalone NDJSON history file."""
    with open(path, "rb") as handle:
        header = json.loads(handle.readline())
    return header.get("meta", {})


def iter_ndjson(path) -> Iterator[HistoryOp]:
    """Stream the operations of a standalone NDJSON history file.

    Raises :class:`TruncatedHistoryError` (with the byte offset of the
    first unreadable record) on a cut or corrupt file.
    """
    for _offset, _line, record in _scan_records(Path(path)):
        yield record_to_op(record)


def load_ndjson(path) -> List[HistoryOp]:
    """Materialize a standalone NDJSON history file."""
    return list(iter_ndjson(path))


# --------------------------------------------------------------------- #
# Recording with spill.
# --------------------------------------------------------------------- #

class SpillingHistory:
    """A recording surface that spills completed operations to disk.

    Drop-in for :class:`repro.core.history.History` wherever only the
    recording protocol (``invoke``/``complete``) is used --
    :class:`repro.workloads.clients.LoadClient`,
    :class:`repro.core.history.RecordingClient`.  Completed operations are
    appended to the run directory and released immediately; only in-flight
    operations stay in memory, so peak residency is the concurrency, not
    the run length.  Call :meth:`finish` after the run: still-pending
    (ambiguous) operations are spilled too, in invocation order, and the
    derived index is written.
    """

    def __init__(self, sim, run_dir,
                 initial: Optional[Dict[bytes, Optional[bytes]]] = None,
                 meta: Optional[Dict[str, Any]] = None,
                 flush_every: int = 4096) -> None:
        self.sim = sim
        meta = dict(meta or {})
        if initial is not None:
            meta["initial"] = {
                encode_bytes(canonical_key(key)): encode_bytes(value)
                for key, value in initial.items()}
        self.writer = HistoryWriter(run_dir, meta=meta, flush_every=flush_every)
        self.run_dir = self.writer.run_dir
        self._pending: Dict[int, HistoryOp] = {}
        self._ids = 0
        self._store: Optional[HistoryStore] = None

    # -- recording (History-compatible) ---------------------------------- #

    def invoke(self, client: str, op: str, key, value=None, expected=None) -> HistoryOp:
        record = HistoryOp(op_id=self._ids, client=client, op=op,
                           key=canonical_key(key),
                           value=None if value is None else bytes(value),
                           expected=None if expected is None else bytes(expected),
                           invoked_at=self.sim.now)
        self._ids += 1
        self._pending[record.op_id] = record
        return record

    def complete(self, record: HistoryOp, result) -> None:
        record.returned_at = self.sim.now
        record.ok = bool(result.ok)
        record.not_found = bool(result.not_found)
        record.cas_failed = bool(result.cas_failed)
        record.timed_out = bool(result.timed_out)
        record.retries = int(getattr(result, "retries", 0) or 0)
        if record.op == "read" and result.ok:
            record.output = bytes(result.value)
        raw = result.raw
        if raw is not None and hasattr(raw, "session") and hasattr(raw, "seq"):
            record.version = (raw.session, raw.seq)
        elif raw is not None and hasattr(raw, "version") and result.ok:
            record.version = (0, raw.version)
        self.writer.append(record)
        self._pending.pop(record.op_id, None)

    def finish(self) -> HistoryStore:
        """Spill still-pending (ambiguous) ops, close, return the store."""
        if self._store is None:
            for op_id in sorted(self._pending):
                self.writer.append(self._pending[op_id])
            self._pending.clear()
            self.writer.close()
            self._store = HistoryStore(self.run_dir)
        return self._store

    @property
    def store(self) -> HistoryStore:
        return self.finish()

    # -- History-shaped views (post-finish) ------------------------------- #

    @property
    def pending(self) -> int:
        """Operations currently in flight (resident in memory)."""
        return len(self._pending)

    def __len__(self) -> int:
        return self._ids

    def per_key(self) -> Dict[bytes, List[HistoryOp]]:
        return self.finish().per_key()

    def iter_ops(self) -> Iterator[HistoryOp]:
        return self.finish().iter_ops()

    def version_violations(self) -> List[str]:
        return version_violations_of(self.finish().iter_ops())

    def check(self, initial: Optional[Dict[bytes, Optional[bytes]]] = None,
              state_budget: int = 500_000, workers: int = 0,
              cache: Optional["VerdictCache"] = None) -> LinearizabilityReport:
        return check_linearizable_streaming(self, initial=initial,
                                            state_budget=state_budget,
                                            workers=workers, cache=cache)


# --------------------------------------------------------------------- #
# Verdict memoization.
# --------------------------------------------------------------------- #

def _report_to_dict(report: KeyReport) -> Dict[str, Any]:
    return {"key": encode_bytes(report.key), "ok": report.ok,
            "ops": report.ops, "ambiguous_ops": report.ambiguous_ops,
            "states_explored": report.states_explored,
            "exhausted": report.exhausted, "message": report.message}


def _report_from_dict(data: Dict[str, Any]) -> KeyReport:
    return KeyReport(key=decode_bytes(data["key"]), ok=data["ok"],
                     ops=data["ops"], ambiguous_ops=data["ambiguous_ops"],
                     states_explored=data["states_explored"],
                     exhausted=data["exhausted"], message=data["message"])


class VerdictCache:
    """Memoized per-key verdicts, keyed by key-stream content digest.

    The digest covers the key's record bytes, the initial value, the state
    budget and the checker version -- everything the verdict depends on --
    so a hit is exactly "this key stream was already decided".  One cache
    instance can serve a whole seed x backend x fault matrix; pass ``path``
    to persist hits across processes/runs.
    """

    def __init__(self, path=None) -> None:
        self.path = Path(path) if path is not None else None
        self._entries: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        if self.path is not None and self.path.exists():
            self._entries = json.loads(self.path.read_text(encoding="utf-8"))

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> Optional[KeyReport]:
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return _report_from_dict(entry)

    def put(self, digest: str, report: KeyReport) -> None:
        self._entries[digest] = _report_to_dict(report)

    def save(self) -> None:
        if self.path is None:
            raise ValueError("VerdictCache was created without a path")
        self.path.write_text(
            json.dumps(self._entries, sort_keys=True) + "\n", encoding="utf-8")

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


#: Process-wide default cache: scenario matrices share it so a repeated
#: (seed, backend, fault schedule) combination skips re-checking.
_DEFAULT_CACHE = VerdictCache()


def default_verdict_cache() -> VerdictCache:
    return _DEFAULT_CACHE


def verdict_digest(stream_sha256: str, initial: Optional[bytes],
                   state_budget: int) -> str:
    """The memoization key for one (key stream, initial, budget) verdict."""
    parts = "|".join([
        stream_sha256,
        _MISSING_MARK if initial is MISSING else encode_bytes(initial),
        str(state_budget),
        f"checker-v{CHECKER_VERSION}",
    ])
    return hashlib.sha256(parts.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# The streaming checker.
# --------------------------------------------------------------------- #

def _check_key_task(args) -> Tuple[bytes, KeyReport]:
    """Worker-pool unit: one key's stream through the Wing & Gong search."""
    key, ops, initial, state_budget = args
    return key, check_key_linearizable(ops, initial, state_budget)


def _as_store(source) -> HistoryStore:
    if isinstance(source, HistoryStore):
        return source
    if isinstance(source, SpillingHistory):
        return source.finish()
    return HistoryStore(source)


def check_linearizable_streaming(
        source: Union[HistoryStore, SpillingHistory, str, Path],
        initial: Optional[Dict[bytes, Optional[bytes]]] = None,
        state_budget: int = 500_000,
        workers: int = 0,
        cache: Optional[VerdictCache] = None) -> LinearizabilityReport:
    """Per-key linearizability of a spilled run, with bounded memory.

    Key streams are read one at a time through the offset index and handed
    to the existing per-key checker -- in-process when ``workers`` is 0,
    else through a ``multiprocessing`` pool with a bounded dispatch window
    (at most ``2 * workers`` key streams in flight), so peak memory is the
    largest key stream times the window, independent of run size.

    The verdict for every key stream is memoized in ``cache`` (pass
    :func:`default_verdict_cache` to share across a scenario matrix);
    ``report.cache_hits`` counts the keys that skipped the search.  The
    returned report is bit-identical to
    :func:`repro.core.history.check_linearizable` over the same history.

    Args:
        source: a :class:`HistoryStore`, a (finished or unfinished)
            :class:`SpillingHistory`, or a run-directory path.
        initial: starting value per key; defaults to the run metadata's
            recorded initial values when present.
        state_budget: per-key search-state cap (as the in-memory checker).
        workers: worker processes; 0 checks in-process.  Falls back to
            in-process when the platform cannot fork.
        cache: verdict memoization (``None`` disables it).
    """
    store = _as_store(source)
    if initial is None:
        initial = store.initial_values()
    initial = {canonical_key(key): value
               for key, value in (initial or {}).items()}
    report = LinearizabilityReport(ok=True, total_ops=store.total_ops)
    results: Dict[bytes, KeyReport] = {}
    to_check: List[bytes] = []
    for key in store.keys():
        digest = verdict_digest(store.key_digest(key),
                                initial.get(key, MISSING), state_budget)
        cached = cache.get(digest) if cache is not None else None
        if cached is not None:
            results[key] = cached
            report.cache_hits += 1
        else:
            to_check.append(key)

    def record(key: bytes, key_report: KeyReport) -> None:
        results[key] = key_report
        if cache is not None:
            digest = verdict_digest(store.key_digest(key),
                                    initial.get(key, MISSING), state_budget)
            cache.put(digest, key_report)

    if workers and "fork" not in multiprocessing.get_all_start_methods():
        workers = 0  # spawn would re-import the world per key; stay serial
    if workers and to_check:
        ctx = multiprocessing.get_context("fork")
        window = 2 * workers
        with ctx.Pool(workers) as pool:
            in_flight: deque = deque()
            for key in to_check:
                while len(in_flight) >= window:
                    done_key, key_report = in_flight.popleft().get()
                    record(done_key, key_report)
                task = (key, store.ops_for_key(key),
                        initial.get(key, MISSING), state_budget)
                in_flight.append(pool.apply_async(_check_key_task, (task,)))
            while in_flight:
                done_key, key_report = in_flight.popleft().get()
                record(done_key, key_report)
    else:
        for key in to_check:
            record(key, check_key_linearizable(
                store.ops_for_key(key), initial.get(key, MISSING), state_budget))

    report.keys = {key: results[key] for key in store.keys()}
    report.ok = all(key_report.ok for key_report in report.keys.values())
    return report


# --------------------------------------------------------------------- #
# CLI: re-check a spilled run offline.
# --------------------------------------------------------------------- #

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.core.history_store",
        description="Inspect, re-index and re-check spilled NDJSON histories.")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="re-check a run's linearizability")
    check.add_argument("run_dir")
    check.add_argument("--workers", type=int, default=0,
                       help="worker processes (0 = in-process)")
    check.add_argument("--state-budget", type=int, default=500_000)
    check.add_argument("--cache", default=None,
                       help="path of a persistent verdict cache (JSON)")

    index = sub.add_parser("index", help="rebuild the derived index")
    index.add_argument("run_dir")
    index.add_argument("--allow-truncated", action="store_true",
                       help="index the intact prefix of a truncated file")

    info = sub.add_parser("info", help="print run metadata and counts")
    info.add_argument("run_dir")

    args = parser.parse_args(argv)
    if args.command == "index":
        try:
            total, truncated_at = rebuild_index(
                args.run_dir, allow_truncated=args.allow_truncated)
        except TruncatedHistoryError as exc:
            print(exc, file=sys.stderr)
            return 1
        note = (f" (truncated at byte {truncated_at})"
                if truncated_at is not None else "")
        print(f"indexed {total} ops{note}")
        return 0

    with HistoryStore(args.run_dir) as store:
        if args.command == "info":
            print(f"schema: {SCHEMA}")
            print(f"ops: {store.total_ops} ({store.completed_ops} completed)")
            print(f"keys: {len(store.keys())}")
            print(f"data bytes: {store.data_bytes}")
            if store.meta:
                print(f"meta: {json.dumps(store.meta, sort_keys=True)}")
            return 0

        cache = VerdictCache(args.cache) if args.cache else None
        report = check_linearizable_streaming(
            store, state_budget=args.state_budget, workers=args.workers,
            cache=cache)
        if cache is not None and cache.path is not None:
            cache.save()
        print(report.summary())
        if report.cache_hits:
            print(f"verdict cache hits: {report.cache_hits}/{len(report.keys)}")
        violations = store.version_violations()
        for violation in violations[:10]:
            print(f"version violation: {violation}")
        exhausted = report.exhausted_keys()
        if exhausted:
            print(f"exhausted keys: {[r.key for r in exhausted]}")
        ok = report.ok and not exhausted and not violations
        return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
