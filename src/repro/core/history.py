"""Operation histories and a per-key linearizability checker.

The paper model-checks NetChain's per-key consistency; this module brings
the same obligation to the simulator at full scale: clients driven through
the :class:`repro.core.client.KVClient` protocol log every invocation and
response into a :class:`History`, arbitrary fault schedules run underneath
(:mod:`repro.netsim.faults`), and :func:`check_linearizable` then decides
whether the recorded concurrent history is linearizable per key.

The checker is the Wing & Gong algorithm with Lowe's memoization: search
for a total order of the operations on one key that (a) respects real-time
order -- an operation that returned before another was invoked must be
ordered first -- and (b) steps a sequential register/CAS specification
through every response.  Operations that never produced a definite
response (client-side retry exhaustion, still in flight at the end of the
run) are *ambiguous*: the search may linearize them at any point after
their invocation or drop them entirely, which is exactly the latitude a
lost-reply gives a real system.

One refinement matches NetChain's retry protocol (Section 4.3: clients
retry over UDP and "because writes are idempotent, retrying is benign").
Every retransmission of a write is re-sequenced by the chain head as a
fresh version, so a single client-visible write operation can take effect
*several times*, interleaved with other writers -- the stored value can
legitimately oscillate A, B, A while versions only grow.  The spec
therefore lets a retried write (``retries > 0``) re-impose its value after
its linearization point ("echo"), and an ambiguous write apply any number
of times.  Single-transmission writes (``retries == 0``) keep the strict
exactly-once semantics, and version monotonicity -- the property the
paper's TLA+ spec checks -- is enforced separately by
:meth:`History.version_violations`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.client import KVClient, KVFuture, KVResult, canonical_key

#: Sentinel state for "the key does not exist".
MISSING = None


@dataclass
class HistoryOp:
    """One invocation/response pair (response fields empty until completed)."""

    op_id: int
    client: str
    op: str  # "read" | "write" | "cas" | "delete" | "insert"
    key: bytes
    #: Written value (write/insert) or proposed new value (cas).
    value: Optional[bytes] = None
    #: Expected value for cas.
    expected: Optional[bytes] = None
    invoked_at: float = 0.0
    returned_at: Optional[float] = None
    ok: Optional[bool] = None
    #: Value observed by a read (empty for other ops).
    output: Optional[bytes] = None
    not_found: bool = False
    cas_failed: bool = False
    timed_out: bool = False
    #: Client-side retransmissions of this op (NetChain's UDP retries).
    retries: int = 0
    #: (session, seq) when the backend exposes versions (NetChain).
    version: Optional[Tuple[int, int]] = None

    @property
    def completed(self) -> bool:
        return self.returned_at is not None

    @property
    def ambiguous(self) -> bool:
        """No definite response: the op may or may not have taken effect."""
        if not self.completed:
            return True
        return bool(self.timed_out)

    def describe(self) -> str:
        outcome = "pending"
        if self.completed:
            if self.timed_out:
                outcome = "timeout"
            elif self.ok:
                outcome = f"ok<-{self.output!r}" if self.op == "read" else "ok"
            elif self.cas_failed:
                outcome = "cas_failed"
            elif self.not_found:
                outcome = "not_found"
            else:
                outcome = "error"
        window = (f"[{self.invoked_at:.6f}, "
                  f"{self.returned_at:.6f}]" if self.completed else
                  f"[{self.invoked_at:.6f}, ...]")
        detail = ""
        if self.op in ("write", "insert"):
            detail = f"({self.value!r})"
        elif self.op == "cas":
            detail = f"({self.expected!r} -> {self.value!r})"
        return f"{self.client} {self.op}{detail} {window} {outcome}"


class History:
    """A concurrent history of key-value operations, in invocation order."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.ops: List[HistoryOp] = []
        self._ids = itertools.count()
        self._anonymous_clients = itertools.count(1)

    def anonymous_client_name(self) -> str:
        """A deterministic name for a client that did not pick one.

        Names derived from ``id()`` differ between processes, which makes
        recorded histories of identical runs diff dirty; a per-history
        counter is stable across replays.
        """
        return f"client-{next(self._anonymous_clients):04d}"

    # -- recording ------------------------------------------------------- #

    def invoke(self, client: str, op: str, key, value=None, expected=None) -> HistoryOp:
        """Record an invocation; returns the record to complete later.

        Keys are canonicalized here, once, by :func:`canonical_key`: a
        padded wire spelling and the original string land in the same
        per-key stream, and every downstream consumer (the checker,
        :meth:`version_violations`, spilled NDJSON runs) sees one spelling.
        """
        record = HistoryOp(op_id=next(self._ids), client=client, op=op,
                           key=canonical_key(key),
                           value=None if value is None else bytes(value),
                           expected=None if expected is None else bytes(expected),
                           invoked_at=self.sim.now)
        self.ops.append(record)
        return record

    def complete(self, record: HistoryOp, result: KVResult) -> None:
        """Attach the response to a previously recorded invocation."""
        record.returned_at = self.sim.now
        record.ok = bool(result.ok)
        record.not_found = bool(result.not_found)
        record.cas_failed = bool(result.cas_failed)
        record.timed_out = bool(result.timed_out)
        record.retries = int(getattr(result, "retries", 0) or 0)
        if record.op == "read" and result.ok:
            record.output = bytes(result.value)
        raw = result.raw
        if raw is not None and hasattr(raw, "session") and hasattr(raw, "seq"):
            record.version = (raw.session, raw.seq)
        elif raw is not None and hasattr(raw, "version") and result.ok:
            record.version = (0, raw.version)

    # -- views ----------------------------------------------------------- #

    def per_key(self) -> Dict[bytes, List[HistoryOp]]:
        """Operations grouped by key, in invocation order."""
        grouped: Dict[bytes, List[HistoryOp]] = {}
        for op in self.ops:
            grouped.setdefault(op.key, []).append(op)
        return grouped

    def completed_ops(self) -> List[HistoryOp]:
        return [op for op in self.ops if op.completed]

    def pending_ops(self) -> List[HistoryOp]:
        return [op for op in self.ops if not op.completed]

    def __len__(self) -> int:
        return len(self.ops)

    # -- checks ---------------------------------------------------------- #

    def check(self, initial: Optional[Dict[bytes, Optional[bytes]]] = None,
              state_budget: int = 500_000) -> "LinearizabilityReport":
        """Run :func:`check_linearizable` over this history."""
        return check_linearizable(self, initial=initial, state_budget=state_budget)

    def version_violations(self) -> List[str]:
        """Per-(client, key) monotonicity of backend-reported versions.

        See :func:`version_violations_of`; this is that check over the
        in-memory operation list.
        """
        return version_violations_of(self.ops)


def version_violations_of(ops: Iterable[HistoryOp]) -> List[str]:
    """Per-(client, key) monotonicity of backend-reported versions.

    This is the TLA+ ``Consistency`` property over a recorded history (a
    cheap necessary condition that complements the full linearizability
    search when versions are available).  Only real-time-ordered
    observations are compared: an operation that *overlapped* another
    (pipelined slots of one client) may observe an older version without
    any inconsistency, exactly as two overlapping ops may linearize in
    either order.

    Accepts any operation iterator -- the in-memory list of a
    :class:`History` or the record stream of a spilled NDJSON run -- and
    never re-encodes keys: grouping uses the canonical spelling fixed at
    record time.
    """
    grouped: Dict[Tuple[str, bytes], List[HistoryOp]] = {}
    for op in ops:
        if op.version is None or not op.ok or not op.completed:
            continue
        grouped.setdefault((op.client, op.key), []).append(op)
    violations: List[str] = []
    for (client, key), key_ops in grouped.items():
        key_ops.sort(key=lambda op: op.invoked_at)
        for i, op in enumerate(key_ops):
            settled = [prev.version for prev in key_ops[:i]
                       if prev.returned_at <= op.invoked_at]
            if settled and op.version < max(settled):
                violations.append(
                    f"{client} observed {key!r} going backwards: "
                    f"{max(settled)} -> {op.version}")
    return violations


class RecordingClient(KVClient):
    """A :class:`KVClient` decorator that logs every op into a history.

    Wrap any backend client; the returned futures are the backend's own,
    with the history completion registered as the first callback.
    """

    def __init__(self, inner: KVClient, history: History,
                 name: Optional[str] = None) -> None:
        self.inner = inner
        self.history = history
        self.sim = inner.sim
        self.backend = inner.backend
        self.name = name or history.anonymous_client_name()

    def _recorded(self, op: str, key, future: KVFuture, value=None,
                  expected=None) -> KVFuture:
        record = self.history.invoke(self.name, op, key, value=value,
                                     expected=expected)
        return future.then(lambda result: self.history.complete(record, result))

    def read(self, key) -> KVFuture:
        record = self.history.invoke(self.name, "read", key)
        return self.inner.read(key).then(
            lambda result: self.history.complete(record, result))

    def write(self, key, value) -> KVFuture:
        record = self.history.invoke(self.name, "write", key, value=value)
        return self.inner.write(key, value).then(
            lambda result: self.history.complete(record, result))

    def cas(self, key, expected, new_value) -> KVFuture:
        record = self.history.invoke(self.name, "cas", key, value=new_value,
                                     expected=expected)
        return self.inner.cas(key, expected, new_value).then(
            lambda result: self.history.complete(record, result))

    def delete(self, key) -> KVFuture:
        record = self.history.invoke(self.name, "delete", key)
        return self.inner.delete(key).then(
            lambda result: self.history.complete(record, result))

    def insert(self, key, value=b"") -> KVFuture:
        record = self.history.invoke(self.name, "insert", key, value=value)
        return self.inner.insert(key, value).then(
            lambda result: self.history.complete(record, result))


# --------------------------------------------------------------------- #
# The checker.
# --------------------------------------------------------------------- #

@dataclass
class KeyReport:
    """Linearizability verdict for one key."""

    key: bytes
    ok: bool
    ops: int
    ambiguous_ops: int
    states_explored: int = 0
    #: The search ran out of its state budget before deciding; ``ok`` is
    #: then vacuously true and tests should assert ``not exhausted``.
    exhausted: bool = False
    message: str = ""


@dataclass
class LinearizabilityReport:
    """Aggregate verdict over every key of a history."""

    ok: bool
    keys: Dict[bytes, KeyReport] = field(default_factory=dict)
    total_ops: int = 0
    #: Keys whose verdict came out of a memoized verdict cache instead of a
    #: fresh search (streaming checker only; see
    #: :func:`repro.core.history_store.check_linearizable_streaming`).
    cache_hits: int = 0

    def violations(self) -> List[KeyReport]:
        return [report for report in self.keys.values() if not report.ok]

    def exhausted_keys(self) -> List[KeyReport]:
        return [report for report in self.keys.values() if report.exhausted]

    def summary(self) -> str:
        bad = self.violations()
        if not bad:
            return (f"linearizable: {len(self.keys)} keys, "
                    f"{self.total_ops} operations")
        lines = [f"NOT linearizable: {len(bad)}/{len(self.keys)} keys violate"]
        for report in bad[:5]:
            lines.append(f"  key {report.key!r}: {report.message}")
        return "\n".join(lines)


_FAIL = object()


def _step(op: HistoryOp, state: Optional[bytes]):
    """Step the sequential register/CAS spec with ``op``'s actual response.

    Returns the new state, or ``_FAIL`` when the response is impossible
    from ``state``.
    """
    if op.op == "read":
        if op.ok:
            return state if op.output == state else _FAIL
        if op.not_found:
            return state if state is MISSING else _FAIL
        return state  # reads with other definite errors observe nothing
    if op.op == "write":
        if op.ok:
            return op.value
        if op.not_found:
            return state if state is MISSING else _FAIL
        return state
    if op.op == "cas":
        if op.ok:
            return op.value if state == op.expected else _FAIL
        if op.cas_failed:
            return state if state != op.expected else _FAIL
        if op.not_found:
            return state if state is MISSING else _FAIL
        return state
    if op.op == "delete":
        if op.ok:
            return MISSING
        if op.not_found:
            return state if state is MISSING else _FAIL
        return state
    if op.op == "insert":
        if op.ok:
            return op.value if op.value is not None else b""
        return state
    return state


def _step_ambiguous_success(op: HistoryOp, state: Optional[bytes]):
    """State transition if an ambiguous (lost-reply) op *did* take effect."""
    if op.op == "read":
        return state
    if op.op in ("write", "insert"):
        return op.value if op.value is not None else b""
    if op.op == "cas":
        # A lost CAS took effect only if it would have succeeded.
        return op.value if state == op.expected else _FAIL
    if op.op == "delete":
        return MISSING
    return state


def _check_key(ops: List[HistoryOp], initial: Optional[bytes],
               state_budget: int) -> KeyReport:
    key = ops[0].key if ops else b""
    has_cas = any(op.op == "cas" for op in ops)
    observed = {op.output for op in ops
                if op.op == "read" and op.completed and op.ok}
    relevant: List[HistoryOp] = []
    for op in ops:
        if op.ambiguous and op.op == "read":
            continue  # an unanswered read constrains nothing
        if (op.ambiguous and op.op == "write" and not has_cas
                and op.value not in observed):
            # A lost write whose value no completed read ever returned can
            # always be linearized as "never took effect": with unique
            # values and no CAS on the key, applying it could only be
            # observed through a read of its value, and there is none.
            # Dropping these up front keeps the search polynomial even
            # when an outage times out hundreds of writes.
            continue
        relevant.append(op)
    ambiguous_count = sum(1 for op in relevant if op.ambiguous)
    n = len(relevant)
    report = KeyReport(key=key, ok=True, ops=n, ambiguous_ops=ambiguous_count)
    if n == 0:
        return report

    relevant.sort(key=lambda op: (op.invoked_at, op.op_id))
    invoked = [op.invoked_at for op in relevant]
    returned = [op.returned_at if not op.ambiguous else float("inf")
                for op in relevant]
    full_mask = (1 << n) - 1
    certain_mask = 0
    for i, op in enumerate(relevant):
        if not op.ambiguous:
            certain_mask |= 1 << i
    #: Certain retried writes may "echo" (re-impose their value through a
    #: straggler retransmission) after their linearization point.  Echoes
    #: of values no read observed are invisible (without CAS) and pruned.
    echoes: List[Tuple[int, Optional[bytes]]] = [
        (1 << i, op.value) for i, op in enumerate(relevant)
        if (not op.ambiguous and op.op == "write" and op.retries > 0
            and (has_cas or op.value in observed))]
    seen: set = set()
    explored = 0

    # Iterative depth-first search over (remaining-ops bitmask, state).
    # Ambiguous ops (lost replies) may take effect at any point after their
    # invocation -- several times for writes, since every retry is a fresh
    # application -- or never; "never" is canonicalized by simply leaving
    # them in the mask: their return time is +inf, so they never constrain
    # another op's candidacy, and a mask holding only ambiguous ops is a
    # completed linearization.  This avoids branching on explicit drops,
    # which would blow the state space up exponentially in the number of
    # timed-out operations.
    def candidates_for(mask: int) -> List[int]:
        remaining = [i for i in range(n) if mask & (1 << i)]
        horizon = min(returned[i] for i in remaining)
        return [i for i in remaining if invoked[i] <= horizon]

    def successors(index: int, mask: int, state) -> List[Tuple[int, Any]]:
        op = relevant[index]
        outcomes = []
        if op.ambiguous:
            applied = _step_ambiguous_success(op, state)
            if applied is not _FAIL:
                if op.op == "write":
                    # Zero-or-more applications: stays in the mask so it can
                    # re-apply; success ignores ambiguous ops anyway.
                    outcomes.append((mask, applied))
                else:
                    outcomes.append((mask & ~(1 << index), applied))
        else:
            stepped = _step(op, state)
            if stepped is not _FAIL:
                outcomes.append((mask & ~(1 << index), stepped))
        return outcomes

    stack: List[List[Any]] = [[full_mask, initial]]
    while stack:
        mask, state = stack.pop()
        if mask & certain_mask == 0:
            report.states_explored = explored
            return report
        marker = (mask, state)
        if marker in seen:
            continue
        seen.add(marker)
        explored += 1
        if explored > state_budget:
            report.exhausted = True
            report.states_explored = explored
            report.message = (f"state budget {state_budget} exhausted over "
                              f"{n} operations")
            return report
        for index in candidates_for(mask):
            for next_mask, next_state in successors(index, mask, state):
                stack.append([next_mask, next_state])
        for bit, value in echoes:
            # A straggler retry of an already linearized retried write.
            if not (mask & bit) and state != value:
                stack.append([mask, value])

    report.ok = False
    report.states_explored = explored
    shown = "\n    ".join(op.describe() for op in relevant[:25])
    more = f"\n    ... {n - 25} more" if n > 25 else ""
    report.message = (f"no valid linearization of {n} operations "
                      f"(explored {explored} states):\n    {shown}{more}")
    return report


def check_key_linearizable(ops: List[HistoryOp],
                           initial: Optional[bytes] = MISSING,
                           state_budget: int = 500_000) -> KeyReport:
    """Decide linearizability of one key's operation stream.

    This is the unit of work the streaming pipeline
    (:mod:`repro.core.history_store`) fans out to worker processes: a plain
    list of operations on a single key, order-insensitive (the search sorts
    by invocation time), no :class:`History` required.
    """
    return _check_key(list(ops), initial, state_budget)


def group_ops_by_key(ops: Iterable[HistoryOp]) -> Dict[bytes, List[HistoryOp]]:
    """Group an operation iterator per key, preserving encounter order.

    Keys are grouped exactly as recorded -- normalization happened once at
    record time (:meth:`History.invoke` / the NDJSON loader), so the
    grouping never re-encodes.
    """
    grouped: Dict[bytes, List[HistoryOp]] = {}
    for op in ops:
        grouped.setdefault(op.key, []).append(op)
    return grouped


def check_linearizable(history,
                       initial: Optional[Dict[bytes, Optional[bytes]]] = None,
                       state_budget: int = 500_000) -> LinearizabilityReport:
    """Decide per-key linearizability of a recorded history.

    Args:
        history: the recorded invocations/responses -- a :class:`History`,
            anything exposing ``per_key()``, or a plain iterable of
            :class:`HistoryOp` (the op-iterator form the spilled-NDJSON
            pipeline loads fixtures and run directories into).
        initial: starting value per (canonical) key; keys absent from the
            mapping start as missing.  Populated deployments pass ``b""``
            (or the loaded value) for every preloaded key.
        state_budget: cap on search states per key; exceeding it marks the
            key ``exhausted`` instead of deciding.
    """
    initial = {canonical_key(key): value
               for key, value in (initial or {}).items()}
    if hasattr(history, "per_key"):
        grouped = history.per_key()
        total = len(history)
    else:
        grouped = group_ops_by_key(history)
        total = sum(len(ops) for ops in grouped.values())
    report = LinearizabilityReport(ok=True, total_ops=total)
    for key, ops in grouped.items():
        key_report = _check_key(ops, initial.get(key, MISSING), state_budget)
        report.keys[key] = key_report
        if not key_report.ok:
            report.ok = False
    return report
