"""NetChain core: the paper's primary contribution.

An in-network, strongly-consistent, fault-tolerant key-value store built
from:

* :mod:`repro.core.protocol` -- the UDP-based query format (Figure 2(b)).
* :mod:`repro.core.kvstore` -- the on-chip key/value storage layout
  (match table + register arrays, Figure 3).
* :mod:`repro.core.switch_program` -- the data-plane program
  (Algorithm 1 plus chain routing and failure-handling rules).
* :mod:`repro.core.ring` -- consistent hashing with virtual nodes.
* :mod:`repro.core.client` -- the backend-agnostic ``KVClient`` protocol:
  futures, sessions and pipelined batch submission.
* :mod:`repro.core.agent` -- the client-side agent exposing the key-value API.
* :mod:`repro.core.controller` -- the control plane: chain assignment,
  fast failover (Algorithm 2) and failure recovery (Algorithm 3).
* :mod:`repro.core.coordination` -- locks, barriers, configuration and
  group membership built on the key-value API.
* :mod:`repro.core.invariants` -- executable versions of the paper's
  correctness invariants (the TLA+ appendix).
* :mod:`repro.core.hotkeys` -- the adaptive hot-key tier: sketch-based
  detection, self-tuning chain widening, epoch-invalidated client caching.
"""

from repro.core.agent import AgentConfig, NetChainAgent, QueryResult, QueryTimeout
from repro.core.client import (
    KVBatch,
    KVClient,
    KVFuture,
    KVResult,
    KVSession,
    KVTimeout,
    first,
    gather,
)
from repro.core.cluster import ClusterConfig, NetChainCluster
from repro.core.controller import ChainInfo, ControllerConfig, NetChainController
from repro.core.coordination import (
    Barrier,
    ConfigurationStore,
    DistributedLock,
    GroupMembership,
    LockManager,
)
from repro.core.detector import DetectorConfig, FailureDetector
from repro.core.history import (
    History,
    HistoryOp,
    LinearizabilityReport,
    RecordingClient,
    check_linearizable,
)
from repro.core.hotkeys import (
    ClientReadCache,
    HotKeyManager,
    HotKeySketch,
    HotKeyTierConfig,
    HotRoute,
    SketchConfig,
)
from repro.core.hybrid import HybridKVClient, HybridPolicy, HybridStore
from repro.core.invariants import (
    ClientObservationChecker,
    check_chain_invariant,
    check_value_agreement,
    invariant_observer,
    sample_chain_invariants,
)
from repro.core.kvstore import KVStoreConfig, StoreFullError, SwitchKVStore
from repro.core.protocol import NetChainHeader, OpCode, QueryStatus
from repro.core.reconfig import (
    MigrationCoordinator,
    MigrationPlan,
    MigrationReport,
    ReconfigConfig,
    ReconfigPlanner,
    migrate,
)
from repro.core.ring import ConsistentHashRing, VirtualNode
from repro.core.switch_program import NetChainSwitchProgram

__all__ = [
    "KVClient",
    "KVFuture",
    "KVResult",
    "KVSession",
    "KVBatch",
    "KVTimeout",
    "gather",
    "first",
    "OpCode",
    "QueryStatus",
    "NetChainHeader",
    "SwitchKVStore",
    "KVStoreConfig",
    "StoreFullError",
    "ConsistentHashRing",
    "VirtualNode",
    "NetChainSwitchProgram",
    "NetChainAgent",
    "AgentConfig",
    "QueryResult",
    "QueryTimeout",
    "NetChainController",
    "ControllerConfig",
    "ChainInfo",
    "DistributedLock",
    "LockManager",
    "Barrier",
    "ConfigurationStore",
    "GroupMembership",
    "check_chain_invariant",
    "check_value_agreement",
    "invariant_observer",
    "sample_chain_invariants",
    "ClientObservationChecker",
    "DetectorConfig",
    "FailureDetector",
    "History",
    "HistoryOp",
    "LinearizabilityReport",
    "RecordingClient",
    "check_linearizable",
    "NetChainCluster",
    "ClusterConfig",
    "MigrationCoordinator",
    "MigrationPlan",
    "MigrationReport",
    "ReconfigConfig",
    "ReconfigPlanner",
    "migrate",
    "HybridStore",
    "HybridPolicy",
    "HybridKVClient",
    "ClientReadCache",
    "HotKeyManager",
    "HotKeySketch",
    "HotKeyTierConfig",
    "HotRoute",
    "SketchConfig",
]
