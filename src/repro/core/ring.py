"""Consistent hashing with virtual nodes (Section 4.1, "Data partitioning").

NetChain partitions the key space over switches with consistent hashing:
keys and virtual nodes are hashed onto a ring; each switch owns ``m/n``
virtual nodes; the keys of a ring segment are served by the chain formed by
the ``f+1`` subsequent virtual nodes that belong to *distinct* switches.

Virtual nodes double as the paper's **virtual groups** (Section 5.2): the
controller recovers one group at a time to keep the write-unavailability
window small, so each virtual node id is also the ``vgroup`` tag carried in
query headers.
"""

from __future__ import annotations

import bisect
import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


def _hash64(data: bytes) -> int:
    """Stable 64-bit hash used for ring placement."""
    return int.from_bytes(hashlib.sha1(data).digest()[:8], "big")


@dataclass
class VirtualNode:
    """One virtual node on the ring."""

    vnode_id: int
    switch: str
    position: int


class ConsistentHashRing:
    """The key -> chain mapping shared by agents and the controller."""

    def __init__(self, switches: Sequence[str], vnodes_per_switch: int = 100,
                 replication: int = 3, seed: int = 0) -> None:
        """Args:
            switches: the NetChain switch names.
            vnodes_per_switch: ``m/n`` in the paper's notation.
            replication: chain length ``f+1``.
            seed: randomness for failure-recovery reassignment.
        """
        if replication < 1:
            raise ValueError("replication factor must be at least 1")
        if len(switches) < replication:
            raise ValueError(
                f"need at least {replication} switches for chains of length {replication}")
        if len(set(switches)) != len(switches):
            raise ValueError(f"duplicate switch names in {list(switches)!r}")
        self.switch_names: List[str] = list(switches)
        self.vnodes_per_switch = vnodes_per_switch
        self.replication = replication
        self.rng = random.Random(seed)
        self.vnodes: Dict[int, VirtualNode] = {}
        self._next_vnode_id = 0
        self.generation = 0
        for switch in self.switch_names:
            for i in range(vnodes_per_switch):
                position = _hash64(f"{switch}#vnode{i}".encode())
                self.vnodes[self._next_vnode_id] = VirtualNode(
                    self._next_vnode_id, switch, position)
                self._next_vnode_id += 1
        self._rebuild_index()

    def _rebuild_index(self) -> None:
        ordered = sorted(self.vnodes.values(), key=lambda v: (v.position, v.vnode_id))
        self._positions = [v.position for v in ordered]
        self._ordered = ordered
        # Bumped on every ring mutation; route caches key their validity on
        # it so a membership change invalidates them wholesale.
        self.generation += 1

    # ------------------------------------------------------------------ #
    # Lookups.
    # ------------------------------------------------------------------ #

    def key_position(self, key) -> int:
        """Ring position of a key.

        Byte keys are canonicalized by stripping the trailing NUL padding of
        the 16-byte wire encoding, so a key hashes to the same position
        whether a caller passes the original string or the padded raw key.
        """
        if isinstance(key, bytes):
            raw = key.rstrip(b"\x00")
        else:
            raw = str(key).encode("utf-8")
        return _hash64(raw)

    def _iter_successors(self, position: int):
        """Lazily walk the ring once, starting at/after ``position``.

        Chain construction usually stops after ``replication`` distinct
        switches, so the walk almost never materializes the whole ring.
        """
        ordered = self._ordered
        count = len(ordered)
        start = bisect.bisect_left(self._positions, position)
        for i in range(start, count):
            yield ordered[i]
        for i in range(start):
            yield ordered[i]

    def successor_vnodes(self, position: int) -> List[VirtualNode]:
        """Virtual nodes starting at the first one at/after ``position``,
        walking the whole ring once."""
        return list(self._iter_successors(position))

    def primary_vnode_for_key(self, key) -> VirtualNode:
        """The virtual node owning the key's segment (also its virtual group)."""
        positions = self._positions
        start = bisect.bisect_left(positions, self.key_position(key))
        if start == len(positions):
            start = 0
        return self._ordered[start]

    def chain_vnodes_for_key(self, key, replication: Optional[int] = None) -> List[VirtualNode]:
        """The ``f+1`` virtual nodes (on distinct switches) forming the key's chain.

        Walks the ring past virtual nodes whose switch already appears in the
        chain, exactly as Section 4.1 prescribes.
        """
        replication = replication or self.replication
        chain: List[VirtualNode] = []
        seen_switches = set()
        for vnode in self._iter_successors(self.key_position(key)):
            if vnode.switch in seen_switches:
                continue
            chain.append(vnode)
            seen_switches.add(vnode.switch)
            if len(chain) == replication:
                break
        if len(chain) < replication:
            raise ValueError(
                f"only {len(chain)} distinct switches available for a chain of {replication}")
        return chain

    def chain_for_key(self, key, replication: Optional[int] = None) -> List[str]:
        """Switch names of the key's chain, head first."""
        return [v.switch for v in self.chain_vnodes_for_key(key, replication)]

    def vgroup_for_key(self, key) -> int:
        """The virtual group (= primary virtual node id) of a key."""
        return self.primary_vnode_for_key(key).vnode_id

    def chain_for_vgroup(self, vgroup: int, replication: Optional[int] = None,
                         exclude: Optional[Sequence[str]] = None) -> List[str]:
        """The chain serving a virtual group.

        ``exclude`` skips switches (e.g. known-failed ones) during the walk,
        which is how planned reconfigurations derive a live target chain.
        """
        replication = replication or self.replication
        excluded = set(exclude or ())
        vnode = self.vnodes[vgroup]
        chain: List[str] = []
        seen = set()
        for candidate in self._iter_successors(vnode.position):
            if candidate.switch in seen or candidate.switch in excluded:
                continue
            chain.append(candidate.switch)
            seen.add(candidate.switch)
            if len(chain) == replication:
                break
        return chain

    def virtual_nodes_of(self, switch: str) -> List[VirtualNode]:
        """All virtual nodes mapped to a switch."""
        return [v for v in self.vnodes.values() if v.switch == switch]

    def vgroups_involving(self, switch: str, replication: Optional[int] = None) -> List[int]:
        """Virtual groups whose chain contains ``switch``.

        A switch appears in ``m(f+1)/n`` chains on average (Section 5.1);
        this enumerates them exactly.
        """
        replication = replication or self.replication
        result = []
        for vgroup in self.vnodes:
            if switch in self.chain_for_vgroup(vgroup, replication):
                result.append(vgroup)
        return sorted(result)

    # ------------------------------------------------------------------ #
    # Elastic membership (used by the reconfiguration planner).
    # ------------------------------------------------------------------ #

    def clone(self) -> "ConsistentHashRing":
        """An independent copy (same vnode ids/positions and RNG seed state
        re-derived from scratch is NOT required -- the clone is only used to
        derive target layouts, never to make random choices)."""
        copy = ConsistentHashRing.__new__(ConsistentHashRing)
        copy.switch_names = list(self.switch_names)
        copy.vnodes_per_switch = self.vnodes_per_switch
        copy.replication = self.replication
        copy.rng = random.Random(0)
        copy.vnodes = {vid: VirtualNode(v.vnode_id, v.switch, v.position)
                       for vid, v in self.vnodes.items()}
        copy._next_vnode_id = self._next_vnode_id
        copy.generation = 0
        copy._rebuild_index()
        return copy

    def add_switch(self, switch: str, vnodes: Optional[int] = None) -> List[int]:
        """Add a switch with its own virtual nodes, leaving every existing
        virtual node untouched (stable incremental rebalancing).

        Vnode positions hash from the switch name exactly as at construction
        time, so adding then removing a switch restores the original key
        mapping.  Returns the new vnode ids (= new virtual groups).
        """
        if switch in self.switch_names:
            raise ValueError(f"duplicate switch name {switch!r}")
        count = vnodes if vnodes is not None else self.vnodes_per_switch
        self.switch_names.append(switch)
        new_ids: List[int] = []
        for i in range(count):
            position = _hash64(f"{switch}#vnode{i}".encode())
            vnode_id = self._next_vnode_id
            self._next_vnode_id += 1
            self.vnodes[vnode_id] = VirtualNode(vnode_id, switch, position)
            new_ids.append(vnode_id)
        self._rebuild_index()
        return new_ids

    def remove_switch(self, switch: str) -> List[int]:
        """Remove a switch and its virtual nodes; other vnodes are untouched
        (keys of the removed segments flow to their ring successors).

        Returns the removed vnode ids.
        """
        if switch not in self.switch_names:
            raise ValueError(f"unknown switch {switch!r}")
        if len(self.switch_names) - 1 < self.replication:
            raise ValueError(
                f"removing {switch!r} leaves {len(self.switch_names) - 1} switches, "
                f"fewer than the replication factor {self.replication}")
        self.switch_names.remove(switch)
        removed = [vid for vid, vnode in self.vnodes.items() if vnode.switch == switch]
        for vid in removed:
            del self.vnodes[vid]
        self._rebuild_index()
        return sorted(removed)

    def insert_vnode(self, vnode: VirtualNode) -> None:
        """Install one externally-built virtual node (per-group commit of a
        planned scale-out: the coordinator flips one segment at a time)."""
        if vnode.vnode_id in self.vnodes:
            raise ValueError(f"vnode id {vnode.vnode_id} already on the ring")
        if vnode.switch not in self.switch_names:
            self.switch_names.append(vnode.switch)
        self.vnodes[vnode.vnode_id] = VirtualNode(vnode.vnode_id, vnode.switch,
                                                  vnode.position)
        self._next_vnode_id = max(self._next_vnode_id, vnode.vnode_id + 1)
        self._rebuild_index()

    def remove_vnode(self, vnode_id: int) -> VirtualNode:
        """Remove one virtual node (per-group commit of a planned scale-in);
        its segment's keys flow to the ring successor."""
        vnode = self.vnodes.pop(vnode_id)
        if not any(v.switch == vnode.switch for v in self.vnodes.values()):
            if vnode.switch in self.switch_names:
                self.switch_names.remove(vnode.switch)
        self._rebuild_index()
        return vnode

    # ------------------------------------------------------------------ #
    # Reconfiguration (used by the controller during failure recovery).
    # ------------------------------------------------------------------ #

    def reassign_vnode(self, vnode_id: int, new_switch: str) -> None:
        """Move one virtual node to a different switch (same ring position)."""
        vnode = self.vnodes[vnode_id]
        self.vnodes[vnode_id] = VirtualNode(vnode_id, new_switch, vnode.position)
        self._rebuild_index()

    def reassign_switch(self, failed_switch: str,
                        live_switches: Optional[Sequence[str]] = None) -> Dict[int, str]:
        """Randomly spread a failed switch's virtual nodes over live switches
        (Section 5.2: "randomly assign them to k live switches").

        Returns the mapping ``vnode_id -> new switch``.
        """
        if live_switches is None:
            live_switches = [s for s in self.switch_names if s != failed_switch]
        live_switches = list(live_switches)
        if not live_switches:
            raise ValueError("no live switches to reassign virtual nodes to")
        mapping: Dict[int, str] = {}
        for vnode in self.virtual_nodes_of(failed_switch):
            target = self.rng.choice(live_switches)
            mapping[vnode.vnode_id] = target
            self.vnodes[vnode.vnode_id] = VirtualNode(vnode.vnode_id, target, vnode.position)
        self._rebuild_index()
        return mapping

    def load_distribution(self) -> Dict[str, int]:
        """Number of virtual nodes per switch (used to test load spreading)."""
        counts: Dict[str, int] = {name: 0 for name in self.switch_names}
        for vnode in self.vnodes.values():
            counts[vnode.switch] = counts.get(vnode.switch, 0) + 1
        return counts
