"""Elastic reconfiguration: online scale-out/scale-in with live migration.

NetChain's headline property is *scale-free* coordination -- Figure 9(f)
shows throughput growing linearly as switches are added.  This module turns
that from a static claim into an operation: a running cluster grows or
shrinks while serving traffic, with per-key consistency preserved across
the membership change.

Two pieces:

* :class:`ReconfigPlanner` diffs the controller's live consistent-hash ring
  against a target membership and emits a :class:`MigrationPlan`: one
  :class:`MigrationStep` per affected virtual group.  Consistent hashing
  with stable virtual-node placement (Section 4.1) keeps the plan minimal:
  only the segments owned by joining/leaving switches move, roughly a
  ``1/n`` fraction of the keys per membership change.

* :class:`MigrationCoordinator` executes the plan live, one virtual group
  at a time, with the paper's two-phase atomic switching protocol
  (Section 5.2) generalized from failure recovery to planned moves:

  1. **Pre-sync** -- most of the group's state is copied to the target
     switches in the background; availability is unaffected.
  2. **Write freeze (phase 1)** -- writes for the group are dropped by the
     data plane (:attr:`NetChainSwitchProgram.frozen_write_vgroups`); reads
     keep flowing because the frozen state cannot change.  In-flight writes
     drain, then the remaining delta is synchronized.
  3. **Commit (phase 2)** -- one atomic control-plane action: the virtual
     node flips on the live ring, the directory's chain table swaps to the
     target chain, the head session is bumped so new writes order after
     everything the old chain issued, and the group's chain *epoch* is
     bumped and broadcast so straggler queries addressed under the old
     layout drop instead of reading or writing retired replicas.
  4. **Garbage collection** -- after a short delay the moved keys are
     reclaimed from switches that no longer serve them.

  Because groups migrate one at a time, only one group's writes are ever
  frozen -- the same "minimizing disruptions with virtual groups" argument
  the paper makes for failure recovery.

The coordinator is self-validating against faults: every phase re-derives
the target chain against the controller's current failed-switch set, a step
whose joining switch died is skipped (plan repair), and the coordinator
pauses while failure recovery (Algorithm 3) is splicing chains so the two
reconfiguration machines never fight over a group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.controller import ChainInfo, NetChainController
from repro.core.ring import ConsistentHashRing, VirtualNode


@dataclass
class ReconfigConfig:
    """Knobs of the live-migration protocol."""

    #: Fraction of each group's state copied before the write freeze
    #: (Step 1 of the recovery protocol; planned moves can pre-copy almost
    #: everything because the source is healthy).
    presync_fraction: float = 0.9
    #: Drain window between the freeze and the delta copy, letting writes
    #: already inside the chain reach the tail before it is snapshotted.
    settle_delay: float = 1e-3
    #: Fixed per-group overhead added to each group's delta-sync window.
    per_group_overhead: float = 2e-3
    #: Items per second copied during state synchronization; ``None`` uses
    #: the controller's ``sync_items_per_sec``.
    sync_items_per_sec: Optional[float] = None
    #: Delay between a group's commit and garbage-collecting its moved keys
    #: from the old owners.
    gc_delay: float = 10e-3
    #: Poll interval while waiting out an active failure recovery.
    pause_poll: float = 10e-3


@dataclass
class MigrationStep:
    """Planned handling of one virtual group."""

    vgroup: int
    #: ``new-group`` (a joining switch's vnode), ``chain-update`` (same
    #: group, different members), or ``absorb`` (this group additionally
    #: inherits the keys of retiring virtual nodes).
    kind: str
    target_chain: List[str]
    #: Virtual node to insert into the live ring at commit (scale-out).
    new_vnode: Optional[VirtualNode] = None
    #: Retiring virtual nodes removed from the live ring at commit
    #: (scale-in); their keys flow to this group.
    absorbed_vnodes: List[VirtualNode] = field(default_factory=list)
    #: Estimated keys gained from other groups (reporting only; the
    #: coordinator recomputes membership at commit time).
    est_keys_moving: int = 0


@dataclass
class MigrationPlan:
    """A diff between the live ring and a target membership."""

    target_members: List[str]
    joins: List[str]
    leaves: List[str]
    steps: List[MigrationStep]
    target_ring: ConsistentHashRing
    #: Keys registered when the plan was computed (for move-fraction stats).
    total_keys: int = 0

    def estimated_keys_moved(self) -> int:
        return sum(step.est_keys_moving for step in self.steps)

    def moved_fraction(self) -> float:
        if not self.total_keys:
            return 0.0
        return self.estimated_keys_moved() / self.total_keys

    def summary(self) -> str:
        kinds: Dict[str, int] = {}
        for step in self.steps:
            kinds[step.kind] = kinds.get(step.kind, 0) + 1
        parts = ", ".join(f"{count} {kind}" for kind, count in sorted(kinds.items()))
        return (f"join {self.joins or '[]'} leave {self.leaves or '[]'}: "
                f"{len(self.steps)} group migrations ({parts}), "
                f"~{self.estimated_keys_moved()}/{self.total_keys} keys move "
                f"({self.moved_fraction():.1%})")


class ReconfigPlanner:
    """Derives a minimal per-group migration plan from a membership diff."""

    def __init__(self, controller: NetChainController) -> None:
        self.controller = controller

    def plan(self, target_members: Sequence[str]) -> MigrationPlan:
        """Diff the live ring against ``target_members``.

        Joining switches get fresh virtual nodes at their canonical hash
        positions; leaving switches' vnodes retire and their segments flow
        to the ring successors.  Every group whose serving chain or key set
        changes gets one :class:`MigrationStep`; everything else is
        untouched, which is the consistent-hashing minimality property.
        """
        controller = self.controller
        targets = list(target_members)
        if len(set(targets)) != len(targets):
            raise ValueError(f"duplicate switch names in {targets!r}")
        if len(targets) < controller.config.replication:
            raise ValueError(
                f"target membership {targets!r} smaller than the replication "
                f"factor {controller.config.replication}")
        current = set(controller.ring.switch_names)
        joins = [name for name in targets if name not in current]
        leaves = sorted(current - set(targets))
        for name in joins:
            if name not in controller.topology.switches:
                raise ValueError(f"joining switch {name!r} is not in the topology")

        target_ring = controller.ring.clone()
        for name in joins:
            target_ring.add_switch(name)
        for name in leaves:
            target_ring.remove_switch(name)

        # Where does every registered key live in the target layout?
        moving_to: Dict[int, int] = {}
        total_keys = 0
        for vgroup, keys in controller.keys_by_vgroup.items():
            total_keys += len(keys)
            for key in keys:
                target_vg = target_ring.vgroup_for_key(key)
                if target_vg != vgroup:
                    moving_to[target_vg] = moving_to.get(target_vg, 0) + 1

        # Retiring vnodes are absorbed by the target-ring successor of
        # their position (the group the tail of their segment flows to).
        retiring: Dict[int, List[VirtualNode]] = {}
        for vgroup, vnode in controller.ring.vnodes.items():
            if vgroup not in target_ring.vnodes:
                successor = target_ring.successor_vnodes(vnode.position)[0]
                retiring.setdefault(successor.vnode_id, []).append(vnode)

        steps: List[MigrationStep] = []
        for vgroup in sorted(target_ring.vnodes):
            target_chain = target_ring.chain_for_vgroup(vgroup)
            info = controller.chain_table.get(vgroup)
            absorbed = retiring.get(vgroup, [])
            gains = moving_to.get(vgroup, 0)
            if info is None:
                vnode = target_ring.vnodes[vgroup]
                steps.append(MigrationStep(vgroup=vgroup, kind="new-group",
                                           target_chain=target_chain,
                                           new_vnode=vnode,
                                           absorbed_vnodes=absorbed,
                                           est_keys_moving=gains))
            elif absorbed:
                steps.append(MigrationStep(vgroup=vgroup, kind="absorb",
                                           target_chain=target_chain,
                                           absorbed_vnodes=absorbed,
                                           est_keys_moving=gains))
            elif list(info.switches) != target_chain or gains:
                steps.append(MigrationStep(vgroup=vgroup, kind="chain-update",
                                           target_chain=target_chain,
                                           est_keys_moving=gains))
        # New groups commit first so a retiring segment that splits between
        # a joining vnode and its surviving successor is fully drained by
        # the time the absorbing group commits.
        steps.sort(key=lambda s: (0 if s.new_vnode is not None else 1, s.vgroup))
        return MigrationPlan(target_members=targets, joins=joins, leaves=leaves,
                             steps=steps, target_ring=target_ring,
                             total_keys=total_keys)


@dataclass
class StepReport:
    """Outcome of one group's migration."""

    vgroup: int
    kind: str
    target_chain: List[str] = field(default_factory=list)
    status: str = "pending"  # "committed" | "skipped"
    keys_moved: int = 0
    items_copied: int = 0
    freeze_started: float = 0.0
    freeze_ended: float = 0.0
    committed_at: float = 0.0
    detail: str = ""

    @property
    def freeze_window(self) -> float:
        """How long this group's writes were frozen (seconds)."""
        if self.freeze_ended <= self.freeze_started:
            return 0.0
        return self.freeze_ended - self.freeze_started


@dataclass
class MigrationReport:
    """Summary of one executed migration, filled in as it progresses."""

    joins: List[str]
    leaves: List[str]
    steps: List[StepReport] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0
    done: bool = False
    aborted: bool = False

    def committed_steps(self) -> List[StepReport]:
        return [s for s in self.steps if s.status == "committed"]

    def skipped_steps(self) -> List[StepReport]:
        return [s for s in self.steps if s.status == "skipped"]

    def total_keys_moved(self) -> int:
        return sum(s.keys_moved for s in self.steps)

    def total_items_copied(self) -> int:
        return sum(s.items_copied for s in self.steps)

    def total_freeze_time(self) -> float:
        return sum(s.freeze_window for s in self.steps)

    def max_freeze_window(self) -> float:
        return max((s.freeze_window for s in self.steps), default=0.0)

    def duration(self) -> float:
        return max(0.0, self.finished_at - self.started_at)

    def summary(self) -> str:
        committed = len(self.committed_steps())
        return (f"migrated {committed}/{len(self.steps)} groups in "
                f"{self.duration():.3f}s: {self.total_keys_moved()} keys moved, "
                f"total freeze {self.total_freeze_time() * 1e3:.2f}ms, "
                f"max per-group freeze {self.max_freeze_window() * 1e3:.2f}ms"
                + (", ABORTED" if self.aborted else ""))


class MigrationCoordinator:
    """Executes a :class:`MigrationPlan` live, one virtual group at a time."""

    def __init__(self, controller: NetChainController, plan: MigrationPlan,
                 config: Optional[ReconfigConfig] = None) -> None:
        self.controller = controller
        self.sim = controller.sim
        self.plan = plan
        self.config = config or ReconfigConfig()
        self.report = MigrationReport(joins=list(plan.joins), leaves=list(plan.leaves))
        #: Called with each :class:`StepReport` as it commits or skips
        #: (tests sample the chain invariants here).
        self.observers: List[Callable[[StepReport], None]] = []
        self._started = False
        self._abort_requested = False

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #

    @property
    def done(self) -> bool:
        return self.report.done

    def abort(self) -> None:
        """Stop after the current group; remaining steps are skipped.

        Committed groups stay committed (each commit is atomic and
        self-consistent), so an abort leaves a mixed but correct layout.
        """
        self._abort_requested = True

    def start(self) -> MigrationReport:
        """Begin the migration; run the simulator until :attr:`done`."""
        if self._started:
            raise RuntimeError("a MigrationCoordinator can only be started once")
        self._started = True
        controller = self.controller
        self.report.started_at = self.sim.now
        for name in self.plan.joins:
            if name not in controller.members:
                controller.provision_switch(name)
        controller._log(f"migration started: {self.plan.summary()}")
        controller._emit("migration_start", steps=len(self.plan.steps),
                         joins=len(self.plan.joins),
                         leaves=len(self.plan.leaves))
        self._run_step(0)
        return self.report

    # ------------------------------------------------------------------ #
    # Internals.
    # ------------------------------------------------------------------ #

    def _sync_rate(self) -> float:
        if self.config.sync_items_per_sec is not None:
            return self.config.sync_items_per_sec
        return self.controller.config.sync_items_per_sec

    def _sync_duration(self, num_items: int) -> float:
        return num_items / self._sync_rate() + self.config.per_group_overhead

    def _when_recovery_idle(self, action: Callable[[], None]) -> None:
        """Defer ``action`` while failure recovery is splicing chains."""
        if self.controller.recovering:
            self.sim.schedule(self.config.pause_poll,
                              lambda: self._when_recovery_idle(action))
        else:
            action()

    def _retire_drained_vnodes(self) -> None:
        """Remove retiring virtual nodes whose keys have all re-homed.

        Their segment's new-key mapping flips to the ring successor, their
        directory entry disappears, and their epoch is bumped so stragglers
        tagged with the retired group drop everywhere.
        """
        controller = self.controller
        for vnode_id in list(controller.ring.vnodes):
            if vnode_id in self.plan.target_ring.vnodes:
                continue
            if controller.keys_by_vgroup.get(vnode_id):
                continue
            controller.ring.remove_vnode(vnode_id)
            controller.chain_table.pop(vnode_id, None)
            controller.keys_by_vgroup.pop(vnode_id, None)
            controller.bump_group_epoch(vnode_id)
            controller._log(f"migration: retired vgroup {vnode_id}")

    def _finish(self) -> None:
        controller = self.controller
        if not self.report.aborted:
            # Completed migrations converge fully: keys inserted into a
            # retiring segment after its absorbing step are re-homed.  An
            # abort instead leaves the mixed-but-correct layout untouched.
            self._rehome_stragglers()
        self._retire_drained_vnodes()
        for name in self.plan.leaves:
            # A leaver is only decommissioned once fully drained: after an
            # abort or skipped steps it may still serve committed chains or
            # own vnodes, and it must stay a probed member so the failure
            # detector keeps covering it.
            still_serving = any(name in info.switches
                                for info in controller.chain_table.values())
            if still_serving or controller.ring.virtual_nodes_of(name):
                controller._log(f"migration: {name} still serves chains, "
                                f"not decommissioned")
                continue
            controller.decommission_switch(name)
        self.report.finished_at = self.sim.now
        self.report.done = True
        controller._log(f"migration finished: {self.report.summary()}")
        controller._emit("migration_finish",
                         committed=len(self.report.committed_steps()),
                         keys_moved=self.report.total_keys_moved(),
                         aborted=self.report.aborted)

    def _rehome_stragglers(self) -> None:
        """Directly move keys still registered to a retiring group.

        Keys inserted into a retiring segment after its absorbing step
        committed (control-plane inserts race the plan) are copied to their
        target chain and re-registered in one control-plane action, so the
        migration always converges to the target layout.
        """
        controller = self.controller
        failed = controller.failed_switches
        retiring = [vid for vid in controller.ring.vnodes
                    if vid not in self.plan.target_ring.vnodes]
        if not retiring:
            return
        # Destinations come from the live ring minus every retiring vnode:
        # that is exactly how the directory will route once the vnodes are
        # removed (the final target ring may contain vnodes whose steps
        # were skipped, e.g. a joiner that died).
        probe = controller.ring.clone()
        for vid in retiring:
            probe.remove_vnode(vid)
        for vnode_id in retiring:
            keys = sorted(controller.keys_by_vgroup.get(vnode_id, set()))
            source_info = controller.chain_table.get(vnode_id)
            if not keys or source_info is None:
                continue
            live_source = [s for s in source_info.switches if s not in failed]
            if not live_source:
                continue
            by_target: Dict[int, List[bytes]] = {}
            for key in keys:
                by_target.setdefault(probe.vgroup_for_key(key), []).append(key)
            for target_vg, target_keys in sorted(by_target.items()):
                target_info = controller.chain_table.get(target_vg)
                if target_info is None:
                    continue
                target_chain = [s for s in target_info.switches if s not in failed]
                if not target_chain:
                    continue
                controller.copy_group_state(live_source[-1], target_chain,
                                            target_keys)
                for key in target_keys:
                    controller.keys_by_vgroup[vnode_id].discard(key)
                    controller.keys_by_vgroup.setdefault(target_vg,
                                                         set()).add(key)
                controller.bump_group_epoch(target_vg)
                controller.bump_group_epoch(vnode_id)
                controller._log(
                    f"migration: re-homed {len(target_keys)} straggler keys "
                    f"from retiring vgroup {vnode_id} to {target_vg}")

    def _probe_ring(self, step: MigrationStep) -> ConsistentHashRing:
        """The live ring as it will look immediately after this step's
        commit (its vnode inserted, its absorbed vnodes removed).

        Key movement must be computed against this *prospective live* ring,
        not the final target ring: with only some new vnodes committed, a
        new vnode's live segment is larger than its final one (it also
        covers segments of not-yet-committed vnodes), and every key the
        directory will route to the group after the flip must have been
        copied -- later steps then pull those keys onward.
        """
        ring = self.controller.ring
        needs_insert = (step.new_vnode is not None
                        and step.new_vnode.vnode_id not in ring.vnodes)
        absorbed = [v for v in step.absorbed_vnodes if v.vnode_id in ring.vnodes]
        if not needs_insert and not absorbed:
            return ring
        probe = ring.clone()
        if needs_insert:
            probe.insert_vnode(step.new_vnode)
        for vnode in absorbed:
            probe.remove_vnode(vnode.vnode_id)
        return probe

    def _moving_keys(self, step: MigrationStep) -> Dict[int, List[bytes]]:
        """Keys that must re-home to ``step.vgroup``, grouped by their
        *current* group -- recomputed at freeze and commit time (against
        the prospective live ring) so keys inserted after planning are not
        stranded on retired chains."""
        probe = self._probe_ring(step)
        moving: Dict[int, List[bytes]] = {}
        for vgroup, keys in self.controller.keys_by_vgroup.items():
            if vgroup == step.vgroup or not keys:
                continue
            for key in keys:
                if probe.vgroup_for_key(key) == step.vgroup:
                    moving.setdefault(vgroup, []).append(key)
        return moving

    def _live_target_chain(self, step: MigrationStep) -> List[str]:
        """The step's target chain re-derived against current failures."""
        failed = self.controller.failed_switches
        chain = self.plan.target_ring.chain_for_vgroup(step.vgroup, exclude=failed)
        return chain

    def _frozen_groups(self, step: MigrationStep, sources: Sequence[int]) -> List[int]:
        groups = set(sources)
        if step.vgroup in self.controller.chain_table:
            groups.add(step.vgroup)
        for vnode in step.absorbed_vnodes:
            groups.add(vnode.vnode_id)
        return sorted(groups)

    def _set_freeze(self, groups: Sequence[int], frozen: bool) -> None:
        for program in self.controller.programs.values():
            for vgroup in groups:
                if frozen:
                    program.freeze_vgroup_writes(vgroup)
                else:
                    program.unfreeze_vgroup_writes(vgroup)

    def _run_step(self, index: int) -> None:
        if index >= len(self.plan.steps):
            self._finish()
            return
        if self._abort_requested:
            for step in self.plan.steps[index:]:
                report = StepReport(vgroup=step.vgroup, kind=step.kind,
                                    target_chain=list(step.target_chain),
                                    status="skipped", detail="migration aborted")
                self.report.steps.append(report)
                self._notify(report)
            self.report.aborted = True
            self._finish()
            return
        step = self.plan.steps[index]
        self._when_recovery_idle(lambda: self._begin_step(step, index))

    def _notify(self, report: StepReport) -> None:
        for observer in self.observers:
            observer(report)

    def _skip(self, step: MigrationStep, index: int, reason: str,
              report: Optional[StepReport] = None,
              frozen: Optional[List[int]] = None) -> None:
        if frozen:
            self._set_freeze(frozen, False)
        if report is None:
            report = StepReport(vgroup=step.vgroup, kind=step.kind,
                                target_chain=list(step.target_chain))
            self.report.steps.append(report)
        report.status = "skipped"
        report.detail = reason
        if report.freeze_started and not report.freeze_ended:
            report.freeze_ended = self.sim.now
        self.controller._log(f"migration vgroup {step.vgroup} skipped: {reason}")
        self.controller._emit("migration_skip", vgroup=step.vgroup,
                              reason=reason)
        self._notify(report)
        self._run_step(index + 1)

    def _begin_step(self, step: MigrationStep, index: int) -> None:
        controller = self.controller
        cfg = self.config
        report = StepReport(vgroup=step.vgroup, kind=step.kind,
                            target_chain=list(step.target_chain))
        self.report.steps.append(report)

        if step.new_vnode is not None and step.new_vnode.switch in controller.failed_switches:
            self._skip(step, index, f"joining switch {step.new_vnode.switch} failed",
                       report=report)
            return
        target_chain = self._live_target_chain(step)
        if not target_chain:
            self._skip(step, index, "no live switch in the target chain", report=report)
            return
        report.target_chain = list(target_chain)

        # Size the copy from the current registrations.  The same scan also
        # yields the groups to freeze; only the commit-time rescan must be
        # authoritative (it runs under the freeze and catches keys inserted
        # mid-step), so the scan is not repeated at the freeze point.
        moving = self._moving_keys(step)
        own_keys = controller.keys_by_vgroup.get(step.vgroup, set())
        num_items = len(own_keys) + sum(len(keys) for keys in moving.values())
        sync_time = self._sync_duration(num_items)
        presync_time = sync_time * cfg.presync_fraction
        delta_time = sync_time - presync_time

        def freeze_point() -> None:
            frozen = self._frozen_groups(step, sorted(moving))
            self._set_freeze(frozen, True)
            report.freeze_started = self.sim.now
            self.sim.schedule(cfg.settle_delay + delta_time,
                              lambda: self._when_recovery_idle(
                                  lambda: self._commit_step(step, index, report,
                                                            frozen)))

        # Step 1: pre-synchronization; availability unaffected.
        self.sim.schedule(presync_time,
                          lambda: self._when_recovery_idle(freeze_point))

    def _commit_step(self, step: MigrationStep, index: int, report: StepReport,
                     frozen: List[int]) -> None:
        """Phase 2: the atomic flip.  Runs in a single simulator event, so
        agents can never observe a half-updated directory."""
        controller = self.controller
        failed = controller.failed_switches

        if (step.new_vnode is not None
                and step.new_vnode.switch in failed):
            self._skip(step, index,
                       f"joining switch {step.new_vnode.switch} failed mid-migration",
                       report=report, frozen=frozen)
            return
        target_chain = self._live_target_chain(step)
        if not target_chain:
            self._skip(step, index, "target chain lost mid-migration",
                       report=report, frozen=frozen)
            return
        report.target_chain = list(target_chain)

        # Authoritative membership scan under the freeze.
        moving = self._moving_keys(step)
        own_keys = sorted(controller.keys_by_vgroup.get(step.vgroup, set()))

        gc_targets: Dict[str, Set[bytes]] = {}

        # Copy the group's own keys when its membership changes.  Every
        # target member is overwritten with the frozen tail state: the tail
        # holds exactly the acknowledged writes, so squashing a partial,
        # never-acknowledged write on an overlapping member preserves
        # Invariant 1 across the commit.
        current_info = controller.chain_table.get(step.vgroup)
        if (current_info is not None and own_keys
                and list(current_info.switches) != target_chain):
            live_current = [s for s in current_info.switches if s not in failed]
            if not live_current:
                self._skip(step, index, "no live replica holds the group's state",
                           report=report, frozen=frozen)
                return
            ref = live_current[-1]
            report.items_copied += controller.copy_group_state(ref, target_chain,
                                                              own_keys)
            for name in current_info.switches:
                if name not in target_chain:
                    gc_targets.setdefault(name, set()).update(own_keys)

        # Copy moved keys from each source group's frozen tail.
        session_floor = 0
        moved_keys: List[Tuple[int, bytes]] = []
        for source_vg, keys in sorted(moving.items()):
            source_info = controller.chain_table.get(source_vg)
            if source_info is None:
                continue
            live_source = [s for s in source_info.switches if s not in failed]
            if not live_source:
                controller._log(f"migration vgroup {step.vgroup}: source "
                                f"{source_vg} has no live replica; its keys stay")
                continue
            ref = live_source[-1]
            report.items_copied += controller.copy_group_state(
                ref, target_chain, sorted(keys))
            session_floor = max(session_floor,
                                controller.sessions.get(source_vg, 0))
            for key in keys:
                moved_keys.append((source_vg, key))
            for name in source_info.switches:
                if name not in target_chain:
                    gc_targets.setdefault(name, set()).update(keys)

        # ---- the atomic flip ---- #
        old_head = current_info.switches[0] if current_info is not None else None
        if step.new_vnode is not None:
            controller.ring.insert_vnode(step.new_vnode)
        for source_vg, key in moved_keys:
            controller.keys_by_vgroup.get(source_vg, set()).discard(key)
            controller.keys_by_vgroup.setdefault(step.vgroup, set()).add(key)
        controller.chain_table[step.vgroup] = ChainInfo(step.vgroup,
                                                        list(target_chain))
        if old_head != target_chain[0] or moved_keys:
            controller.bump_group_session(step.vgroup, target_chain[0],
                                          floor=session_floor)
        controller.bump_group_epoch(step.vgroup)
        for source_vg in sorted(moving):
            controller.bump_group_epoch(source_vg)
        self._retire_drained_vnodes()
        self._set_freeze(frozen, False)
        report.freeze_ended = self.sim.now
        report.committed_at = self.sim.now
        report.keys_moved = len(moved_keys)
        report.status = "committed"
        controller._log(
            f"migration vgroup {step.vgroup} committed: chain -> {target_chain}, "
            f"{report.keys_moved} keys moved, "
            f"freeze {report.freeze_window * 1e3:.2f}ms")
        controller._emit("migration_step", vgroup=step.vgroup,
                         keys_moved=report.keys_moved,
                         freeze=report.freeze_window)

        if gc_targets:
            self.sim.schedule(self.config.gc_delay,
                              lambda: self._garbage_collect(gc_targets))
        self._notify(report)
        self._run_step(index + 1)

    def _garbage_collect(self, gc_targets: Dict[str, Set[bytes]]) -> None:
        """Reclaim moved keys from switches that no longer serve them.

        Re-validated against the *current* directory: a concurrent failure
        recovery may have spliced a switch back into a key's chain, in
        which case its copy is load-bearing and stays.
        """
        controller = self.controller
        for name, keys in gc_targets.items():
            store = controller.stores.get(name)
            if store is None:
                continue
            for key in keys:
                info = controller.chain_table.get(
                    controller.ring.vgroup_for_key(key))
                if info is not None and name in info.switches:
                    continue
                store.remove_key(key)


def migrate(controller: NetChainController, target_members: Sequence[str],
            config: Optional[ReconfigConfig] = None) -> MigrationCoordinator:
    """Plan and start a live migration to ``target_members``.

    Returns the started coordinator; run the simulator until
    ``coordinator.done`` and read ``coordinator.report``.
    """
    plan = ReconfigPlanner(controller).plan(target_members)
    coordinator = MigrationCoordinator(controller, plan, config=config)
    coordinator.start()
    return coordinator
