"""NetChain as an accelerator in front of a server-based store (Section 6).

The paper suggests a hybrid deployment: "The key space is partitioned to
store data in the network and the servers separately.  NetChain can be used
to store hot data with small value size, and servers store big and less
popular data."  This module implements that tiering:

* :class:`HybridPolicy` decides, per key, whether it belongs in the network
  tier (small values, hot keys, explicitly pinned keys) or in the server
  tier (everything else, and any value above the switch pipeline limit).
* :class:`HybridStore` exposes one key-value API and routes each operation
  to the NetChain agent or to the backing server store accordingly,
  promoting keys between tiers when their size or popularity changes.

The server tier is pluggable; any object with ``read(key) / write(key,
value)`` methods works.  :class:`ZooKeeperBackend` adapts the ZooKeeper
baseline client so the hybrid can be evaluated against the same systems the
paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.core.agent import NetChainAgent, QueryResult
from repro.core.client import KVClient, KVFuture, KVResult
from repro.core.hotkeys import HotKeySketch, SketchConfig
from repro.core.protocol import MAX_PROTOTYPE_VALUE_BYTES, QueryStatus, normalize_value


@dataclass
class HybridPolicy:
    """Tiering policy: which keys live in the network.

    Attributes:
        max_network_value_bytes: values larger than this always live on the
            servers (the switch pipeline cannot carry them at line rate).
        promote_after_reads: a server-tier key read at least this many times
            is promoted into the network tier (if its value fits).
        pinned: keys that must always be served from the network
            (configuration parameters, locks, barriers).
    """

    max_network_value_bytes: int = MAX_PROTOTYPE_VALUE_BYTES
    promote_after_reads: int = 16
    pinned: Set[bytes] = field(default_factory=set)

    def pin(self, key) -> None:
        """Force a key into the network tier."""
        self.pinned.add(_raw(key))

    def is_pinned(self, key) -> bool:
        return _raw(key) in self.pinned

    def fits_in_network(self, value: bytes) -> bool:
        return len(value) <= self.max_network_value_bytes


def _raw(key) -> bytes:
    return key if isinstance(key, bytes) else str(key).encode("utf-8")


class ZooKeeperBackend:
    """Adapter exposing the ZooKeeper baseline as a hybrid server tier."""

    def __init__(self, client, prefix: str = "/hybrid") -> None:
        self.client = client
        self.prefix = prefix
        self.client.ensure_path(prefix)

    def _path(self, key) -> str:
        return f"{self.prefix}/{_raw(key).decode('utf-8', errors='replace')}"

    def read(self, key) -> Optional[bytes]:
        result = self.client.get(self._path(key))
        return result.data if result.ok else None

    def write(self, key, value: bytes) -> bool:
        path = self._path(key)
        if self.client.exists(path).exists:
            return self.client.set(path, value).ok
        return self.client.create(path, value).ok

    def delete(self, key) -> bool:
        return self.client.delete(self._path(key)).ok


class DictBackend:
    """A trivial in-process server tier, useful in tests and examples."""

    def __init__(self) -> None:
        self.data: Dict[bytes, bytes] = {}

    def read(self, key) -> Optional[bytes]:
        return self.data.get(_raw(key))

    def write(self, key, value: bytes) -> bool:
        self.data[_raw(key)] = value
        return True

    def delete(self, key) -> bool:
        return self.data.pop(_raw(key), None) is not None


@dataclass
class HybridStats:
    """Counters describing where operations were served."""

    network_reads: int = 0
    network_writes: int = 0
    server_reads: int = 0
    server_writes: int = 0
    promotions: int = 0
    demotions: int = 0

    def network_fraction(self) -> float:
        total = (self.network_reads + self.network_writes
                 + self.server_reads + self.server_writes)
        if total == 0:
            return 0.0
        return (self.network_reads + self.network_writes) / total


class HybridStore:
    """One key-value API over the network tier plus a server tier."""

    def __init__(self, agent: NetChainAgent, backend,
                 policy: Optional[HybridPolicy] = None,
                 popularity: Optional[HotKeySketch] = None) -> None:
        self.agent = agent
        self.backend = backend
        self.policy = policy or HybridPolicy()
        self.stats = HybridStats()
        self._network_keys: Set[bytes] = set()
        #: Popularity detector behind ``promote_after_reads``: the same
        #: sketch + top-k structure the hot-key tier installs on switches
        #: (:mod:`repro.core.hotkeys`), host-side here.  Deployments that
        #: enable the tier pass theirs in so both layers share one view of
        #: key popularity.
        self.popularity = popularity or HotKeySketch(
            SketchConfig(rows=2, width=1024, topk=8))
        #: Keys with an asynchronous promotion in flight (HybridKVClient).
        self._promoting: Set[bytes] = set()
        #: Server-tier write generation per key; an async promotion aborts
        #: when the generation moved underneath it (HybridKVClient).
        self._server_write_gen: Dict[bytes, int] = {}

    # ------------------------------------------------------------------ #
    # Placement bookkeeping.
    # ------------------------------------------------------------------ #

    def in_network(self, key) -> bool:
        """Whether the key is currently served from the network tier."""
        return _raw(key) in self._network_keys or self.policy.is_pinned(key)

    def network_keys(self) -> Set[bytes]:
        """Keys currently placed in switches."""
        return set(self._network_keys)

    def _promote(self, key, value: bytes) -> None:
        raw = _raw(key)
        self.agent.insert_sync(key, value)
        # The key now lives in the network tier only: leaving the server
        # copy behind would let a later fallback read serve a stale value
        # once network writes move past it.
        self.backend.delete(key)
        self._network_keys.add(raw)
        self.stats.promotions += 1

    def _demote(self, key, value: bytes) -> None:
        raw = _raw(key)
        self.backend.write(key, value)
        self.agent.delete_sync(key)
        self.agent.directory.garbage_collect(key)
        self._network_keys.discard(raw)
        self.stats.demotions += 1

    # ------------------------------------------------------------------ #
    # Key-value API.
    # ------------------------------------------------------------------ #

    def write(self, key, value) -> bool:
        """Write a value, placing (or re-placing) the key per the policy."""
        value = normalize_value(value)
        fits = self.policy.fits_in_network(value)
        if self.policy.is_pinned(key) and not fits:
            raise ValueError(f"pinned key {key!r} has a value larger than the "
                             f"network tier supports ({len(value)} bytes)")
        if self.in_network(key):
            if fits:
                result = self._network_write(key, value)
                return result.ok
            # The value outgrew the pipeline limit: demote to the servers.
            self._demote(key, value)
            self.stats.server_writes += 1
            return True
        if self.policy.is_pinned(key) and fits:
            self._promote(key, value)
            self.stats.network_writes += 1
            return True
        self.stats.server_writes += 1
        return self.backend.write(key, value)

    def _network_write(self, key, value: bytes) -> QueryResult:
        result = self.agent.write_sync(key, value)
        if result.status == QueryStatus.KEY_NOT_FOUND:
            result = self.agent.insert_sync(key, value)
        if result.ok:
            self._network_keys.add(_raw(key))
            self.stats.network_writes += 1
        return result

    def read(self, key) -> Optional[bytes]:
        """Read a value from whichever tier currently holds it."""
        raw = _raw(key)
        if self.in_network(key):
            result = self.agent.read_sync(key)
            if result.ok:
                self.stats.network_reads += 1
                return result.value
            # Not actually resident (e.g. pinned but never written).
            self._network_keys.discard(raw)
        value = self.backend.read(key)
        self.stats.server_reads += 1
        if value is None:
            return None
        # Popularity-based promotion of small values (the "hot data" case).
        count = self.popularity.record(raw)
        if (count >= self.policy.promote_after_reads
                and self.policy.fits_in_network(value)):
            self._promote(key, value)
            self.popularity.forget(raw)
        return value

    def delete(self, key) -> bool:
        """Delete a key from both tiers."""
        raw = _raw(key)
        deleted = False
        if raw in self._network_keys:
            self.agent.delete_sync(key)
            self.agent.directory.garbage_collect(key)
            self._network_keys.discard(raw)
            deleted = True
        if self.backend.delete(key):
            deleted = True
        self.popularity.forget(raw)
        return deleted

    def cas(self, key, expected, new_value) -> bool:
        """Compare-and-swap; only supported for network-resident keys
        (locks and configuration parameters are pinned there)."""
        if not self.in_network(key):
            raise ValueError(f"CAS requires a network-resident key: {key!r}")
        result = self.agent.cas_sync(key, expected, new_value)
        self.stats.network_writes += 1
        return result.ok and result.status == QueryStatus.OK


class HybridKVClient(KVClient):
    """The asynchronous :class:`~repro.core.client.KVClient` face of a
    :class:`HybridStore`.

    The synchronous :class:`HybridStore` API drives the simulator from
    inside each call, which closed-loop load clients and scenarios must
    not do (the event loop is already running).  This client applies the
    same tiering policy purely with futures: network-tier operations ride
    the agent's futures, server-tier operations apply immediately and
    resolve after a modelled server round trip, and popularity promotions
    run in the background.  A promotion aborts itself when a server-tier
    write races it (the write-generation guard), so the two tiers never
    disagree about a key's latest value.

    Several clients (one per host agent) can share one store: placement,
    read counts and statistics all live on the store.
    """

    backend = "hybrid"

    def __init__(self, store: HybridStore, agent: Optional[NetChainAgent] = None,
                 server_delay: float = 80e-6) -> None:
        """``server_delay`` models the server tier's round trip (two kernel
        stack traversals); the in-process dict lookup itself is free."""
        self.store = store
        self.agent = agent or store.agent
        self.sim = self.agent.sim
        self.server_delay = server_delay

    # -- helpers --------------------------------------------------------- #

    def _bump_gen(self, raw: bytes) -> None:
        self.store._server_write_gen[raw] = \
            self.store._server_write_gen.get(raw, 0) + 1

    def _server_result(self, future: KVFuture, op: str, raw: bytes, *,
                       ok: bool, value: bytes = b"", not_found: bool = False,
                       error: Optional[str] = None) -> None:
        started = self.sim.now

        def finish() -> None:
            future.resolve(KVResult(ok=ok, op=op, key=raw, value=value,
                                    not_found=not_found, error=error,
                                    latency=self.sim.now - started,
                                    backend=self.backend))

        self.sim.schedule(self.server_delay, finish)

    def _promote_async(self, key, raw: bytes, value: bytes) -> None:
        store = self.store
        store._promoting.add(raw)
        generation = store._server_write_gen.get(raw, 0)

        def on_insert(result: KVResult) -> None:
            store._promoting.discard(raw)
            if not result.ok:
                return
            if store._server_write_gen.get(raw, 0) != generation:
                # A server-tier write raced the promotion: the freshly
                # installed network copy is stale.  Drop it.
                self.agent.delete(key).then(
                    lambda _r: self.agent.directory.garbage_collect(key))
                return
            # Tier exclusivity: remove the server copy so a fallback read
            # after a network failure cannot serve (or re-promote) a value
            # that network writes have since moved past.
            store.backend.delete(key)
            store._network_keys.add(raw)
            store.popularity.forget(raw)
            store.stats.promotions += 1

        self.agent.insert(key, value).then(on_insert)

    # -- the five protocol operations ------------------------------------ #

    def read(self, key) -> KVFuture:
        raw = _raw(key)
        store = self.store
        future = KVFuture(self.sim, op="read", key=raw)

        def server_read() -> None:
            value = store.backend.read(key)
            store.stats.server_reads += 1
            self._server_result(future, "read", raw, ok=value is not None,
                                value=value or b"", not_found=value is None,
                                error=None if value is not None else "key_not_found")
            if value is None:
                return
            count = store.popularity.record(raw)
            if (count >= store.policy.promote_after_reads
                    and store.policy.fits_in_network(value)
                    and raw not in store._promoting):
                self._promote_async(key, raw, value)

        if store.in_network(key):
            def on_net(result: KVResult) -> None:
                if result.ok:
                    store.stats.network_reads += 1
                    future.resolve(result)
                else:
                    # Not actually resident (e.g. pinned but never written).
                    store._network_keys.discard(raw)
                    server_read()
            self.agent.read(key).then(on_net)
        else:
            server_read()
        return future

    def write(self, key, value) -> KVFuture:
        raw = _raw(key)
        value = normalize_value(value)
        store = self.store
        future = KVFuture(self.sim, op="write", key=raw)
        fits = store.policy.fits_in_network(value)

        if store.policy.is_pinned(key) and not fits:
            future.resolve(KVResult(ok=False, op="write", key=raw,
                                    error="pinned key's value exceeds the "
                                          "network tier limit",
                                    backend=self.backend))
            return future

        def server_write() -> None:
            self._bump_gen(raw)
            store.backend.write(key, value)
            store.stats.server_writes += 1
            self._server_result(future, "write", raw, ok=True, value=value)

        def network_install() -> None:
            def on_insert(result: KVResult) -> None:
                if result.ok:
                    # Tier exclusivity: drop any pre-pin server copy.
                    store.backend.delete(key)
                    store._network_keys.add(raw)
                    store.stats.network_writes += 1
                future.resolve(result)
            self.agent.insert(key, value).then(on_insert)

        if store.in_network(key):
            if fits:
                def on_write(result: KVResult) -> None:
                    if result.ok:
                        store._network_keys.add(raw)
                        store.stats.network_writes += 1
                        future.resolve(result)
                    elif result.not_found:
                        network_install()
                    else:
                        future.resolve(result)
                self.agent.write(key, value).then(on_write)
            else:
                # The value outgrew the pipeline limit: demote.
                self._bump_gen(raw)
                store.backend.write(key, value)
                store.stats.server_writes += 1
                started = self.sim.now

                def on_delete(_result: KVResult) -> None:
                    self.agent.directory.garbage_collect(key)
                    store._network_keys.discard(raw)
                    store.stats.demotions += 1
                    future.resolve(KVResult(ok=True, op="write", key=raw,
                                            value=value,
                                            latency=self.sim.now - started,
                                            backend=self.backend))
                self.agent.delete(key).then(on_delete)
        elif store.policy.is_pinned(key) and fits:
            network_install()
        else:
            server_write()
        return future

    def cas(self, key, expected, new_value) -> KVFuture:
        raw = _raw(key)
        store = self.store
        future = KVFuture(self.sim, op="cas", key=raw)
        if not store.in_network(key):
            future.resolve(KVResult(ok=False, op="cas", key=raw,
                                    error="cas requires a network-resident key",
                                    backend=self.backend))
            return future

        def on_cas(result: KVResult) -> None:
            store.stats.network_writes += 1
            future.resolve(result)

        self.agent.cas(key, expected, new_value).then(on_cas)
        return future

    def delete(self, key) -> KVFuture:
        raw = _raw(key)
        store = self.store
        future = KVFuture(self.sim, op="delete", key=raw)
        self._bump_gen(raw)
        server_deleted = store.backend.delete(key)
        store.popularity.forget(raw)
        if raw in store._network_keys:
            def on_delete(result: KVResult) -> None:
                self.agent.directory.garbage_collect(key)
                store._network_keys.discard(raw)
                deleted = result.ok or server_deleted
                future.resolve(KVResult(ok=deleted, op="delete", key=raw,
                                        not_found=not deleted,
                                        latency=result.latency,
                                        backend=self.backend, raw=result.raw))
            self.agent.delete(key).then(on_delete)
        else:
            self._server_result(future, "delete", raw, ok=server_deleted,
                                not_found=not server_deleted,
                                error=None if server_deleted else "key_not_found")
        return future

    def insert(self, key, value=b"") -> KVFuture:
        """Placement-aware create: pinned small values go to the network
        tier, everything else to the servers (same rule as writes)."""
        return self.write(key, value)
