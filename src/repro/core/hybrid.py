"""NetChain as an accelerator in front of a server-based store (Section 6).

The paper suggests a hybrid deployment: "The key space is partitioned to
store data in the network and the servers separately.  NetChain can be used
to store hot data with small value size, and servers store big and less
popular data."  This module implements that tiering:

* :class:`HybridPolicy` decides, per key, whether it belongs in the network
  tier (small values, hot keys, explicitly pinned keys) or in the server
  tier (everything else, and any value above the switch pipeline limit).
* :class:`HybridStore` exposes one key-value API and routes each operation
  to the NetChain agent or to the backing server store accordingly,
  promoting keys between tiers when their size or popularity changes.

The server tier is pluggable; any object with ``read(key) / write(key,
value)`` methods works.  :class:`ZooKeeperBackend` adapts the ZooKeeper
baseline client so the hybrid can be evaluated against the same systems the
paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.core.agent import NetChainAgent, QueryResult
from repro.core.protocol import MAX_PROTOTYPE_VALUE_BYTES, QueryStatus, normalize_value


@dataclass
class HybridPolicy:
    """Tiering policy: which keys live in the network.

    Attributes:
        max_network_value_bytes: values larger than this always live on the
            servers (the switch pipeline cannot carry them at line rate).
        promote_after_reads: a server-tier key read at least this many times
            is promoted into the network tier (if its value fits).
        pinned: keys that must always be served from the network
            (configuration parameters, locks, barriers).
    """

    max_network_value_bytes: int = MAX_PROTOTYPE_VALUE_BYTES
    promote_after_reads: int = 16
    pinned: Set[bytes] = field(default_factory=set)

    def pin(self, key) -> None:
        """Force a key into the network tier."""
        self.pinned.add(_raw(key))

    def is_pinned(self, key) -> bool:
        return _raw(key) in self.pinned

    def fits_in_network(self, value: bytes) -> bool:
        return len(value) <= self.max_network_value_bytes


def _raw(key) -> bytes:
    return key if isinstance(key, bytes) else str(key).encode("utf-8")


class ZooKeeperBackend:
    """Adapter exposing the ZooKeeper baseline as a hybrid server tier."""

    def __init__(self, client, prefix: str = "/hybrid") -> None:
        self.client = client
        self.prefix = prefix
        self.client.ensure_path(prefix)

    def _path(self, key) -> str:
        return f"{self.prefix}/{_raw(key).decode('utf-8', errors='replace')}"

    def read(self, key) -> Optional[bytes]:
        result = self.client.get(self._path(key))
        return result.data if result.ok else None

    def write(self, key, value: bytes) -> bool:
        path = self._path(key)
        if self.client.exists(path).exists:
            return self.client.set(path, value).ok
        return self.client.create(path, value).ok

    def delete(self, key) -> bool:
        return self.client.delete(self._path(key)).ok


class DictBackend:
    """A trivial in-process server tier, useful in tests and examples."""

    def __init__(self) -> None:
        self.data: Dict[bytes, bytes] = {}

    def read(self, key) -> Optional[bytes]:
        return self.data.get(_raw(key))

    def write(self, key, value: bytes) -> bool:
        self.data[_raw(key)] = value
        return True

    def delete(self, key) -> bool:
        return self.data.pop(_raw(key), None) is not None


@dataclass
class HybridStats:
    """Counters describing where operations were served."""

    network_reads: int = 0
    network_writes: int = 0
    server_reads: int = 0
    server_writes: int = 0
    promotions: int = 0
    demotions: int = 0

    def network_fraction(self) -> float:
        total = (self.network_reads + self.network_writes
                 + self.server_reads + self.server_writes)
        if total == 0:
            return 0.0
        return (self.network_reads + self.network_writes) / total


class HybridStore:
    """One key-value API over the network tier plus a server tier."""

    def __init__(self, agent: NetChainAgent, backend,
                 policy: Optional[HybridPolicy] = None) -> None:
        self.agent = agent
        self.backend = backend
        self.policy = policy or HybridPolicy()
        self.stats = HybridStats()
        self._network_keys: Set[bytes] = set()
        self._read_counts: Dict[bytes, int] = {}

    # ------------------------------------------------------------------ #
    # Placement bookkeeping.
    # ------------------------------------------------------------------ #

    def in_network(self, key) -> bool:
        """Whether the key is currently served from the network tier."""
        return _raw(key) in self._network_keys or self.policy.is_pinned(key)

    def network_keys(self) -> Set[bytes]:
        """Keys currently placed in switches."""
        return set(self._network_keys)

    def _promote(self, key, value: bytes) -> None:
        raw = _raw(key)
        self.agent.insert_sync(key, value)
        self._network_keys.add(raw)
        self.stats.promotions += 1

    def _demote(self, key, value: bytes) -> None:
        raw = _raw(key)
        self.backend.write(key, value)
        self.agent.delete_sync(key)
        self.agent.directory.garbage_collect(key)
        self._network_keys.discard(raw)
        self.stats.demotions += 1

    # ------------------------------------------------------------------ #
    # Key-value API.
    # ------------------------------------------------------------------ #

    def write(self, key, value) -> bool:
        """Write a value, placing (or re-placing) the key per the policy."""
        value = normalize_value(value)
        fits = self.policy.fits_in_network(value)
        if self.policy.is_pinned(key) and not fits:
            raise ValueError(f"pinned key {key!r} has a value larger than the "
                             f"network tier supports ({len(value)} bytes)")
        if self.in_network(key):
            if fits:
                result = self._network_write(key, value)
                return result.ok
            # The value outgrew the pipeline limit: demote to the servers.
            self._demote(key, value)
            self.stats.server_writes += 1
            return True
        if self.policy.is_pinned(key) and fits:
            self._promote(key, value)
            self.stats.network_writes += 1
            return True
        self.stats.server_writes += 1
        return self.backend.write(key, value)

    def _network_write(self, key, value: bytes) -> QueryResult:
        result = self.agent.write_sync(key, value)
        if result.status == QueryStatus.KEY_NOT_FOUND:
            result = self.agent.insert_sync(key, value)
        if result.ok:
            self._network_keys.add(_raw(key))
            self.stats.network_writes += 1
        return result

    def read(self, key) -> Optional[bytes]:
        """Read a value from whichever tier currently holds it."""
        raw = _raw(key)
        if self.in_network(key):
            result = self.agent.read_sync(key)
            if result.ok:
                self.stats.network_reads += 1
                return result.value
            # Not actually resident (e.g. pinned but never written).
            self._network_keys.discard(raw)
        value = self.backend.read(key)
        self.stats.server_reads += 1
        if value is None:
            return None
        # Popularity-based promotion of small values (the "hot data" case).
        count = self._read_counts.get(raw, 0) + 1
        self._read_counts[raw] = count
        if (count >= self.policy.promote_after_reads
                and self.policy.fits_in_network(value)):
            self._promote(key, value)
            self._read_counts.pop(raw, None)
        return value

    def delete(self, key) -> bool:
        """Delete a key from both tiers."""
        raw = _raw(key)
        deleted = False
        if raw in self._network_keys:
            self.agent.delete_sync(key)
            self.agent.directory.garbage_collect(key)
            self._network_keys.discard(raw)
            deleted = True
        if self.backend.delete(key):
            deleted = True
        self._read_counts.pop(raw, None)
        return deleted

    def cas(self, key, expected, new_value) -> bool:
        """Compare-and-swap; only supported for network-resident keys
        (locks and configuration parameters are pinned there)."""
        if not self.in_network(key):
            raise ValueError(f"CAS requires a network-resident key: {key!r}")
        result = self.agent.cas_sync(key, expected, new_value)
        self.stats.network_writes += 1
        return result.ok and result.status == QueryStatus.OK
