"""Seeded synthetic operation histories, linearizable by construction.

The streaming checker (:mod:`repro.core.history_store`) and the in-memory
checker (:mod:`repro.core.history`) must agree on *every* history, not
just the ones the simulator happens to produce.  This module generates
adversarial concurrent histories with a known ground truth:

* Operations are applied to a sequential register/CAS specification at a
  *linearization instant* drawn inside each operation's real-time window,
  and their responses are taken from that sequential application -- so by
  construction a valid linearization exists and the checkers must say OK.
* ``corruption_rate`` flips completed reads to values that were never
  written, destroying every linearization of the affected key -- so the
  checkers must say NOT OK, and must agree on which keys violate.
* ``timeout_rate`` makes operations ambiguous (lost replies); half of
  those take effect anyway, half never do -- the latitude the checker must
  grant either way.

Generation is event-driven with bounded memory: per-client clocks advance
monotonically, pending linearization instants sit in a heap, and an
operation is emitted (response filled in) as soon as its instant falls
behind every client's clock -- no future invocation can precede it.  The
generator therefore streams histories of any size (the CI
``verify-at-scale`` job pushes ~1M operations through a spilled run) while
holding only in-flight operations.

Everything is driven by one :class:`random.Random` seed; the same
parameters replay byte-identically.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.core.history import MISSING, HistoryOp

#: Simulated client-side timeout: ambiguous ops "return" (locally) this
#: long after invocation, with ``timed_out`` set.
TIMEOUT_AFTER = 5.0


def initial_values(keys: int) -> Dict[bytes, Optional[bytes]]:
    """The deterministic preloaded state for a ``keys``-key history."""
    return {_key_name(k): b"init-%d" % k for k in range(keys)}


def _key_name(index: int) -> bytes:
    return b"k%d" % index


@dataclass
class GeneratedHistory:
    """A fully materialized synthetic history plus its ground truth."""

    ops: List[HistoryOp]
    initial: Dict[bytes, Optional[bytes]]
    #: Keys whose reads were corrupted -- exactly the keys a correct
    #: checker must flag (no corruption => linearizable).
    corrupted_keys: List[bytes] = field(default_factory=list)

    @property
    def expect_ok(self) -> bool:
        return not self.corrupted_keys


def iter_history(seed: int, *, clients: int = 4, keys: int = 8,
                 ops: int = 1000, timeout_rate: float = 0.02,
                 corruption_rate: float = 0.0, cas_rate: float = 0.15,
                 delete_rate: float = 0.05,
                 corrupted_keys: Optional[List[bytes]] = None
                 ) -> Iterator[HistoryOp]:
    """Stream a seeded synthetic history, in linearization order.

    Emitted operations have their responses filled in (completed), except
    ambiguous ones which carry ``timed_out``.  Pass ``corrupted_keys`` (a
    list) to collect which keys had a read corrupted.
    """
    rng = random.Random(seed)
    state: Dict[bytes, Optional[bytes]] = dict(initial_values(keys))
    corrupted: set = set()
    # (next-free-time, client-id): pop the earliest-free client each step.
    clocks = [(0.0, c) for c in range(clients)]
    heapq.heapify(clocks)
    # (linearization instant, op_id, op, takes_effect): applied -- response
    # computed against the sequential state -- once every client clock has
    # passed the instant, so no future invocation can be ordered before it.
    pending: List = []
    issued = 0

    def apply(op: HistoryOp, takes_effect: bool) -> None:
        key = op.key
        value = state.get(key, MISSING)
        if op.ambiguous:
            # Lost reply: the response fields stay "timed out"; only the
            # state effect depends on whether the op actually landed.
            if not takes_effect:
                return
            if op.op in ("write", "insert"):
                state[key] = op.value
            elif op.op == "cas" and value == op.expected:
                state[key] = op.value
            elif op.op == "delete":
                state.pop(key, None)
            return
        if op.op == "read":
            if value is MISSING:
                op.ok, op.not_found = False, True
            else:
                op.ok = True
                op.output = value
                if rng.random() < corruption_rate:
                    # A value nobody ever wrote: no linearization survives.
                    op.output = b"corrupt-%d" % op.op_id
                    corrupted.add(key)
        elif op.op == "write":
            if value is MISSING:
                op.ok, op.not_found = False, True
            else:
                op.ok = True
                state[key] = op.value
        elif op.op == "insert":
            op.ok = True
            state[key] = op.value
        elif op.op == "cas":
            if value is MISSING:
                op.ok, op.not_found = False, True
            elif value == op.expected:
                op.ok = True
                state[key] = op.value
            else:
                op.ok, op.cas_failed = False, True
        elif op.op == "delete":
            if value is MISSING:
                op.ok, op.not_found = False, True
            else:
                op.ok = True
                state.pop(key, None)

    def drain(until: float) -> Iterator[HistoryOp]:
        while pending and pending[0][0] <= until:
            _instant, _op_id, op, takes_effect = heapq.heappop(pending)
            apply(op, takes_effect)
            yield op

    while issued < ops:
        now, client = heapq.heappop(clocks)
        # Every later invocation happens at >= now: all earlier
        # linearization instants are final and can be applied.
        yield from drain(now)
        key = _key_name(rng.randrange(keys))
        roll = rng.random()
        if roll < cas_rate:
            op_name = "cas"
        elif roll < cas_rate + delete_rate:
            op_name = "delete"
        elif roll < cas_rate + delete_rate + 0.45:
            op_name = "read"
        elif state.get(key, MISSING) is MISSING and rng.random() < 0.8:
            op_name = "insert"
        else:
            op_name = "write"
        value = expected = None
        if op_name in ("write", "insert", "cas"):
            value = b"v%d" % issued  # unique per op: echoes stay decidable
        if op_name == "cas":
            # Mostly propose the value that is actually there (a success),
            # sometimes a value that never was (a clean cas_failed).
            current = state.get(key, MISSING)
            if current is not MISSING and rng.random() < 0.7:
                expected = current
            else:
                expected = b"absent-%d" % issued
        duration = rng.uniform(0.2, 2.0)
        timed_out = rng.random() < timeout_rate
        op = HistoryOp(op_id=issued, client=f"c{client}", op=op_name,
                       key=key, value=value, expected=expected,
                       invoked_at=now)
        if timed_out:
            op.returned_at = now + TIMEOUT_AFTER
            op.ok = False
            op.timed_out = True
            takes_effect = rng.random() < 0.5
            instant = rng.uniform(now, op.returned_at)
        else:
            op.returned_at = now + duration
            takes_effect = True
            instant = rng.uniform(now, op.returned_at)
        heapq.heappush(pending, (instant, op.op_id, op, takes_effect))
        heapq.heappush(clocks,
                       (op.returned_at + rng.uniform(0.05, 0.5), client))
        issued += 1

    yield from drain(float("inf"))
    if corrupted_keys is not None:
        corrupted_keys.extend(sorted(corrupted))


def generate_history(seed: int, **params) -> GeneratedHistory:
    """Materialize one synthetic history with its ground-truth verdict."""
    corrupted: List[bytes] = []
    keys = params.get("keys", 8)
    ops = list(iter_history(seed, corrupted_keys=corrupted, **params))
    return GeneratedHistory(ops=ops, initial=initial_values(keys),
                            corrupted_keys=corrupted)
