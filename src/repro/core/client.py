"""The unified key-value client protocol: futures, sessions, batches.

NetChain's value proposition is sub-RTT coordination at switch line rate,
but line rate cannot be driven through one-query-at-a-time synchronous
calls.  This module defines the backend-agnostic client surface every
consumer in the repository (coordination recipes, load generators, the
transaction benchmark, experiments and examples) programs against:

* :class:`KVResult` -- the normalized outcome of one key-value operation,
  identical in shape for every backend.
* :class:`KVFuture` -- a simulator-aware future.  ``.then()`` chains
  callbacks, ``.result(deadline)`` drives the discrete-event simulation
  until the reply arrives (what the old ``*_sync`` wrappers did, once,
  instead of five times per backend), and :func:`gather` / :func:`first`
  combine futures.
* :class:`KVClient` -- the protocol: ``read / write / cas / delete /
  insert``, each returning a :class:`KVFuture`.  Implemented by
  :class:`repro.core.agent.NetChainAgent` (switch data plane) and
  :class:`repro.baselines.zk_client.ZooKeeperKVClient` (ZAB ensemble), so
  recipes and benchmarks run unmodified on both.
* :class:`KVSession` / :class:`KVBatch` -- pipelined batch submission:
  ``session.batch().read(k1).write(k2, v).cas(k3, e, n).submit()`` issues
  the operations back-to-back with a configurable in-flight window instead
  of one round-trip gap per operation, which is how a client actually
  approaches the line rate the switches offer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence


class KVTimeout(Exception):
    """An operation did not resolve within its simulated-time deadline."""


@dataclass(slots=True)
class KVResult:
    """Backend-neutral outcome of one key-value operation.

    ``raw`` carries the backend's native result object (``QueryResult`` for
    NetChain, ``ZkResult`` for ZooKeeper) for callers that need
    backend-specific detail such as version numbers.
    """

    ok: bool
    op: str
    key: bytes = b""
    value: bytes = b""
    #: The key does not exist on the backend.
    not_found: bool = False
    #: A compare-and-swap lost the race (expected value did not match).
    cas_failed: bool = False
    #: The operation exhausted its retries without a reply.
    timed_out: bool = False
    error: Optional[str] = None
    latency: float = 0.0
    retries: int = 0
    backend: str = ""
    raw: Any = None

    @property
    def is_read(self) -> bool:
        return self.op == "read"


class KVFuture:
    """A future resolved inside the discrete-event simulation.

    Unlike ``concurrent.futures``, blocking on a :class:`KVFuture` does not
    park a thread: :meth:`result` *advances the simulator* until the future
    resolves, which is the only meaningful notion of waiting in simulated
    time.
    """

    #: Slots (futures are allocated once per operation): the two optional
    #: trailing fields are backend correlation ids (``query_id`` for the
    #: NetChain agent, ``xid`` for the ZooKeeper client).
    __slots__ = ("sim", "op", "key", "_result", "_done", "_callbacks",
                 "query_id", "xid")

    def __init__(self, sim, op: str = "", key: bytes = b"") -> None:
        self.sim = sim
        self.op = op
        self.key = key
        self._result: Any = None
        self._done = False
        self._callbacks: List[Callable[[Any], None]] = []
        self.query_id: Optional[int] = None
        self.xid: Optional[int] = None

    # -- state ----------------------------------------------------------- #

    def done(self) -> bool:
        """Whether the future has resolved."""
        return self._done

    def resolve(self, result: Any) -> None:
        """Resolve with ``result`` and fire the registered callbacks.

        Backends call this exactly once; late duplicates (e.g. a retried
        query's second reply) are ignored.
        """
        if self._done:
            return
        self._done = True
        self._result = result
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(result)

    # -- composition ----------------------------------------------------- #

    def then(self, callback: Callable[[Any], None]) -> "KVFuture":
        """Run ``callback(result)`` once resolved (immediately if already).

        Returns ``self`` so chains like ``fut.then(a).then(b)`` register
        both callbacks in order.
        """
        if self._done:
            callback(self._result)
        else:
            self._callbacks.append(callback)
        return self

    # -- waiting --------------------------------------------------------- #

    def result(self, deadline: float = 5.0):
        """Drive the simulator until resolution; raise :class:`KVTimeout`
        if ``deadline`` seconds of simulated time pass first.

        The clock stops at the resolving event rather than fast-forwarding
        to the deadline, so synchronous waiting costs exactly the
        operation's latency in simulated time.
        """
        if self._done:
            return self._result
        limit = self.sim.now + deadline
        while not self._done and self.sim.pending() and self.sim.now < limit:
            self.sim.run(until=limit, stop_when=self.done)
        if not self._done:
            raise KVTimeout(f"{self.op} {self.key!r}: unresolved after "
                            f"{deadline}s of simulated time")
        return self._result


def gather(futures: Sequence[KVFuture]) -> KVFuture:
    """A future resolving to the list of all results, in input order."""
    futures = list(futures)
    if not futures:
        raise ValueError("gather() needs at least one future")
    combined = KVFuture(futures[0].sim, op="gather")
    results: List[Any] = [None] * len(futures)
    remaining = {"count": len(futures)}

    def make_callback(index: int):
        def on_done(result: Any) -> None:
            results[index] = result
            remaining["count"] -= 1
            if remaining["count"] == 0:
                combined.resolve(results)
        return on_done

    for index, future in enumerate(futures):
        future.then(make_callback(index))
    return combined


def first(futures: Sequence[KVFuture]) -> KVFuture:
    """A future resolving with the earliest result among ``futures``."""
    futures = list(futures)
    if not futures:
        raise ValueError("first() needs at least one future")
    combined = KVFuture(futures[0].sim, op="first")
    for future in futures:
        future.then(combined.resolve)
    return combined


class KVClient(ABC):
    """The backend-agnostic key-value client protocol.

    Implementations translate the five operations into their native wire
    protocol and resolve the returned future when the reply (or a terminal
    failure) arrives.  All futures resolve with a :class:`KVResult`; no
    operation raises on ordinary failure outcomes (missing key, CAS
    conflict, exhausted retries) -- callers branch on ``result.ok``.
    """

    #: Implementations set these in ``__init__``.
    sim: Any
    backend: str = "kv"

    # -- operations ------------------------------------------------------ #

    @abstractmethod
    def read(self, key) -> KVFuture:
        """Read the value of ``key``."""

    @abstractmethod
    def write(self, key, value) -> KVFuture:
        """Overwrite the value of an existing ``key``."""

    @abstractmethod
    def cas(self, key, expected, new_value) -> KVFuture:
        """Atomically replace the value iff it currently equals ``expected``."""

    @abstractmethod
    def delete(self, key) -> KVFuture:
        """Remove ``key``."""

    @abstractmethod
    def insert(self, key, value=b"") -> KVFuture:
        """Create a new ``key`` (a control-plane operation on NetChain)."""

    # -- sessions -------------------------------------------------------- #

    def session(self, window: int = 16) -> "KVSession":
        """A session for pipelined batch submission against this client."""
        return KVSession(self, window=window)


class KVBatch:
    """A builder for one pipelined multi-operation submission.

    Operations are issued in the order they were added, back-to-back, with
    at most ``window`` outstanding at any time; as each reply arrives the
    next queued operation goes out immediately, so the pipeline never
    drains between operations the way per-op synchronous driving does.
    ``submit()`` returns one future per operation, in submission order.
    """

    def __init__(self, session: "KVSession") -> None:
        self._session = session
        self._ops: List[tuple] = []
        self._submitted = False

    # -- builders (chainable) -------------------------------------------- #

    def read(self, key) -> "KVBatch":
        self._ops.append(("read", key, None, None))
        return self

    def write(self, key, value) -> "KVBatch":
        self._ops.append(("write", key, value, None))
        return self

    def cas(self, key, expected, new_value) -> "KVBatch":
        self._ops.append(("cas", key, new_value, expected))
        return self

    def delete(self, key) -> "KVBatch":
        self._ops.append(("delete", key, None, None))
        return self

    def insert(self, key, value=b"") -> "KVBatch":
        self._ops.append(("insert", key, value, None))
        return self

    def __len__(self) -> int:
        return len(self._ops)

    # -- submission ------------------------------------------------------ #

    def submit(self) -> List[KVFuture]:
        """Issue all operations with the session's in-flight window.

        Returns one future per operation, in submission order, immediately;
        operations beyond the window are issued as earlier ones complete.
        """
        if self._submitted:
            raise RuntimeError("a KVBatch can only be submitted once")
        self._submitted = True
        client = self._session.client
        window = max(1, self._session.window)
        ops = list(self._ops)
        futures = [KVFuture(client.sim, op=name, key=_raw_key(key))
                   for name, key, _value, _expected in ops]
        state = {"next": 0, "inflight": 0}

        def issue_more() -> None:
            while state["next"] < len(ops) and state["inflight"] < window:
                index = state["next"]
                state["next"] += 1
                state["inflight"] += 1
                name, key, value, expected = ops[index]
                if name == "read":
                    backend_future = client.read(key)
                elif name == "write":
                    backend_future = client.write(key, value)
                elif name == "cas":
                    backend_future = client.cas(key, expected, value)
                elif name == "delete":
                    backend_future = client.delete(key)
                else:
                    backend_future = client.insert(key, value)
                backend_future.then(make_on_done(index))

        def make_on_done(index: int):
            def on_done(result: Any) -> None:
                state["inflight"] -= 1
                futures[index].resolve(result)
                issue_more()
            return on_done

        issue_more()
        return futures

    def results(self, deadline: float = 5.0) -> List[KVResult]:
        """Submit and drive the simulator until every operation resolves."""
        futures = self.submit()
        if not futures:
            return []
        return gather(futures).result(deadline)


class KVSession:
    """A client handle with batched, pipelined submission.

    The session is cheap; it only carries the in-flight window and counts
    what it submitted.  One client can serve many sessions.
    """

    def __init__(self, client: KVClient, window: int = 16) -> None:
        if window < 1:
            raise ValueError("the in-flight window must be at least 1")
        self.client = client
        self.window = window
        self.submitted = 0

    @property
    def sim(self):
        return self.client.sim

    def batch(self) -> KVBatch:
        """Start building a pipelined batch."""
        return KVBatch(self)

    # Single operations pass straight through to the client so a session
    # is a drop-in KVClient surface for code that mixes both styles.

    def read(self, key) -> KVFuture:
        self.submitted += 1
        return self.client.read(key)

    def write(self, key, value) -> KVFuture:
        self.submitted += 1
        return self.client.write(key, value)

    def cas(self, key, expected, new_value) -> KVFuture:
        self.submitted += 1
        return self.client.cas(key, expected, new_value)

    def delete(self, key) -> KVFuture:
        self.submitted += 1
        return self.client.delete(key)

    def insert(self, key, value=b"") -> KVFuture:
        self.submitted += 1
        return self.client.insert(key, value)


def _raw_key(key) -> bytes:
    if isinstance(key, bytes):
        return key
    return str(key).encode("utf-8")


def canonical_key(key) -> bytes:
    """The canonical bytes spelling of a key, normalized once at record time.

    The wire protocol pads keys to the fixed 16-byte field
    (:func:`repro.core.protocol.normalize_key`) while clients and workloads
    pass the original strings, so the same key has two byte spellings in
    flight.  Histories canonicalize by stripping the trailing NUL padding --
    the same canonicalization the hash ring applies
    (:meth:`repro.core.ring.HashRing.key_position`) -- so a padded and an
    unpadded spelling land in one per-key stream, whether the operation was
    recorded live or loaded back from a spilled NDJSON run.
    """
    if isinstance(key, bytes):
        return key.rstrip(b"\x00")
    return str(key).encode("utf-8")
