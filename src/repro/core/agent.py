"""The NetChain client agent (Section 3, "NetChain client").

An agent runs on every host, translates key-value API calls into NetChain
query packets (the custom UDP format), addresses them to the right chain
switch (head for writes, tail for reads) using the consistent-hash
directory, gathers replies, and retries on timeout -- the paper's answer to
packet loss between the client and the chain (Section 4.3: "relies on
client-side retries ... because writes are idempotent, retrying is benign").

The agent implements the backend-agnostic :class:`repro.core.client.KVClient`
protocol: every operation returns a :class:`repro.core.client.KVFuture`
resolved when the reply (or a terminal retry failure) arrives, so the same
coordination recipes, load generators and benchmarks drive NetChain and the
ZooKeeper baseline interchangeably.  The legacy ``callback=`` argument is
deprecated (it predates the futures API; pass the callable to
:meth:`KVFuture.then` instead) and warns on use.  The ``*_sync`` wrappers
remain first-class: they are how synchronous recipes (e.g.
:class:`repro.core.hybrid.HybridStore`) drive the simulator.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.client import KVClient, KVFuture, KVResult, KVTimeout, _raw_key
from repro.core.protocol import (
    REPLY_OPS,
    NetChainHeader,
    OpCode,
    QueryStatus,
    build_query_packet,
    make_cas,
    make_delete,
    make_read,
    make_write,
    next_query_id,
    normalize_key,
    normalize_value,
)
from repro.netsim.host import Host
from repro.netsim.packet import Packet
from repro.netsim.stats import LatencyRecorder

_agent_ports = itertools.count(9000)


def _warn_callback(op_name: str, callback) -> None:
    if callback is not None:
        warnings.warn(
            f"the callback= argument of NetChainAgent.{op_name} is "
            f"deprecated; chain the callable with .then() on the returned "
            f"KVFuture instead",
            DeprecationWarning, stacklevel=3)


class QueryTimeout(KVTimeout):
    """Raised by the synchronous API when a query exhausts its retries."""


@dataclass(slots=True)
class QueryResult:
    """Outcome of one key-value query."""

    ok: bool
    op: OpCode
    key: bytes
    status: Optional[QueryStatus] = None
    value: bytes = b""
    seq: int = 0
    session: int = 0
    latency: float = 0.0
    retries: int = 0
    timed_out: bool = False

    def version(self):
        """(session, seq) version tuple of the observed item."""
        return (self.session, self.seq)


@dataclass
class AgentConfig:
    """Client-side knobs."""

    #: How long to wait for a reply before retrying (seconds).
    retry_timeout: float = 500e-6
    #: Retries before giving up.
    max_retries: int = 20
    #: UDP source port; allocated automatically when left as ``None``.
    udp_port: Optional[int] = None


@dataclass(slots=True)
class _Pending:
    """One outstanding query.

    The pending record stores the *operation*, not a frozen packet: every
    transmission (first send and each retry) re-resolves the chain through
    the directory, so a retry issued after a failover or a planned
    migration is addressed to the current chain with the current epoch.
    This mirrors a real client library refreshing its routing state and is
    what keeps retries useful across reconfigurations.
    """

    op: OpCode
    key: bytes
    callback: Optional[Callable[[QueryResult], None]]
    created_at: float
    query_id: int
    value: bytes = b""
    cas_expected: Optional[bytes] = None
    future: Optional[KVFuture] = None
    op_name: str = ""
    retries: int = 0
    timer: object = None
    done: bool = False
    #: Telemetry trace id (0 = untraced), stamped into every transmission.
    trace_id: int = 0


class NetChainAgent(KVClient):
    """Key-value client API backed by the in-network store."""

    backend = "netchain"

    def __init__(self, host: Host, directory, config: Optional[AgentConfig] = None,
                 name: Optional[str] = None) -> None:
        """Args:
            host: the simulated machine this agent runs on.
            directory: an object with ``chain_ips_for_key(key) -> (ips, vgroup)``
                and ``controller`` access for insert/delete -- normally the
                :class:`repro.core.controller.NetChainController` itself.
            config: client configuration.
            name: label used in statistics.
        """
        self.host = host
        self.sim = host.sim
        self.directory = directory
        self.config = config or AgentConfig()
        self.name = name or f"agent-{host.name}"
        self.udp_port = self.config.udp_port or next(_agent_ports)
        self.host.bind(self.udp_port, self._on_packet)
        self._pending: Dict[int, _Pending] = {}
        #: Optional hot-key-tier client cache
        #: (:class:`repro.core.hotkeys.ClientReadCache`); ``None`` keeps
        #: reads on the direct path.
        self.read_cache = None
        #: Hot-key-tier rotated-read routing, when the directory offers it.
        self._read_route = getattr(directory, "read_route_for_key", None)
        #: Optional telemetry tracer (:class:`repro.core.trace.Tracer`);
        #: ``None`` keeps the query path untraced.
        self.telemetry = None
        # Statistics.
        self.latency = LatencyRecorder()
        self.read_latency = LatencyRecorder()
        self.write_latency = LatencyRecorder()
        self.completed = 0
        self.failed = 0
        self.timeouts = 0
        self.retransmissions = 0
        self.results_log: List[QueryResult] = []
        self.log_results = False

    # ------------------------------------------------------------------ #
    # Public API (futures; the KVClient protocol).
    # ------------------------------------------------------------------ #

    def read(self, key, callback: Optional[Callable[[QueryResult], None]] = None) -> KVFuture:
        """Read the value of ``key``; the reply comes from the chain tail
        (or, for a tier-managed hot key, a rotated chain replica)."""
        _warn_callback("read", callback)
        cache = self.read_cache
        if cache is not None:
            return cache.read(self, key, callback)
        return self._submit(OpCode.READ, key, callback=callback, op_name="read")

    def write(self, key, value, callback: Optional[Callable[[QueryResult], None]] = None) -> KVFuture:
        """Write ``value`` under ``key``; the query enters at the chain head."""
        _warn_callback("write", callback)
        return self._submit(OpCode.WRITE, key, value=normalize_value(value),
                            callback=callback, op_name="write")

    def cas(self, key, expected, new_value,
            callback: Optional[Callable[[QueryResult], None]] = None) -> KVFuture:
        """Compare-and-swap, the primitive behind exclusive locks (Section 8.5)."""
        _warn_callback("cas", callback)
        return self._submit(OpCode.CAS, key, value=normalize_value(new_value),
                            cas_expected=normalize_value(expected),
                            callback=callback, op_name="cas")

    def delete(self, key, callback: Optional[Callable[[QueryResult], None]] = None) -> KVFuture:
        """Invalidate ``key`` in the data plane (control plane GC happens later)."""
        _warn_callback("delete", callback)
        return self._submit(OpCode.DELETE, key, callback=callback, op_name="delete")

    def insert(self, key, value=b"",
               callback: Optional[Callable[[QueryResult], None]] = None) -> KVFuture:
        """Insert a new key.

        Inserts are control-plane operations (Section 4.1): the controller
        installs index entries on the chain switches, which is much slower
        than a data-plane query.  The future resolves after the control-plane
        latency plus an initial write of the value.
        """
        _warn_callback("insert", callback)
        raw_key = _raw_key(key)
        future = KVFuture(self.sim, op="insert", key=raw_key)
        started = self.sim.now

        def finish(result: QueryResult) -> None:
            if callback is not None:
                callback(result)
            kv = self._to_kv(result, "insert")
            # The future reports the full elapsed time including the
            # control-plane install, which dominates; the raw QueryResult
            # keeps the data-plane write latency.
            kv.latency = self.sim.now - started
            future.resolve(kv)

        def after_insert() -> None:
            if value:
                self._submit(OpCode.WRITE, key, value=normalize_value(value),
                             callback=finish, op_name="write")
            else:
                finish(QueryResult(ok=True, op=OpCode.INSERT, key=raw_key,
                                   status=QueryStatus.OK))

        self.directory.insert_key(key, on_done=after_insert)
        return future

    # ------------------------------------------------------------------ #
    # Synchronous wrappers (thin shims over the futures API).
    # ------------------------------------------------------------------ #

    def read_sync(self, key, deadline: float = 5.0) -> QueryResult:
        """Blocking read: runs the simulation until the reply arrives."""
        return self._await(self.read(key), deadline)

    def write_sync(self, key, value, deadline: float = 5.0) -> QueryResult:
        """Blocking write."""
        return self._await(self.write(key, value), deadline)

    def cas_sync(self, key, expected, new_value, deadline: float = 5.0) -> QueryResult:
        """Blocking compare-and-swap."""
        return self._await(self.cas(key, expected, new_value), deadline)

    def delete_sync(self, key, deadline: float = 5.0) -> QueryResult:
        """Blocking delete."""
        return self._await(self.delete(key), deadline)

    def insert_sync(self, key, value=b"", deadline: float = 5.0) -> QueryResult:
        """Blocking insert."""
        return self._await(self.insert(key, value), deadline)

    def _await(self, future: KVFuture, deadline: float) -> QueryResult:
        try:
            result: KVResult = future.result(deadline)
        except KVTimeout:
            raise QueryTimeout(
                f"{self.name}: no reply within {deadline}s of simulated time") from None
        if result.timed_out:
            raise QueryTimeout(f"{self.name}: query for {result.key!r} exhausted retries")
        return result.raw

    # ------------------------------------------------------------------ #
    # Internals.
    # ------------------------------------------------------------------ #

    def outstanding(self) -> int:
        """Number of queries awaiting a reply."""
        return len(self._pending)

    def _to_kv(self, result: QueryResult, op_name: str) -> KVResult:
        status = result.status
        if result.ok:
            error = None
        elif result.timed_out:
            error = "timeout"
        else:
            error = status.name.lower() if status is not None else "failed"
        return KVResult(ok=result.ok, op=op_name, key=result.key, value=result.value,
                        not_found=status == QueryStatus.KEY_NOT_FOUND,
                        cas_failed=status == QueryStatus.CAS_FAILED,
                        timed_out=result.timed_out, error=error,
                        latency=result.latency, retries=result.retries,
                        backend=self.backend, raw=result)

    def _route(self, key):
        """(chain IPs, vgroup, epoch) for a key, from the directory.

        Directories that predate chain epochs (custom test doubles) only
        expose ``chain_ips_for_key``; their queries carry epoch 0, which
        every switch accepts until an epoch is explicitly installed.
        """
        route = getattr(self.directory, "route_for_key", None)
        if route is not None:
            return route(key)
        chain_ips, vgroup = self.directory.chain_ips_for_key(key)
        return chain_ips, vgroup, 0

    def _build_query(self, pending: _Pending) -> Tuple[NetChainHeader, str]:
        if pending.op == OpCode.READ and self._read_route is not None:
            # Hot-key tier: rotate reads of widened keys across the wide
            # chain.  Re-resolved per transmission, so a retry issued
            # after a widen/narrow follows the current layout.
            hot = self._read_route(pending.key)
            if hot is not None:
                dst_ip, suffix, vgroup, epoch = hot
                header = NetChainHeader(op=OpCode.READ, key=pending.key,
                                        chain=list(suffix), vgroup=vgroup,
                                        epoch=epoch)
                header.query_id = pending.query_id
                return header, dst_ip
        chain_ips, vgroup, epoch = self._route(pending.key)
        if pending.op == OpCode.READ:
            header = make_read(pending.key, chain_ips, vgroup=vgroup, epoch=epoch)
            dst_ip = chain_ips[-1]
        elif pending.op == OpCode.CAS:
            header = make_cas(pending.key, pending.cas_expected, pending.value,
                              chain_ips, vgroup=vgroup, epoch=epoch)
            dst_ip = chain_ips[0]
        elif pending.op == OpCode.DELETE:
            header = make_delete(pending.key, chain_ips, vgroup=vgroup, epoch=epoch)
            dst_ip = chain_ips[0]
        else:
            header = make_write(pending.key, pending.value, chain_ips,
                                vgroup=vgroup, epoch=epoch)
            dst_ip = chain_ips[0]
        header.query_id = pending.query_id
        return header, dst_ip

    def _submit(self, op: OpCode, key, value: bytes = b"",
                cas_expected: Optional[bytes] = None,
                callback: Optional[Callable[[QueryResult], None]] = None,
                op_name: str = "") -> KVFuture:
        raw_key = normalize_key(key)
        query_id = next_query_id()
        future = KVFuture(self.sim, op=op_name, key=raw_key)
        future.query_id = query_id
        pending = _Pending(op=op, key=raw_key, callback=callback,
                           created_at=self.sim.now, query_id=query_id,
                           value=value, cas_expected=cas_expected,
                           future=future, op_name=op_name)
        self._pending[query_id] = pending
        tel = self.telemetry
        if tel is not None:
            pending.trace_id = tel.query_submit(self, pending)
        self._transmit(pending)
        return future

    def _transmit(self, pending: _Pending) -> None:
        header, dst_ip = self._build_query(pending)
        packet = build_query_packet(self.host.ip, self.udp_port, dst_ip, header,
                                    created_at=pending.created_at)
        if pending.trace_id:
            packet.trace_id = pending.trace_id
            tel = self.telemetry
            if tel is not None:
                tel.query_tx(self, pending, dst_ip)
        self.host.send(packet)
        pending.timer = self.sim.schedule(
            self.config.retry_timeout, self._on_timeout, pending.query_id)

    def _on_timeout(self, query_id: int) -> None:
        pending = self._pending.get(query_id)
        if pending is None or pending.done:
            return
        if pending.retries >= self.config.max_retries:
            self._pending.pop(query_id, None)
            pending.done = True
            self.timeouts += 1
            self.failed += 1
            result = QueryResult(ok=False, op=pending.op, key=pending.key,
                                 timed_out=True, retries=pending.retries,
                                 latency=self.sim.now - pending.created_at)
            tel = self.telemetry
            if tel is not None:
                tel.query_timeout(self, pending)
            self._finish(pending, result)
            return
        pending.retries += 1
        self.retransmissions += 1
        self._transmit(pending)

    def _on_packet(self, packet: Packet) -> None:
        header = packet.payload
        if type(header) is not NetChainHeader or header.op not in REPLY_OPS:
            return
        pending = self._pending.pop(header.query_id, None)
        if pending is None or pending.done:
            return  # duplicate or late reply from a retried query
        pending.done = True
        if pending.timer is not None:
            pending.timer.cancel()
        latency = self.sim._now - pending.created_at
        ok = header.status == QueryStatus.OK
        result = QueryResult(ok=ok, op=header.op, key=header.key, status=header.status,
                             value=header.value, seq=header.seq, session=header.session,
                             latency=latency, retries=pending.retries)
        self.completed += 1
        if not ok:
            self.failed += 1
        self.latency.record(latency)
        if header.op == OpCode.READ_REPLY:
            self.read_latency.record(latency)
        elif header.op in (OpCode.WRITE_REPLY, OpCode.CAS_REPLY, OpCode.DELETE_REPLY):
            self.write_latency.record(latency)
        tel = self.telemetry
        if tel is not None:
            tel.query_reply(self, pending, header, latency)
        self._finish(pending, result)

    def _finish(self, pending: _Pending, result: QueryResult) -> None:
        if self.log_results:
            self.results_log.append(result)
        if pending.callback is not None:
            pending.callback(result)
        if pending.future is not None:
            pending.future.resolve(self._to_kv(result, pending.op_name))
