"""Coordination primitives built on the NetChain key-value API.

The paper motivates NetChain with the classic coordination-service use
cases: distributed locking, configuration management, group membership and
barriers (Section 1).  This module implements them on top of the
:class:`repro.core.agent.NetChainAgent` key-value API:

* **Locks** use the switch compare-and-swap primitive exactly as the
  evaluation's transaction benchmark does (Section 8.5): a lock is a key
  whose value is the owner's id; it can only be released by the owner.
* **Barriers**, **configuration store** and **group membership** are thin
  recipes over read / write / CAS, mirroring what ZooKeeper recipes provide.

Each primitive offers both an asynchronous (callback) interface usable from
inside the discrete-event simulation, and a synchronous interface that
drives the simulator (convenient in examples and tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.agent import NetChainAgent, QueryResult
from repro.core.protocol import QueryStatus

#: Value representing "unlocked" / "absent" for CAS-based recipes.
EMPTY = b""


class CoordinationError(RuntimeError):
    """Raised when a coordination operation cannot be completed."""


@dataclass
class LockResult:
    """Outcome of a lock acquire/release attempt."""

    acquired: bool
    owner: Optional[bytes] = None
    latency: float = 0.0
    retries: int = 0


class DistributedLock:
    """An exclusive lock stored as one NetChain key.

    The lock is free when the key holds the empty value; acquiring writes
    the owner id with a compare-and-swap against the empty value; releasing
    swaps the owner id back to empty, so only the owner can release
    (Section 8.5).
    """

    def __init__(self, agent: NetChainAgent, key, owner) -> None:
        self.agent = agent
        self.key = key
        self.owner = owner if isinstance(owner, bytes) else str(owner).encode()
        self.held = False

    # -- asynchronous interface ---------------------------------------- #

    def try_acquire_async(self, callback: Callable[[LockResult], None]) -> None:
        """Attempt to take the lock once; report the outcome via callback."""
        def on_reply(result: QueryResult) -> None:
            acquired = result.ok and result.status == QueryStatus.OK
            if acquired:
                self.held = True
            callback(LockResult(acquired=acquired, owner=result.value or None,
                                latency=result.latency, retries=result.retries))

        self.agent.cas(self.key, EMPTY, self.owner, callback=on_reply)

    def release_async(self, callback: Optional[Callable[[LockResult], None]] = None) -> None:
        """Release the lock (only succeeds for the current owner)."""
        def on_reply(result: QueryResult) -> None:
            released = result.ok and result.status == QueryStatus.OK
            if released:
                self.held = False
            if callback is not None:
                callback(LockResult(acquired=not released, owner=self.owner,
                                    latency=result.latency, retries=result.retries))

        self.agent.cas(self.key, self.owner, EMPTY, callback=on_reply)

    # -- synchronous interface ------------------------------------------ #

    def try_acquire(self, deadline: float = 5.0) -> bool:
        """One acquisition attempt, driving the simulator until it resolves."""
        result = self.agent.cas_sync(self.key, EMPTY, self.owner, deadline=deadline)
        self.held = result.ok and result.status == QueryStatus.OK
        return self.held

    def acquire(self, max_attempts: int = 100, deadline: float = 5.0) -> bool:
        """Spin until acquired or the attempt budget is exhausted."""
        for _ in range(max_attempts):
            if self.try_acquire(deadline=deadline):
                return True
        return False

    def release(self, deadline: float = 5.0) -> bool:
        """Release the lock; returns whether the release took effect."""
        result = self.agent.cas_sync(self.key, self.owner, EMPTY, deadline=deadline)
        released = result.ok and result.status == QueryStatus.OK
        if released:
            self.held = False
        return released

    def holder(self, deadline: float = 5.0) -> bytes:
        """Current lock holder (empty bytes when free)."""
        return self.agent.read_sync(self.key, deadline=deadline).value


class LockManager:
    """Creates and tracks locks for one client."""

    def __init__(self, agent: NetChainAgent, client_id) -> None:
        self.agent = agent
        self.client_id = client_id if isinstance(client_id, bytes) else str(client_id).encode()
        self._locks: Dict[bytes, DistributedLock] = {}

    def lock(self, key) -> DistributedLock:
        """Get (or create) the lock object for ``key``."""
        raw = key if isinstance(key, bytes) else str(key).encode()
        if raw not in self._locks:
            self._locks[raw] = DistributedLock(self.agent, key, self.client_id)
        return self._locks[raw]

    def held_locks(self) -> List[DistributedLock]:
        """Locks this manager currently believes it holds."""
        return [lock for lock in self._locks.values() if lock.held]

    def release_all(self) -> None:
        """Release every held lock (best effort)."""
        for lock in self.held_locks():
            lock.release()


class Barrier:
    """A double-anything barrier: N participants wait for each other.

    The barrier key holds the arrival count; participants increment it with
    a CAS loop and poll until it reaches the expected count.
    """

    def __init__(self, agent: NetChainAgent, key, parties: int) -> None:
        if parties < 1:
            raise ValueError("a barrier needs at least one party")
        self.agent = agent
        self.key = key
        self.parties = parties

    def _count(self) -> int:
        value = self.agent.read_sync(self.key).value
        return int(value) if value else 0

    def arrive(self, max_attempts: int = 1000) -> int:
        """Register arrival; returns this participant's arrival index (1-based)."""
        for _ in range(max_attempts):
            current = self._count()
            result = self.agent.cas_sync(self.key, str(current) if current else EMPTY,
                                         str(current + 1))
            if result.ok and result.status == QueryStatus.OK:
                return current + 1
        raise CoordinationError(f"could not register arrival at barrier {self.key!r}")

    def is_complete(self) -> bool:
        """Whether every party has arrived."""
        return self._count() >= self.parties

    def wait(self, poll_interval: float = 1e-3, max_polls: int = 10000) -> None:
        """Poll until the barrier trips."""
        for _ in range(max_polls):
            if self.is_complete():
                return
            self.agent.sim.run(until=self.agent.sim.now + poll_interval)
        raise CoordinationError(f"barrier {self.key!r} did not complete")


class ConfigurationStore:
    """Configuration management: named parameters with atomic updates."""

    def __init__(self, agent: NetChainAgent, prefix: str = "cfg") -> None:
        self.agent = agent
        self.prefix = prefix

    def _key(self, name: str) -> str:
        key = f"{self.prefix}:{name}"
        if len(key.encode()) > 16:
            raise ValueError(f"configuration key {key!r} exceeds the 16-byte key limit")
        return key

    def set(self, name: str, value) -> None:
        """Set a configuration parameter, creating it on first use.

        Creation is a control-plane insert (Section 4.1) and therefore slower
        than subsequent updates, which are plain data-plane writes.
        """
        result = self.agent.write_sync(self._key(name), value)
        if result.ok:
            return
        if result.status == QueryStatus.KEY_NOT_FOUND:
            result = self.agent.insert_sync(self._key(name), value)
            if result.ok:
                return
        raise CoordinationError(f"failed to set configuration {name!r}")

    def get(self, name: str, default: Optional[bytes] = None) -> Optional[bytes]:
        """Read a configuration parameter."""
        result = self.agent.read_sync(self._key(name))
        if result.status == QueryStatus.KEY_NOT_FOUND:
            return default
        return result.value

    def compare_and_set(self, name: str, expected, new_value) -> bool:
        """Atomically update a parameter only if it still holds ``expected``."""
        result = self.agent.cas_sync(self._key(name), expected, new_value)
        return result.ok and result.status == QueryStatus.OK


class GroupMembership:
    """A small membership roster kept in a single value.

    Values are limited to 128 bytes in the prototype (Section 8.1), so the
    roster suits small groups such as a set of shard leaders; larger groups
    would be split across keys.
    """

    SEPARATOR = b","

    def __init__(self, agent: NetChainAgent, group_key) -> None:
        self.agent = agent
        self.group_key = group_key

    def members(self) -> List[bytes]:
        """Current members."""
        value = self.agent.read_sync(self.group_key).value
        if not value:
            return []
        return [m for m in value.split(self.SEPARATOR) if m]

    def _store(self, expected: bytes, members: List[bytes]) -> bool:
        new_value = self.SEPARATOR.join(sorted(set(members)))
        result = self.agent.cas_sync(self.group_key, expected, new_value)
        return result.ok and result.status == QueryStatus.OK

    def join(self, member, max_attempts: int = 100) -> bool:
        """Add a member to the roster (CAS loop)."""
        raw = member if isinstance(member, bytes) else str(member).encode()
        for _ in range(max_attempts):
            current = self.agent.read_sync(self.group_key).value or EMPTY
            members = [m for m in current.split(self.SEPARATOR) if m]
            if raw in members:
                return True
            if self._store(current, members + [raw]):
                return True
        return False

    def leave(self, member, max_attempts: int = 100) -> bool:
        """Remove a member from the roster (CAS loop)."""
        raw = member if isinstance(member, bytes) else str(member).encode()
        for _ in range(max_attempts):
            current = self.agent.read_sync(self.group_key).value or EMPTY
            members = [m for m in current.split(self.SEPARATOR) if m]
            if raw not in members:
                return True
            members.remove(raw)
            if self._store(current, members):
                return True
        return False
