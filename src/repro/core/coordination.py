"""Coordination primitives built on the unified key-value client protocol.

The paper motivates NetChain with the classic coordination-service use
cases: distributed locking, configuration management, group membership and
barriers (Section 1).  This module implements them on top of the
backend-agnostic :class:`repro.core.client.KVClient` protocol, so the same
recipes run against the in-network store
(:class:`repro.core.agent.NetChainAgent`) and against the ZooKeeper
baseline (:class:`repro.baselines.zk_client.ZooKeeperKVClient`) -- the
apples-to-apples comparison the evaluation needs:

* **Locks** use compare-and-swap exactly as the evaluation's transaction
  benchmark does (Section 8.5): a lock is a key whose value is the owner's
  id; it can only be released by the owner.
* **Barriers**, **configuration store** and **group membership** are thin
  recipes over read / write / CAS, mirroring what ZooKeeper recipes provide.

Each primitive offers both an asynchronous (futures) interface usable from
inside the discrete-event simulation, and a synchronous interface that
drives the simulator (convenient in examples and tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.client import KVClient, KVResult, KVTimeout

#: Value representing "unlocked" / "absent" for CAS-based recipes.
EMPTY = b""


class CoordinationError(RuntimeError):
    """Raised when a coordination operation cannot be completed."""


@dataclass
class LockResult:
    """Outcome of a lock acquire/release attempt."""

    acquired: bool
    owner: Optional[bytes] = None
    latency: float = 0.0
    retries: int = 0


class DistributedLock:
    """An exclusive lock stored as one key.

    The lock is free when the key holds the empty value; acquiring writes
    the owner id with a compare-and-swap against the empty value; releasing
    swaps the owner id back to empty, so only the owner can release
    (Section 8.5).  Works against any :class:`KVClient` backend.
    """

    def __init__(self, client: KVClient, key, owner) -> None:
        self.client = client
        self.key = key
        self.owner = owner if isinstance(owner, bytes) else str(owner).encode()
        self.held = False
        #: CAS attempts that lost the race (conflict accounting).
        self.cas_conflicts = 0
        #: Total acquisition attempts.
        self.attempts = 0

    # -- asynchronous interface ---------------------------------------- #

    def try_acquire_async(self, callback: Callable[[LockResult], None]) -> None:
        """Attempt to take the lock once; report the outcome via callback."""
        self.attempts += 1

        def on_reply(result: KVResult) -> None:
            if result.ok:
                self.held = True
            elif result.cas_failed:
                # Only genuine lost races count as conflicts; timeouts and
                # missing keys are failures of a different kind.
                self.cas_conflicts += 1
            callback(LockResult(acquired=result.ok, owner=result.value or None,
                                latency=result.latency, retries=result.retries))

        self.client.cas(self.key, EMPTY, self.owner).then(on_reply)

    def release_async(self, callback: Optional[Callable[[LockResult], None]] = None) -> None:
        """Release the lock (only succeeds for the current owner)."""
        def on_reply(result: KVResult) -> None:
            if result.ok:
                self.held = False
            if callback is not None:
                callback(LockResult(acquired=not result.ok, owner=self.owner,
                                    latency=result.latency, retries=result.retries))

        self.client.cas(self.key, self.owner, EMPTY).then(on_reply)

    # -- synchronous interface ------------------------------------------ #

    def try_acquire(self, deadline: float = 5.0) -> bool:
        """One acquisition attempt, driving the simulator until it resolves.

        Raises :class:`KVTimeout` when the query itself dies (exhausted
        retries), so callers can tell a held lock from a dead network.
        """
        self.attempts += 1
        result = self.client.cas(self.key, EMPTY, self.owner).result(deadline)
        if result.timed_out:
            raise KVTimeout(f"lock {self.key!r}: acquire query exhausted retries")
        self.held = result.ok
        if result.cas_failed:
            self.cas_conflicts += 1
        return self.held

    def acquire(self, max_attempts: int = 100, deadline: float = 5.0) -> bool:
        """Spin until acquired or the attempt budget is exhausted."""
        for _ in range(max_attempts):
            if self.try_acquire(deadline=deadline):
                return True
        return False

    def release(self, deadline: float = 5.0) -> bool:
        """Release the lock; returns whether the release took effect."""
        result = self.client.cas(self.key, self.owner, EMPTY).result(deadline)
        if result.ok:
            self.held = False
        return result.ok

    def holder(self, deadline: float = 5.0) -> bytes:
        """Current lock holder (empty bytes when free)."""
        return self.client.read(self.key).result(deadline).value


class LockManager:
    """Creates and tracks locks for one client."""

    def __init__(self, client: KVClient, client_id) -> None:
        self.client = client
        self.client_id = client_id if isinstance(client_id, bytes) else str(client_id).encode()
        self._locks: Dict[bytes, DistributedLock] = {}

    def lock(self, key) -> DistributedLock:
        """Get (or create) the lock object for ``key``."""
        raw = key if isinstance(key, bytes) else str(key).encode()
        if raw not in self._locks:
            self._locks[raw] = DistributedLock(self.client, key, self.client_id)
        return self._locks[raw]

    def held_locks(self) -> List[DistributedLock]:
        """Locks this manager currently believes it holds."""
        return [lock for lock in self._locks.values() if lock.held]

    def release_all(self) -> None:
        """Release every held lock (best effort)."""
        for lock in self.held_locks():
            lock.release()


class Barrier:
    """A double-anything barrier: N participants wait for each other.

    The barrier key holds the arrival count; participants increment it with
    a CAS loop and poll until it reaches the expected count.
    """

    def __init__(self, client: KVClient, key, parties: int) -> None:
        if parties < 1:
            raise ValueError("a barrier needs at least one party")
        self.client = client
        self.key = key
        self.parties = parties
        #: CAS attempts that lost an arrival race (conflict accounting).
        self.cas_conflicts = 0

    def _count(self) -> int:
        value = self.client.read(self.key).result(5.0).value
        return int(value) if value else 0

    def arrive(self, max_attempts: int = 1000) -> int:
        """Register arrival; returns this participant's arrival index (1-based)."""
        for _ in range(max_attempts):
            current = self._count()
            result = self.client.cas(self.key, str(current) if current else EMPTY,
                                     str(current + 1)).result(5.0)
            if result.ok:
                return current + 1
            if result.timed_out:
                raise KVTimeout(f"barrier {self.key!r}: arrival query exhausted retries")
            if result.cas_failed:
                self.cas_conflicts += 1
        raise CoordinationError(f"could not register arrival at barrier {self.key!r}")

    def is_complete(self) -> bool:
        """Whether every party has arrived."""
        return self._count() >= self.parties

    def wait(self, poll_interval: float = 1e-3, max_polls: int = 10000) -> None:
        """Poll until the barrier trips."""
        for _ in range(max_polls):
            if self.is_complete():
                return
            self.client.sim.run(until=self.client.sim.now + poll_interval)
        raise CoordinationError(f"barrier {self.key!r} did not complete")


class ConfigurationStore:
    """Configuration management: named parameters with atomic updates."""

    def __init__(self, client: KVClient, prefix: str = "cfg") -> None:
        self.client = client
        self.prefix = prefix

    def _key(self, name: str) -> str:
        key = f"{self.prefix}:{name}"
        if len(key.encode()) > 16:
            raise ValueError(f"configuration key {key!r} exceeds the 16-byte key limit")
        return key

    def set(self, name: str, value) -> None:
        """Set a configuration parameter, creating it on first use.

        Creation is a control-plane insert (Section 4.1) and therefore slower
        than subsequent updates, which are plain data-plane writes.
        """
        result = self.client.write(self._key(name), value).result(5.0)
        if result.ok:
            return
        if result.not_found:
            result = self.client.insert(self._key(name), value).result(5.0)
            if result.ok:
                return
        raise CoordinationError(f"failed to set configuration {name!r}")

    def get(self, name: str, default: Optional[bytes] = None) -> Optional[bytes]:
        """Read a configuration parameter."""
        result = self.client.read(self._key(name)).result(5.0)
        if result.not_found:
            return default
        return result.value

    def compare_and_set(self, name: str, expected, new_value) -> bool:
        """Atomically update a parameter only if it still holds ``expected``."""
        return self.client.cas(self._key(name), expected, new_value).result(5.0).ok


class GroupMembership:
    """A small membership roster kept in a single value.

    Values are limited to 128 bytes in the prototype (Section 8.1), so the
    roster suits small groups such as a set of shard leaders; larger groups
    would be split across keys.
    """

    SEPARATOR = b","

    def __init__(self, client: KVClient, group_key) -> None:
        self.client = client
        self.group_key = group_key

    def members(self) -> List[bytes]:
        """Current members."""
        value = self.client.read(self.group_key).result(5.0).value
        if not value:
            return []
        return [m for m in value.split(self.SEPARATOR) if m]

    def _store(self, expected: bytes, members: List[bytes]) -> bool:
        new_value = self.SEPARATOR.join(sorted(set(members)))
        return self.client.cas(self.group_key, expected, new_value).result(5.0).ok

    def join(self, member, max_attempts: int = 100) -> bool:
        """Add a member to the roster (CAS loop)."""
        raw = member if isinstance(member, bytes) else str(member).encode()
        for _ in range(max_attempts):
            current = self.client.read(self.group_key).result(5.0).value or EMPTY
            members = [m for m in current.split(self.SEPARATOR) if m]
            if raw in members:
                return True
            if self._store(current, members + [raw]):
                return True
        return False

    def leave(self, member, max_attempts: int = 100) -> bool:
        """Remove a member from the roster (CAS loop)."""
        raw = member if isinstance(member, bytes) else str(member).encode()
        for _ in range(max_attempts):
            current = self.client.read(self.group_key).result(5.0).value or EMPTY
            members = [m for m in current.split(self.SEPARATOR) if m]
            if raw not in members:
                return True
            members.remove(raw)
            if self._store(current, members):
                return True
        return False
