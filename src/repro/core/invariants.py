"""Executable correctness invariants (Section 4.5 and the TLA+ appendix).

The paper proves NetChain's per-key consistency by model-checking two
properties; this module provides the same checks as runtime assertions so
that unit, integration and property-based tests can verify them on the
simulated system after arbitrary interleavings of queries, losses,
reorderings and failures:

* **Invariant 1 / UpdatePropagation** -- for any key assigned to a chain
  ``[S1..Sn]``, an upstream switch's stored version is at least the
  downstream switch's version.
* **Consistency** -- a client only ever observes versions of a key with
  non-decreasing ``(session, seq)`` tags, even across failover and recovery.
* **Value agreement** -- two replicas holding the same version of a key hold
  the same value (a sanity property implied by the protocol).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.kvstore import SwitchKVStore
from repro.core.protocol import normalize_key


class InvariantViolation(AssertionError):
    """Raised when a correctness invariant does not hold."""


def chain_versions(stores: Sequence[SwitchKVStore], key) -> List[Optional[Tuple[int, int]]]:
    """The (session, seq) version of ``key`` on each chain switch, head first.

    ``None`` marks switches that do not hold the key (e.g. not yet synced).
    """
    raw = normalize_key(key)
    versions: List[Optional[Tuple[int, int]]] = []
    for store in stores:
        item = store.read(raw)
        versions.append(None if item is None else item.version())
    return versions


def check_chain_invariant(stores: Sequence[SwitchKVStore], keys: Iterable,
                          raise_on_violation: bool = True) -> List[str]:
    """Check Invariant 1 for every key over an ordered chain of stores.

    Args:
        stores: the per-switch stores in chain order (head first).
        keys: keys to check.
        raise_on_violation: raise :class:`InvariantViolation` on the first
            violation instead of collecting them.

    Returns:
        A list of human-readable violation descriptions (empty when the
        invariant holds).
    """
    violations: List[str] = []
    for key in keys:
        versions = chain_versions(stores, key)
        present = [(i, v) for i, v in enumerate(versions) if v is not None]
        for (i, vi), (j, vj) in zip(present, present[1:], strict=False):
            if vi < vj:
                message = (f"Invariant 1 violated for key {key!r}: "
                           f"position {i} has version {vi} < position {j} version {vj}")
                if raise_on_violation:
                    raise InvariantViolation(message)
                violations.append(message)
    return violations


def check_value_agreement(stores: Sequence[SwitchKVStore], keys: Iterable,
                          raise_on_violation: bool = True) -> List[str]:
    """Replicas that share a key's version must share its value."""
    violations: List[str] = []
    for key in keys:
        raw = normalize_key(key)
        by_version: Dict[Tuple[int, int], bytes] = {}
        for store in stores:
            item = store.read(raw)
            if item is None or not item.valid:
                continue
            version = item.version()
            if version in by_version and by_version[version] != item.value:
                message = (f"replicas disagree on key {key!r} at version {version}: "
                           f"{by_version[version]!r} vs {item.value!r}")
                if raise_on_violation:
                    raise InvariantViolation(message)
                violations.append(message)
            by_version.setdefault(version, item.value)
    return violations


def sample_chain_invariants(controller, raise_on_violation: bool = True) -> List[str]:
    """Check Invariant 1 and value agreement over every virtual group.

    Intended as a whole-system sample at fault boundaries: the fault
    injector calls this (through an observer) every time it fires an event,
    so a schedule that breaks the chain protocol is caught at the moment of
    the fault rather than at the end of the run.  Failed switches and
    not-yet-spliced replacements are excluded, matching what clients can
    observe.
    """
    violations: List[str] = []
    for vgroup, info in controller.chain_table.items():
        keys = controller.keys_by_vgroup.get(vgroup)
        if not keys:
            continue
        stores = [controller.stores[name] for name in info.switches
                  if name not in controller.failed_switches
                  and name in controller.stores]
        if len(stores) < 2:
            continue
        violations.extend(check_chain_invariant(stores, keys,
                                                raise_on_violation=raise_on_violation))
        violations.extend(check_value_agreement(stores, keys,
                                                raise_on_violation=raise_on_violation))
    return violations


def invariant_observer(controller, violations: Optional[List[str]] = None):
    """An observer for :attr:`repro.netsim.faults.FaultInjector.observers`
    that samples the chain invariants at every fault event.

    When ``violations`` is given, findings are collected there instead of
    raising, so tests can assert emptiness after the run.
    """
    raise_on_violation = violations is None

    def observe(_event) -> None:
        found = sample_chain_invariants(controller,
                                        raise_on_violation=raise_on_violation)
        if violations is not None:
            violations.extend(found)

    return observe


@dataclass
class ClientObservationChecker:
    """Tracks the versions a client observes and enforces monotonicity.

    This is the ``Consistency`` safety property of the TLA+ specification:
    ``prevKVs[k].version <= currentKVs[k].version`` for every observation.
    Feed it every successful read/write reply a client receives.
    """

    raise_on_violation: bool = True
    last_seen: Dict[bytes, Tuple[int, int]] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    observations: int = 0

    def observe(self, key, session: int, seq: int) -> bool:
        """Record an observed version; returns ``True`` if it is consistent."""
        raw = normalize_key(key)
        version = (session, seq)
        previous = self.last_seen.get(raw)
        self.observations += 1
        if previous is not None and version < previous:
            message = (f"client observed key {key!r} going backwards: "
                       f"{previous} -> {version}")
            if self.raise_on_violation:
                raise InvariantViolation(message)
            self.violations.append(message)
            return False
        self.last_seen[raw] = version
        return True

    def observe_result(self, result) -> bool:
        """Convenience for :class:`repro.core.agent.QueryResult` objects."""
        if not result.ok:
            return True
        return self.observe(result.key, result.session, result.seq)

    def ok(self) -> bool:
        """Whether no violation has been recorded."""
        return not self.violations
