"""The adaptive hot-key tier (NetCache-style self-tuning replication).

Chain replication assigns every key a fixed ``f+1``-switch chain, so under
Zipfian skew the tail switch of a hot key's virtual group saturates while
the rest of the testbed idles.  This module closes that gap with three
cooperating layers:

* **Detection** (:class:`HotKeySketch`): a count-min sketch plus a small
  top-k heavy-hitter table, allocated over the switch's register arrays
  (:mod:`repro.netsim.registers`) and updated in the switch program's read
  path.  The same class, backed by plain lists, is the shared popularity
  detector the hybrid store's promotion policy rides
  (:mod:`repro.core.hybrid`).
* **Reaction** (:class:`HotKeyManager`): a controller policy loop that
  polls the per-switch sketches, widens the chain of a confirmed-hot key
  (replicating it to extra tail switches and rotating read traffic across
  every replica) and narrows it again on cooldown.  Each change commits
  through the existing epoch-bump machinery (:meth:`NetChainController.
  bump_group_epoch`), so straggler queries addressed under a superseded
  hot route self-invalidate in the data plane.
* **Client tier** (:class:`ClientReadCache`): an epoch-validated read
  cache on the client agent that coalesces concurrent reads of the same
  key into one network query.

Linearizability of rotated reads (the CRAQ-style clean/dirty gate)
-------------------------------------------------------------------

Rotating reads across chain replicas is only linearizable if a replica
never serves a value the tail has not committed, and never serves an old
value after the tail committed a newer one.  The tier guarantees both with
a per-key *clean version* gate installed on every wide-chain member:

* a replica serves a rotated read only while its stored version equals its
  clean version; otherwise it forwards the read down the chain toward the
  wide tail (which always serves safely -- its apply *is* the commit);
* the wide tail sends a ``CLEAN(key, version)`` notification to its
  siblings whenever it commits a write of a tier-managed key.

Every write traverses the wide chain in order, so if a replica's stored
version ``v`` equals its clean (i.e. committed) version, no write newer
than ``v`` can have committed -- it would have passed the replica first
and left it dirty.  The gate only ever *lags* (lost or reordered CLEANs
leave the replica dirty and forwarding), which degrades load spreading,
never consistency.

Client-cache linearizability
----------------------------

Cache entries live exactly as long as the network read that populates
them: reads issued while one is in flight coalesce onto it, and every
waiter's invocation window overlaps the reply, so linearizing all of them
at the reply's serving instant is valid under concurrent writers.  An
entry whose chain epoch no longer matches the directory's current epoch
at reply time is discarded (a reconfiguration raced the read) and its
waiters re-issue.  Retaining entries past the reply would require
switch-driven invalidation to stay linearizable; the coalescing window is
the largest cache lifetime that needs none, and under skew it already
collapses most duplicate hot-key reads.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Set, Tuple

from repro.core.client import KVFuture
from repro.core.protocol import KEY_BYTES, OpCode, normalize_key


# --------------------------------------------------------------------- #
# Detection: count-min sketch + top-k heavy-hitter table.
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class SketchConfig:
    """Dimensions of one hot-key sketch.

    The defaults (3 rows x 512 four-byte counters plus an 8-entry top-k
    table) cost ~6 KB of SRAM per switch -- noise next to the store's
    register arrays -- and keep per-key estimates exact for the key
    populations the testbed runs.
    """

    rows: int = 3
    width: int = 512
    counter_bytes: int = 4
    topk: int = 8


class HotKeySketch:
    """Count-min sketch + top-k table over register arrays (or plain lists).

    Pass ``registers`` (a :class:`repro.netsim.registers.RegisterFile`) to
    allocate the rows and the top-k table as named register arrays against
    the switch SRAM budget -- the deployment story of Section 6 applied to
    the detector itself.  Without it the same structure runs on plain
    lists, which is how the hybrid store shares the detector host-side.

    Hashing is ``crc32`` with a per-row salt: deterministic across
    processes (Python's ``hash`` is randomized by ``PYTHONHASHSEED``), so
    same-seed runs replay byte-identically.

    Like :class:`repro.core.kvstore.SwitchKVStore`, the class keeps an
    O(1) dict mirror (``_tk_index``) of the top-k register state; the
    arrays are authoritative, the mirror is derived.
    """

    def __init__(self, config: Optional[SketchConfig] = None,
                 registers=None, name: str = "hotkey") -> None:
        self.config = config or SketchConfig()
        self.name = name
        self._registers = registers
        cfg = self.config
        self._salts = tuple((0x9E3779B9 * (i + 1)) & 0xFFFFFFFF
                            for i in range(cfg.rows))
        self._array_names: List[str] = []
        if registers is not None:
            rows = []
            for i in range(cfg.rows):
                array = registers.allocate(f"{name}_cms{i}", cfg.width,
                                           cfg.counter_bytes, initial=0)
                self._array_names.append(array.name)
                rows.append(array._data)
            keys_array = registers.allocate(f"{name}_topk_keys", cfg.topk,
                                            KEY_BYTES, initial=None)
            counts_array = registers.allocate(f"{name}_topk_counts", cfg.topk,
                                              cfg.counter_bytes, initial=0)
            self._array_names += [keys_array.name, counts_array.name]
            self._rows = rows
            self._tk_keys = keys_array._data
            self._tk_counts = counts_array._data
        else:
            self._rows = [[0] * cfg.width for _ in range(cfg.rows)]
            self._tk_keys = [None] * cfg.topk
            self._tk_counts = [0] * cfg.topk
        self._tk_index: Dict[bytes, int] = {}
        #: Total record() calls since the last reset (per-poll read volume).
        self.updates = 0

    # -- updates ---------------------------------------------------------- #

    def record(self, key: bytes, count: int = 1) -> int:
        """Count one (or ``count``) occurrences; returns the new estimate."""
        width = self.config.width
        estimate = None
        for salt, row in zip(self._salts, self._rows, strict=True):
            index = zlib.crc32(key, salt) % width
            value = row[index] + count
            row[index] = value
            if estimate is None or value < estimate:
                estimate = value
        self.updates += count
        self._update_topk(key, estimate)
        return estimate

    def estimate(self, key: bytes) -> int:
        """Current estimate for ``key`` (an over-estimate, never under)."""
        width = self.config.width
        estimate = None
        for salt, row in zip(self._salts, self._rows, strict=True):
            value = row[zlib.crc32(key, salt) % width]
            if estimate is None or value < estimate:
                estimate = value
        return estimate or 0

    def _update_topk(self, key: bytes, estimate: int) -> None:
        index = self._tk_index.get(key)
        if index is not None:
            if estimate > self._tk_counts[index]:
                self._tk_counts[index] = estimate
            return
        counts = self._tk_counts
        min_index = 0
        min_count = counts[0]
        for i in range(1, len(counts)):
            if counts[i] < min_count:
                min_count = counts[i]
                min_index = i
        if estimate <= min_count:
            return
        old = self._tk_keys[min_index]
        if old is not None:
            self._tk_index.pop(old, None)
        self._tk_keys[min_index] = key
        counts[min_index] = estimate
        self._tk_index[key] = min_index

    # -- queries ----------------------------------------------------------- #

    def heavy_hitters(self) -> List[Tuple[bytes, int]]:
        """Top-k ``(key, estimated count)``, hottest first.

        Ties break on the key bytes so same-seed runs order identically.
        """
        entries = [(self._tk_counts[i], key)
                   for key, i in self._tk_index.items()]
        entries.sort(key=lambda e: (-e[0], e[1]))
        return [(key, count) for count, key in entries]

    # -- maintenance ------------------------------------------------------- #

    def reset(self) -> None:
        """Zero all counters and the top-k table (the per-poll decay)."""
        for row in self._rows:
            for i in range(len(row)):
                row[i] = 0
        for i in range(len(self._tk_keys)):
            self._tk_keys[i] = None
            self._tk_counts[i] = 0
        self._tk_index.clear()
        self.updates = 0

    def forget(self, key: bytes) -> None:
        """Best-effort removal of one key's mass (conservative subtraction).

        Subtracts the key's current estimate from each of its buckets
        (clamped at zero) and drops it from the top-k table.  Exact unless
        the key collides with another in every row -- good enough for the
        hybrid tier's "reset the count after promotion/delete" semantics.
        """
        estimate = self.estimate(key)
        if estimate:
            width = self.config.width
            for salt, row in zip(self._salts, self._rows, strict=True):
                index = zlib.crc32(key, salt) % width
                value = row[index] - estimate
                row[index] = value if value > 0 else 0
        index = self._tk_index.pop(key, None)
        if index is not None:
            self._tk_keys[index] = None
            self._tk_counts[index] = 0

    def free(self) -> None:
        """Release the register arrays back to the switch SRAM pool."""
        if self._registers is not None:
            for name in self._array_names:
                self._registers.free(name)
            self._array_names = []


# --------------------------------------------------------------------- #
# Reaction: the controller's hot-key policy loop.
# --------------------------------------------------------------------- #

@dataclass
class HotKeyTierConfig:
    """Policy knobs of the hot-key tier."""

    #: How often the controller polls (and decays) the switch sketches.
    poll_interval: float = 5e-3
    #: Aggregate reads per poll interval that confirm a key as hot.
    hot_threshold: int = 64
    #: A widened key whose per-poll reads fall below
    #: ``hot_threshold * cold_fraction`` starts cooling down.
    cold_fraction: float = 0.25
    #: Consecutive cold polls before a widened key narrows again.
    cooldown_polls: int = 2
    #: Maximum keys widened at once (replica state is per-key SRAM).
    max_hot_keys: int = 8
    #: Extra replicas beyond the base chain; ``None`` widens to every
    #: member switch.
    extra_replicas: Optional[int] = None
    #: Freeze-and-copy window of one widen commit (control-plane RPCs plus
    #: the single-item state copy; writes of the key's vgroup drop during
    #: it and client retries land after the commit).
    widen_latency: float = 2e-3
    #: Attach an epoch-validated coalescing read cache to every client.
    client_cache: bool = True
    #: Sketch dimensions installed on each member switch.
    sketch: SketchConfig = field(default_factory=SketchConfig)

    @classmethod
    def from_options(cls, options) -> "HotKeyTierConfig":
        """Build from a spec's ``options["hotkey_tier"]`` dict (or pass an
        instance through)."""
        if options is None:
            return cls()
        if isinstance(options, cls):
            return options
        known = {f.name for f in fields(cls)}
        unknown = set(options) - known
        if unknown:
            raise ValueError(f"unknown hotkey_tier options: {sorted(unknown)}")
        kwargs = dict(options)
        sketch = kwargs.get("sketch")
        if isinstance(sketch, dict):
            kwargs["sketch"] = SketchConfig(**sketch)
        return cls(**kwargs)


@dataclass
class HotKeyTierStats:
    """Counters describing the manager's decisions."""

    polls: int = 0
    widened: int = 0
    narrowed: int = 0
    widen_aborted: int = 0
    #: Widen candidates skipped (capacity, unknown key, frozen vgroup).
    skipped: int = 0


class HotRoute:
    """The per-key wide chain serving one hot key.

    ``switches``/``ips`` hold the wide chain head-to-tail: the base chain
    followed by the extra replicas.  Writes traverse the whole wide chain
    (the commit point moves to the wide tail); reads rotate round-robin
    across every member, each carrying the forward suffix toward the wide
    tail so a dirty replica can forward instead of serving.
    """

    __slots__ = ("key", "vgroup", "switches", "ips", "extras", "_targets", "_rr")

    def __init__(self, key: bytes, vgroup: int, switches: List[str],
                 ips: Tuple[str, ...], extras: List[str]) -> None:
        self.key = key
        self.vgroup = vgroup
        self.switches = list(switches)
        self.ips = ips
        self.extras = list(extras)
        self._targets = tuple((ips[i], ips[i + 1:]) for i in range(len(ips)))
        self._rr = 0

    def next_read(self, epochs: Dict[int, int]):
        """(dst ip, forward suffix, vgroup, epoch) for the next rotated read."""
        index = self._rr
        self._rr = (index + 1) % len(self._targets)
        dst_ip, suffix = self._targets[index]
        return dst_ip, suffix, self.vgroup, epochs.get(self.vgroup, 0)


class HotKeyManager:
    """The controller-side policy loop of the hot-key tier.

    Attaching the manager installs a :class:`HotKeySketch` on every member
    switch program (register-array backed); :meth:`start` begins the
    periodic poll.  Hot routes live beside the per-vgroup chain table --
    widening never rewrites :attr:`NetChainController.chain_table`, so the
    failure-recovery and migration machinery keep operating on base chains
    -- and every widen/narrow commits through
    :meth:`NetChainController.bump_group_epoch`, which both invalidates
    the route cache and makes in-flight stragglers drop in the data plane.
    """

    def __init__(self, controller, config: Optional[HotKeyTierConfig] = None) -> None:
        self.controller = controller
        self.sim = controller.sim
        self.config = config or HotKeyTierConfig()
        self.stats = HotKeyTierStats()
        #: raw key -> HotRoute for every currently-widened key.  Consulted
        #: by the controller's routing hot path; kept small by
        #: ``max_hot_keys``.
        self.hot_routes: Dict[bytes, HotRoute] = {}
        self.caches: List[ClientReadCache] = []
        self._widening: Set[bytes] = set()
        self._cold_polls: Dict[bytes, int] = {}
        self._cancel = None
        #: Last controller chain version this manager acted on; any change
        #: it did not make itself (recovery, migration) narrows everything,
        #: because hot routes were derived from the superseded base chains.
        self._chain_version_seen = controller._chain_version
        if controller.hotkey_manager is not None:
            raise ValueError("controller already has a hot-key manager")
        controller.hotkey_manager = self
        for name in controller.members:
            program = controller.programs[name]
            program.hotkeys = HotKeySketch(self.config.sketch,
                                           registers=program.switch.registers)

    # -- lifecycle -------------------------------------------------------- #

    def start(self) -> None:
        """Begin the periodic sketch poll."""
        if self._cancel is None:
            self._cancel = self.sim.every(self.config.poll_interval, self._poll,
                                          start=self.config.poll_interval)

    def stop(self) -> None:
        """Stop polling, narrow every hot route and detach the sketches."""
        if self._cancel is not None:
            self._cancel()
            self._cancel = None
        for raw in list(self.hot_routes):
            self.narrow(raw)
        for name in self.controller.members:
            program = self.controller.programs.get(name)
            if program is not None and program.hotkeys is not None:
                program.hotkeys.free()
                program.hotkeys = None
        if self.controller.hotkey_manager is self:
            self.controller.hotkey_manager = None

    # -- routing hooks (called from the controller/agent hot path) -------- #

    def read_route(self, key):
        """Rotated read route for a hot key, or ``None`` for cold keys."""
        if not self.hot_routes:
            return None
        route = self.hot_routes.get(normalize_key(key))
        if route is None:
            return None
        return route.next_read(self.controller.epochs)

    # -- the policy loop --------------------------------------------------- #

    def _poll(self) -> None:
        controller = self.controller
        self.stats.polls += 1
        totals: Dict[bytes, int] = {}
        hot = self.hot_routes
        for name in controller.members:
            program = controller.programs.get(name)
            sketch = getattr(program, "hotkeys", None)
            if sketch is None:
                continue
            for key, count in sketch.heavy_hitters():
                if key not in hot:
                    totals[key] = totals.get(key, 0) + count
            # Already-widened keys are tracked through estimate(), not the
            # top-k table: rotation spreads their reads over every member,
            # so the per-switch share can drop below the top-k floor while
            # the aggregate is still hot -- cooling on table eviction alone
            # would thrash widen/narrow.
            for key in hot:
                totals[key] = totals.get(key, 0) + sketch.estimate(key)
            sketch.reset()
        if controller._chain_version != self._chain_version_seen:
            # Something else reconfigured (failure recovery, migration):
            # the hot routes were built on superseded base chains.
            self.narrow_all()
            return
        cold_bar = self.config.hot_threshold * self.config.cold_fraction
        for raw in list(self.hot_routes):
            if totals.get(raw, 0) < cold_bar:
                polls = self._cold_polls.get(raw, 0) + 1
                if polls >= self.config.cooldown_polls:
                    self.narrow(raw)
                else:
                    self._cold_polls[raw] = polls
            else:
                self._cold_polls[raw] = 0
        if controller.failed_switches or controller.recovering:
            return  # quiesce while the failure machinery owns the chains
        candidates = sorted(
            ((count, key) for key, count in totals.items()
             if count >= self.config.hot_threshold),
            key=lambda e: (-e[0], e[1]))
        for _count, raw in candidates:
            if (len(self.hot_routes) + len(self._widening)
                    >= self.config.max_hot_keys):
                break
            if raw in self.hot_routes or raw in self._widening:
                continue
            self.widen(raw)

    # -- widening ---------------------------------------------------------- #

    def widen(self, key) -> bool:
        """Start widening one key; commits after ``widen_latency``.

        Returns ``False`` when the key cannot be widened (unknown to the
        controller -- the cold/foreign-key guard -- its vgroup is frozen,
        or no second replica exists).
        """
        controller = self.controller
        raw = normalize_key(key)
        vgroup = controller.ring.vgroup_for_key(raw)
        if raw not in controller.keys_by_vgroup.get(vgroup, set()):
            self.stats.skipped += 1
            return False
        base = list(controller.chain_table[vgroup].switches)
        for name in base:
            if vgroup in controller.programs[name].frozen_write_vgroups:
                self.stats.skipped += 1
                return False  # a migration owns this group right now
        extras = [name for name in controller.members
                  if name not in base and name not in controller.failed_switches]
        if self.config.extra_replicas is not None:
            extras = extras[:self.config.extra_replicas]
        wide = base + extras
        if len(wide) < 2:
            self.stats.skipped += 1
            return False
        self._widening.add(raw)
        for name in wide:
            controller.programs[name].freeze_vgroup_writes(vgroup)
        self.sim.schedule(self.config.widen_latency, self._commit_widen,
                          raw, vgroup, base, extras)
        return True

    def _commit_widen(self, raw: bytes, vgroup: int, base: List[str],
                      extras: List[str]) -> None:
        controller = self.controller
        wide = base + extras

        def unfreeze() -> None:
            for name in wide:
                controller.programs[name].unfreeze_vgroup_writes(vgroup)

        def abort() -> None:
            unfreeze()
            self._widening.discard(raw)
            self.stats.widen_aborted += 1

        if controller.failed_switches.intersection(wide):
            abort()
            return
        if controller._chain_version != self._chain_version_seen:
            abort()  # the base chain moved under the freeze
            return
        item = controller.stores[base[-1]].read(raw)
        if item is None or not item.valid:
            abort()  # deleted (or garbage-collected) while confirming
            return
        if extras:
            try:
                controller.copy_group_state(base[-1], extras, [raw])
            except Exception:
                abort()  # e.g. a full store on an extra replica
                return
        version = (item.session, item.seq)
        ips = tuple(controller.switch_ip(name) for name in wide)
        tail = wide[-1]
        for index, name in enumerate(wide):
            program = controller.programs[name]
            if name == tail:
                siblings = tuple(ip for i, ip in enumerate(ips) if i != index)
                program.set_clean_notify(raw, siblings)
            else:
                program.set_read_gate(raw, version)
        self.hot_routes[raw] = HotRoute(raw, vgroup, wide, ips, extras)
        controller.bump_group_epoch(vgroup)
        unfreeze()
        self._widening.discard(raw)
        self._chain_version_seen = controller._chain_version
        self._cold_polls[raw] = 0
        self.stats.widened += 1
        controller._log(f"hotkeys: widened {raw.rstrip(chr(0).encode())!r} "
                        f"to {wide}")
        controller._emit("hotkey_widen",
                         key=raw.rstrip(b"\x00").decode("ascii", "replace"),
                         vgroup=vgroup, width=len(wide))

    # -- narrowing --------------------------------------------------------- #

    def narrow(self, key) -> bool:
        """Tear one hot route down, reverting the key to its base chain.

        Synchronous: the epoch bump makes every in-flight query addressed
        under the wide route drop before its store lookup, so the extra
        replicas' slots can be reclaimed immediately.
        """
        controller = self.controller
        raw = normalize_key(key)
        route = self.hot_routes.pop(raw, None)
        if route is None:
            return False
        self._cold_polls.pop(raw, None)
        for name in route.switches:
            program = controller.programs.get(name)
            if program is not None:
                program.clear_read_gate(raw)
                program.clear_clean_notify(raw)
        for name in route.extras:
            store = controller.stores.get(name)
            if store is not None:
                store.remove_key(raw)
        controller.bump_group_epoch(route.vgroup)
        self._chain_version_seen = controller._chain_version
        self.stats.narrowed += 1
        controller._log(f"hotkeys: narrowed {raw.rstrip(chr(0).encode())!r}")
        controller._emit("hotkey_narrow",
                         key=raw.rstrip(b"\x00").decode("ascii", "replace"),
                         vgroup=route.vgroup)
        return True

    def narrow_all(self) -> None:
        """Tear every hot route down (failure/reconfiguration quiesce)."""
        for raw in list(self.hot_routes):
            self.narrow(raw)
        self._chain_version_seen = self.controller._chain_version

    # -- controller event hooks -------------------------------------------- #

    def on_switch_failed(self, name: str) -> None:
        """Fast-failover hook: routes through a failed switch must die now
        (rotated reads would otherwise retry into it until the next poll)."""
        for raw, route in list(self.hot_routes.items()):
            if name in route.switches:
                self.narrow(raw)

    def forget_key(self, key) -> None:
        """Garbage-collection hook: a deleted key cannot stay widened."""
        raw = normalize_key(key)
        if raw in self.hot_routes:
            self.narrow(raw)


# --------------------------------------------------------------------- #
# Client tier: the epoch-validated coalescing read cache.
# --------------------------------------------------------------------- #

@dataclass
class ReadCacheStats:
    """Client-cache counters."""

    lookups: int = 0
    #: Reads served by coalescing onto an in-flight network read.
    coalesced: int = 0
    #: Network reads actually issued.
    network_reads: int = 0
    #: Entries discarded because the chain epoch moved while the read was
    #: in flight (their waiters re-issued).
    epoch_invalidations: int = 0
    #: Failures (timeouts, misses) shared with coalesced waiters.
    shared_failures: int = 0


class _CacheEntry:
    __slots__ = ("vgroup", "epoch", "waiters")

    def __init__(self, vgroup: int, epoch: int) -> None:
        self.vgroup = vgroup
        self.epoch = epoch
        # (future, callback, invoked_at) per coalesced waiter.
        self.waiters: List[Tuple] = []


class ClientReadCache:
    """Per-agent read cache: epoch-validated in-flight coalescing.

    See the module docstring for why this is the exact cache lifetime that
    stays linearizable without switch-driven invalidation.  Attach with
    ``agent.read_cache = ClientReadCache(directory)`` (the hot-key manager
    does this for every cluster agent when ``client_cache`` is on).
    """

    def __init__(self, directory) -> None:
        self.directory = directory
        self.stats = ReadCacheStats()
        self._inflight: Dict[bytes, _CacheEntry] = {}

    def _current_epoch(self, vgroup: int) -> int:
        epochs = getattr(self.directory, "epochs", None)
        if epochs is None:
            return 0
        return epochs.get(vgroup, 0)

    def read(self, agent, key, callback=None) -> KVFuture:
        """Serve one read through the cache (called by the agent)."""
        raw = normalize_key(key)
        self.stats.lookups += 1
        entry = self._inflight.get(raw)
        if entry is not None:
            self.stats.coalesced += 1
            future = KVFuture(agent.sim, op="read", key=raw)
            entry.waiters.append((future, callback, agent.sim.now))
            return future
        try:
            _ips, vgroup, epoch = agent._route(raw)
        except Exception:
            vgroup, epoch = 0, 0
        entry = _CacheEntry(vgroup, epoch)
        self._inflight[raw] = entry
        self.stats.network_reads += 1

        def on_reply(result) -> None:
            if callback is not None:
                callback(result)
            self._resolve(agent, raw, entry, result)

        return agent._submit(OpCode.READ, raw, callback=on_reply,
                             op_name="read")

    def _resolve(self, agent, raw: bytes, entry: _CacheEntry, result) -> None:
        if self._inflight.get(raw) is entry:
            del self._inflight[raw]
        waiters = entry.waiters
        if not waiters:
            return
        if result.ok and self._current_epoch(entry.vgroup) != entry.epoch:
            # The chain was reconfigured while the read was in flight; the
            # entry is stale by the epoch rule, so its waiters re-fetch
            # (re-coalescing onto one fresh read).
            self.stats.epoch_invalidations += 1
            for future, waiter_callback, _invoked_at in waiters:
                inner = self.read(agent, raw, waiter_callback)
                inner.then(future.resolve)
            return
        if not result.ok:
            self.stats.shared_failures += len(waiters)
        now = agent.sim.now
        for future, waiter_callback, invoked_at in waiters:
            shared = type(result)(
                ok=result.ok, op=result.op, key=result.key,
                status=result.status, value=result.value, seq=result.seq,
                session=result.session, latency=now - invoked_at,
                retries=result.retries, timed_out=result.timed_out)
            if waiter_callback is not None:
                waiter_callback(shared)
            future.resolve(agent._to_kv(shared, "read"))


# --------------------------------------------------------------------- #
# Deployment helper.
# --------------------------------------------------------------------- #

def enable_hotkey_tier(cluster, config=None) -> HotKeyManager:
    """Turn the tier on for a built NetChain-family cluster: install the
    sketches, start the manager and (by default) attach a read cache to
    every host agent.  Returns the manager (stop it via ``manager.stop()``
    or the deployment's teardown)."""
    tier_config = HotKeyTierConfig.from_options(config)
    manager = HotKeyManager(cluster.controller, config=tier_config)
    if tier_config.client_cache:
        for agent in cluster.agent_list():
            cache = ClientReadCache(cluster.controller)
            agent.read_cache = cache
            manager.caches.append(cache)
    manager.start()
    return manager
