"""The scenario runner: one workload, any backend, declarative checks.

The paper's evaluation is a matrix -- one workload swept over NetChain,
ZooKeeper and server-based variants.  :func:`run_scenario` is that matrix
as a function: it builds any registered backend from a
:class:`~repro.deploy.spec.DeploymentSpec`, drives closed-loop recorded
load through the unified :class:`repro.core.client.KVClient` protocol,
arms the spec's declarative fault schedule, and applies history and
linearizability checks at the end.  Everything stochastic derives from
``spec.seed``, so a scenario replays byte-identically: the same spec,
workload and seed produce the same operation history on every run.

Usage::

    spec = DeploymentSpec(backend="netchain", store_size=32, seed=7)
    result = run_scenario(spec, WorkloadSpec(duration=0.5, write_ratio=0.5))
    assert result.ok(), result.failures
    for name in available_backends():            # the whole matrix
        run_scenario(spec.with_backend(name), WorkloadSpec(duration=0.5))
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, List, Optional, Tuple, Union

from repro.core.history import History, LinearizabilityReport, check_linearizable
from repro.core.history_store import (
    SpillingHistory,
    VerdictCache,
    check_linearizable_streaming,
    default_verdict_cache,
)
from repro.core.trace import TelemetryPlane
from repro.deploy.base import Capabilities, Deployment, build_deployment
from repro.deploy.spec import DeploymentSpec
from repro.netsim.faults import FaultEvent, FaultSchedule
from repro.netsim.stats import LatencyRecorder
from repro.netsim.telemetry import TelemetryConfig, peak_rss_bytes
from repro.workloads.clients import LoadClient
from repro.workloads.generators import KeyValueWorkload, WorkloadConfig


@dataclass
class WorkloadSpec:
    """Declarative description of the load a scenario drives."""

    #: Logical closed-loop clients (spread over the deployment's hosts).
    num_clients: int = 2
    #: Outstanding queries per client.
    concurrency: int = 2
    #: Fraction of operations that are writes.
    write_ratio: float = 0.5
    #: Pause between a completion and the next issue (0 = closed loop).
    think_time: float = 0.0
    #: Zipf skew of key popularity (0 = uniform).
    zipf_theta: float = 0.0
    #: Seconds of simulated load before the measurement window.
    warmup: float = 0.0
    #: Seconds of measured simulated load.
    duration: float = 0.5
    #: Seconds to let outstanding queries drain after the window.
    drain: float = 0.25
    #: Distinguishable values per write (required for linearizability).
    unique_values: bool = True

    def validate(self) -> "WorkloadSpec":
        if self.num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {self.num_clients}")
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ValueError(f"write_ratio must be in [0, 1], got {self.write_ratio}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.warmup < 0 or self.drain < 0 or self.think_time < 0:
            raise ValueError("warmup, drain and think_time must be >= 0")
        return self


@dataclass
class ScenarioChecks:
    """Which checks to apply to a finished scenario."""

    #: Check the recorded history for per-key linearizability.
    linearizability: bool = True
    #: ``"memory"`` buffers the whole history in RAM (the default, as
    #: before); ``"spill"`` streams completed operations to an NDJSON run
    #: directory and verifies through the bounded-memory streaming checker
    #: (:mod:`repro.core.history_store`), so run size no longer dictates
    #: peak RSS.
    history_mode: str = "memory"
    #: Run directory for ``history_mode="spill"``; a temporary directory
    #: is created (and reported on the result) when unset.
    run_dir: Optional[Union[str, Path]] = None
    #: Worker processes for the streaming checker (0 = in-process).
    verify_workers: int = 0
    #: Verdict memoization for the streaming checker: ``"default"`` shares
    #: the process-wide cache (repeated seed x backend x fault scenarios
    #: skip re-checking unchanged key streams), ``None`` disables caching,
    #: or pass an explicit :class:`~repro.core.history_store.VerdictCache`.
    verdict_cache: Any = "default"
    #: Require at least one *successful* operation per load client (a
    #: wedged or all-failing client must not hide behind the others).
    require_progress: bool = True
    #: Fail when more than this fraction of completed operations failed
    #: (1.0 disables the threshold; ``require_progress`` still rejects
    #: clients with zero successes).
    max_failed_fraction: float = 1.0
    #: Extra checks: ``callable(result) -> None | str`` (a string is a
    #: failure message).
    custom: List[Callable[["ScenarioResult"], Optional[str]]] = \
        field(default_factory=list)


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    spec: DeploymentSpec
    workload: WorkloadSpec
    backend: str
    capabilities: Capabilities
    completed_ops: int = 0
    failed_ops: int = 0
    #: Completed / successful rates over the measurement window (simulated
    #: units; multiply by ``scale`` -> ``scaled_qps``).
    qps: float = 0.0
    success_qps: float = 0.0
    scaled_qps: float = 0.0
    #: Successful read/write completions over the whole run (drain
    #: included); their ratio splits ``success_qps`` into per-op rates.
    read_ops: int = 0
    write_ops: int = 0
    mean_read_latency: float = 0.0
    mean_write_latency: float = 0.0
    #: 99th-percentile read latency (0.0 when no reads completed).
    read_latency_p99: float = 0.0
    history: Optional[Union[History, SpillingHistory]] = None
    linearizability: Optional[LinearizabilityReport] = None
    #: Run directory holding the spilled NDJSON history (spill mode only);
    #: re-check offline with ``python -m repro.core.history_store check``.
    run_dir: Optional[Path] = None
    #: Process peak RSS (bytes) observed after verification, for the
    #: perf report's ``verify`` section (0 when unavailable).
    peak_rss_bytes: int = 0
    #: Keys whose linearizability verdict was served from the memoized
    #: verdict cache instead of a fresh search (spill mode only).
    verdict_cache_hits: int = 0
    #: The injector's replayable trace (empty without a fault schedule).
    fault_trace: List[FaultEvent] = field(default_factory=list)
    #: Human-readable check failures (empty == all checks passed).
    failures: List[str] = field(default_factory=list)
    #: The deployment the scenario ran on (clients, cluster, topology).
    deployment: Optional[Deployment] = None
    #: Whether the adaptive hot-key tier was running during the scenario
    #: (``spec.hotkey_tier`` requested it *and* the backend supports it).
    hotkey_tier_active: bool = False
    #: Deterministic telemetry summary (``telemetry/v1`` dict) when the
    #: spec enabled the telemetry plane; ``None`` otherwise.
    metrics: Optional[dict] = None
    #: ``trace/v1`` run directory holding spilled spans / metric series /
    #: control events (telemetry-enabled runs only).
    telemetry_dir: Optional[Path] = None

    def ok(self) -> bool:
        """All requested checks passed."""
        return not self.failures

    def signature(self) -> List[Tuple]:
        """A hashable per-operation trace for replay-identity assertions.

        Two runs of the same spec+workload+seed must produce *identical*
        signatures -- operation order, values, outcomes and timestamps --
        whether the history was buffered in memory or spilled to NDJSON
        (operations are ordered by invocation id, which both recording
        modes assign identically).
        """
        if self.history is None:
            return []
        if hasattr(self.history, "ops"):
            ops = self.history.ops
        else:  # spilled: NDJSON order is completion order; re-sort
            ops = sorted(self.history.iter_ops(), key=lambda op: op.op_id)
        return [(op.client, op.op, op.key, op.value, op.output, op.ok,
                 op.invoked_at, op.returned_at) for op in ops]


def run_scenario(spec: DeploymentSpec,
                 workload: Optional[WorkloadSpec] = None,
                 checks: Optional[ScenarioChecks] = None,
                 deployment: Optional[Deployment] = None) -> ScenarioResult:
    """Run one workload against one deployment spec and check the outcome.

    Args:
        spec: the declarative deployment (validated eagerly).
        workload: the load to drive; defaults to a small mixed workload.
        checks: which checks to apply; defaults to linearizability +
            progress.
        deployment: reuse an already-built deployment instead of building
            ``spec`` (the spec is still used for seeds and fault events).
    """
    workload = (workload or WorkloadSpec()).validate()
    checks = checks or ScenarioChecks()
    if spec.store_size < 1:
        raise ValueError(
            "run_scenario needs a preloaded store (store_size >= 1): the "
            "workload targets the preloaded keys, so an empty store would "
            "measure nothing but KEY_NOT_FOUND failures")
    if checks.history_mode not in ("memory", "spill"):
        raise ValueError(f"history_mode must be 'memory' or 'spill', "
                         f"got {checks.history_mode!r}")
    if deployment is None:
        deployment = build_deployment(spec)
    sim = deployment.sim

    plane: Optional[TelemetryPlane] = None
    telemetry_config = TelemetryConfig.coerce(spec.telemetry)
    if telemetry_config is not None:
        telemetry_dir = Path(telemetry_config.run_dir) \
            if telemetry_config.run_dir is not None \
            else Path(tempfile.mkdtemp(prefix="telemetry-run-"))
        plane = TelemetryPlane(
            sim, telemetry_config, telemetry_dir,
            meta={"backend": spec.backend, "seed": spec.seed,
                  "sample_interval": telemetry_config.sample_interval,
                  "trace_sample": telemetry_config.trace_sample})
        deployment.attach_telemetry(plane)
        plane.start()

    initial = deployment.initial_values() if checks.linearizability else None
    history: Optional[Union[History, SpillingHistory]] = None
    run_dir: Optional[Path] = None
    if checks.linearizability:
        if checks.history_mode == "spill":
            run_dir = Path(checks.run_dir) if checks.run_dir is not None \
                else Path(tempfile.mkdtemp(prefix="scenario-run-"))
            history = SpillingHistory(
                sim, run_dir, initial=initial,
                meta={"backend": spec.backend, "seed": spec.seed})
        else:
            history = History(sim)

    clients = deployment.clients(workload.num_clients)
    load_clients: List[LoadClient] = []
    for index, client in enumerate(clients):
        tag = f"c{index}"
        generator = KeyValueWorkload(
            WorkloadConfig(store_size=spec.store_size,
                           value_size=spec.value_size,
                           write_ratio=workload.write_ratio,
                           zipf_theta=workload.zipf_theta,
                           key_prefix=spec.key_prefix,
                           unique_values=workload.unique_values),
            rng=random.Random((spec.seed << 8) + index + 1), tag=tag)
        load_clients.append(LoadClient(client, generator,
                                       concurrency=workload.concurrency,
                                       history=history,
                                       think_time=workload.think_time,
                                       name=tag))

    schedule: Optional[FaultSchedule] = None
    if spec.faults:
        if not deployment.capabilities.supports_fault_injection:
            raise ValueError(f"backend {deployment.backend_name!r} does not "
                             f"support fault injection")
        schedule = deployment.fault_schedule()
        for event in spec.faults:
            schedule.at(event[0], event[1], *event[2:])
        schedule.arm()
        deployment.start_fault_reaction(spec.options)

    start = sim.now
    window_start = start + workload.warmup
    window_end = window_start + workload.duration
    for load_client in load_clients:
        load_client.start()
    sim.run(until=window_end)
    for load_client in load_clients:
        load_client.stop()
    sim.run(until=window_end + workload.drain)
    if schedule is not None:
        schedule.cancel()
    telemetry_summary: Optional[dict] = None
    if plane is not None:
        telemetry_summary = plane.finish()

    result = ScenarioResult(spec=spec, workload=workload,
                            backend=deployment.backend_name,
                            capabilities=deployment.capabilities,
                            history=history, deployment=deployment,
                            hotkey_tier_active=getattr(
                                deployment, "hotkey_tier_active", False))
    result.completed_ops = sum(c.completions.total() for c in load_clients)
    result.failed_ops = sum(c.failed_queries for c in load_clients)
    result.qps = sum(c.completions.rate_between(window_start, window_end)
                     for c in load_clients)
    result.success_qps = sum(c.successes.rate_between(window_start, window_end)
                             for c in load_clients)
    result.scaled_qps = result.success_qps * (
        deployment.scale if deployment.capabilities.scaled_throughput else 1.0)
    read_latency = LatencyRecorder()
    write_latency = LatencyRecorder()
    for load_client in load_clients:
        read_latency.merge(load_client.read_latency)
        write_latency.merge(load_client.write_latency)
    result.read_ops = read_latency.count()
    result.write_ops = write_latency.count()
    if result.read_ops:
        result.mean_read_latency = read_latency.mean()
        result.read_latency_p99 = read_latency.percentile(99.0)
    if result.write_ops:
        result.mean_write_latency = write_latency.mean()
    if schedule is not None:
        result.fault_trace = list(schedule.injector.trace)
    if plane is not None:
        result.metrics = telemetry_summary
        result.telemetry_dir = plane.run_dir

    # -- checks ---------------------------------------------------------- #

    if checks.require_progress:
        # Per-client and success-based, not aggregate completions: a
        # wedged client, or one whose every operation fails, must not
        # hide behind the other clients' throughput.
        for load_client in load_clients:
            if load_client.successes.total() == 0:
                result.failures.append(
                    f"client {load_client.name} completed no successful "
                    f"operations")
    # completed_ops counts every completion, failed ones included, so it
    # is the denominator -- not completed + failed, which double-counts.
    if (result.completed_ops
            and result.failed_ops / result.completed_ops > checks.max_failed_fraction):
        result.failures.append(
            f"{result.failed_ops}/{result.completed_ops} operations failed "
            f"(max_failed_fraction={checks.max_failed_fraction})")
    if checks.linearizability and history is not None:
        if checks.history_mode == "spill":
            store = history.finish()
            cache = checks.verdict_cache
            if cache == "default":
                cache = default_verdict_cache()
            elif cache is not None and not isinstance(cache, VerdictCache):
                raise TypeError(f"verdict_cache must be 'default', None or a "
                                f"VerdictCache, got {type(cache).__name__}")
            report = check_linearizable_streaming(
                store, initial=initial, workers=checks.verify_workers,
                cache=cache)
            result.run_dir = run_dir
            result.verdict_cache_hits = report.cache_hits
        else:
            report = check_linearizable(history, initial=initial)
        result.linearizability = report
        if not report.ok:
            result.failures.append(report.summary())
        elif report.exhausted_keys():
            result.failures.append(
                f"linearizability check exhausted on "
                f"{[r.key for r in report.exhausted_keys()]}")
    for check in checks.custom:
        message = check(result)
        if message:
            result.failures.append(message)

    # The process high-water mark, read after verification so spill-mode
    # runs report what the pipeline peaked at.
    result.peak_rss_bytes = peak_rss_bytes()

    deployment.teardown()
    return result
