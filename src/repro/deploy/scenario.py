"""The scenario runner: one workload, any backend, declarative checks.

The paper's evaluation is a matrix -- one workload swept over NetChain,
ZooKeeper and server-based variants.  :func:`run_scenario` is that matrix
as a function: it builds any registered backend from a
:class:`~repro.deploy.spec.DeploymentSpec`, drives closed-loop recorded
load through the unified :class:`repro.core.client.KVClient` protocol,
arms the spec's declarative fault schedule, and applies history and
linearizability checks at the end.  Everything stochastic derives from
``spec.seed``, so a scenario replays byte-identically: the same spec,
workload and seed produce the same operation history on every run.

Usage::

    spec = DeploymentSpec(backend="netchain", store_size=32, seed=7)
    result = run_scenario(spec, WorkloadSpec(duration=0.5, write_ratio=0.5))
    assert result.ok(), result.failures
    for name in available_backends():            # the whole matrix
        run_scenario(spec.with_backend(name), WorkloadSpec(duration=0.5))
"""

from __future__ import annotations

import dataclasses
import inspect
import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.history import History, LinearizabilityReport, check_linearizable
from repro.core.history_store import (
    SpillingHistory,
    VerdictCache,
    check_linearizable_streaming,
    default_verdict_cache,
)
from repro.core.trace import TelemetryPlane
from repro.deploy.base import Capabilities, Deployment, build_deployment
from repro.deploy.spec import DeploymentSpec, check_unknown_fields
from repro.netsim.faults import FaultEvent, FaultSchedule
from repro.netsim.stats import LatencyRecorder
from repro.netsim.telemetry import TelemetryConfig, peak_rss_bytes
from repro.workloads.clients import LoadClient
from repro.workloads.generators import KeyValueWorkload, WorkloadConfig


@dataclass
class WorkloadSpec:
    """Declarative description of the load a scenario drives."""

    #: Logical closed-loop clients (spread over the deployment's hosts).
    num_clients: int = 2
    #: Outstanding queries per client.
    concurrency: int = 2
    #: Fraction of operations that are writes.
    write_ratio: float = 0.5
    #: Pause between a completion and the next issue (0 = closed loop).
    think_time: float = 0.0
    #: Zipf skew of key popularity (0 = uniform).
    zipf_theta: float = 0.0
    #: Seconds of simulated load before the measurement window.
    warmup: float = 0.0
    #: Seconds of measured simulated load.
    duration: float = 0.5
    #: Seconds to let outstanding queries drain after the window.
    drain: float = 0.25
    #: Distinguishable values per write (required for linearizability).
    unique_values: bool = True

    def validate(self) -> "WorkloadSpec":
        if self.num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {self.num_clients}")
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ValueError(f"write_ratio must be in [0, 1], got {self.write_ratio}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.drain < 0:
            raise ValueError(f"drain must be >= 0, got {self.drain}")
        if self.think_time < 0:
            raise ValueError(f"think_time must be >= 0, got {self.think_time}")
        return self

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict; :meth:`from_dict` round-trips it exactly."""
        self.validate()
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkloadSpec":
        """Rebuild a validated workload spec; unknown keys raise
        :class:`ValueError` naming them, invalid values raise naming the
        offending field (eager -- at construction, not mid-scenario)."""
        if not isinstance(data, dict):
            raise ValueError(f"WorkloadSpec.from_dict needs a dict, "
                             f"got {type(data).__name__}")
        check_unknown_fields(cls, data, "WorkloadSpec")
        return cls(**data).validate()


@dataclass
class ScenarioChecks:
    """Which checks to apply to a finished scenario."""

    #: Check the recorded history for per-key linearizability.
    linearizability: bool = True
    #: ``"memory"`` buffers the whole history in RAM (the default, as
    #: before); ``"spill"`` streams completed operations to an NDJSON run
    #: directory and verifies through the bounded-memory streaming checker
    #: (:mod:`repro.core.history_store`), so run size no longer dictates
    #: peak RSS.
    history_mode: str = "memory"
    #: Run directory for ``history_mode="spill"``; a temporary directory
    #: is created (and reported on the result) when unset.
    run_dir: Optional[Union[str, Path]] = None
    #: Worker processes for the streaming checker (0 = in-process).
    verify_workers: int = 0
    #: Verdict memoization for the streaming checker: ``"default"`` shares
    #: the process-wide cache (repeated seed x backend x fault scenarios
    #: skip re-checking unchanged key streams), ``None`` disables caching,
    #: or pass an explicit :class:`~repro.core.history_store.VerdictCache`.
    verdict_cache: Any = "default"
    #: Require at least one *successful* operation per load client (a
    #: wedged or all-failing client must not hide behind the others).
    require_progress: bool = True
    #: Fail when more than this fraction of completed operations failed
    #: (1.0 disables the threshold; ``require_progress`` still rejects
    #: clients with zero successes).
    max_failed_fraction: float = 1.0
    #: Sample the NetChain chain invariants at every fault boundary and
    #: migration step, plus once at the end of the run (requires a backend
    #: exposing a controller -- the NetChain family).  Violations land on
    #: ``ScenarioResult.invariant_violations`` and fail the scenario.
    chain_invariants: bool = False
    #: Verify at the end of the run that every preloaded key is still
    #: readable from its current chain tail (the reconfiguration
    #: harness's "migration loses no keys" check; NetChain family only).
    no_lost_keys: bool = False
    #: Extra checks: ``callable(result) -> None | str`` (a string is a
    #: failure message).
    custom: List[Callable[["ScenarioResult"], Optional[str]]] = \
        field(default_factory=list)

    def validate(self) -> "ScenarioChecks":
        if self.history_mode not in ("memory", "spill"):
            raise ValueError(f"history_mode must be 'memory' or 'spill', "
                             f"got {self.history_mode!r}")
        if self.verify_workers < 0:
            raise ValueError(
                f"verify_workers must be >= 0, got {self.verify_workers}")
        if not 0.0 <= self.max_failed_fraction <= 1.0:
            raise ValueError(f"max_failed_fraction must be in [0, 1], "
                             f"got {self.max_failed_fraction}")
        if (self.verdict_cache not in ("default", None)
                and not isinstance(self.verdict_cache, VerdictCache)):
            raise TypeError(f"verdict_cache must be 'default', None or a "
                            f"VerdictCache, got "
                            f"{type(self.verdict_cache).__name__}")
        return self

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict; raises :class:`ValueError` naming any field
        that cannot cross a process boundary (``custom`` callables, a live
        ``VerdictCache`` instance, a non-string ``run_dir``)."""
        self.validate()
        if self.custom:
            raise ValueError(
                "ScenarioChecks.custom holds callables and cannot be "
                "serialized; matrix cells must describe checks declaratively")
        if isinstance(self.verdict_cache, VerdictCache):
            raise ValueError(
                "ScenarioChecks.verdict_cache is a live VerdictCache "
                "instance; serialize 'default' or None instead")
        data = {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self) if f.name != "custom"}
        if data["run_dir"] is not None:
            data["run_dir"] = str(data["run_dir"])
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioChecks":
        """Rebuild validated checks; unknown keys raise :class:`ValueError`
        naming them ("custom" cannot ride JSON and is rejected too)."""
        if not isinstance(data, dict):
            raise ValueError(f"ScenarioChecks.from_dict needs a dict, "
                             f"got {type(data).__name__}")
        if "custom" in data:
            raise ValueError("ScenarioChecks.custom holds callables and "
                             "cannot be deserialized from JSON")
        check_unknown_fields(cls, data, "ScenarioChecks")
        return cls(**data).validate()


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    spec: DeploymentSpec
    workload: WorkloadSpec
    backend: str
    capabilities: Capabilities
    completed_ops: int = 0
    failed_ops: int = 0
    #: Completed / successful rates over the measurement window (simulated
    #: units; multiply by ``scale`` -> ``scaled_qps``).
    qps: float = 0.0
    success_qps: float = 0.0
    scaled_qps: float = 0.0
    #: Successful read/write completions over the whole run (drain
    #: included); their ratio splits ``success_qps`` into per-op rates.
    read_ops: int = 0
    write_ops: int = 0
    mean_read_latency: float = 0.0
    mean_write_latency: float = 0.0
    #: 99th-percentile read latency (0.0 when no reads completed).
    read_latency_p99: float = 0.0
    history: Optional[Union[History, SpillingHistory]] = None
    linearizability: Optional[LinearizabilityReport] = None
    #: Run directory holding the spilled NDJSON history (spill mode only);
    #: re-check offline with ``python -m repro.core.history_store check``.
    run_dir: Optional[Path] = None
    #: The *process-wide high-water mark* of resident set size, in bytes,
    #: read after verification so spill-mode runs report what the pipeline
    #: peaked at (0 when unavailable).  This is a per-process maximum, not
    #: a per-scenario delta: when cells run across a worker pool, merging
    #: takes the **max across workers** -- summing high-water marks would
    #: fabricate memory nobody allocated (see
    #: :func:`repro.deploy.matrix.run_matrix`).
    peak_rss_bytes: int = 0
    #: Keys whose linearizability verdict was served from the memoized
    #: verdict cache instead of a fresh search (spill mode only).
    verdict_cache_hits: int = 0
    #: The injector's replayable trace (empty without a fault schedule).
    fault_trace: List[FaultEvent] = field(default_factory=list)
    #: Human-readable check failures (empty == all checks passed).
    failures: List[str] = field(default_factory=list)
    #: Chain-invariant violations sampled at fault boundaries, migration
    #: steps and once at the end (``checks.chain_invariants`` only).
    invariant_violations: List[str] = field(default_factory=list)
    #: Per-link delivery/drop counters, keyed by link name (populated
    #: whenever the deployment's fault injector was engaged).
    drop_report: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: One report per executed membership change, in order
    #: (``spec.options["reconfig"]`` scenarios only).
    migrations: List[Any] = field(default_factory=list)
    #: Keys unreadable from their chain tail at the end of the run
    #: (``checks.no_lost_keys`` only; must be empty).
    lost_keys: List[str] = field(default_factory=list)
    #: Merged per-operation latency recorders across all load clients
    #: (serializable via ``state_dict()``; matrix workers ship them back
    #: so the merged report can :meth:`~LatencyRecorder.merge` exactly).
    read_latency: Optional[LatencyRecorder] = None
    write_latency: Optional[LatencyRecorder] = None
    #: The deployment the scenario ran on (clients, cluster, topology).
    deployment: Optional[Deployment] = None
    #: Whether the adaptive hot-key tier was running during the scenario
    #: (``spec.hotkey_tier`` requested it *and* the backend supports it).
    hotkey_tier_active: bool = False
    #: Deterministic telemetry summary (``telemetry/v1`` dict) when the
    #: spec enabled the telemetry plane; ``None`` otherwise.
    metrics: Optional[dict] = None
    #: ``trace/v1`` run directory holding spilled spans / metric series /
    #: control events (telemetry-enabled runs only).
    telemetry_dir: Optional[Path] = None

    def ok(self) -> bool:
        """All requested checks passed."""
        return not self.failures

    def trace_signature(self) -> List[Tuple[float, str, str, str]]:
        """The fault trace as hashable tuples (replay-identity assertions)."""
        return [event.signature() for event in self.fault_trace]

    def migration_signature(self) -> List[Tuple[int, str, str, int]]:
        """Hashable per-migration-step outcomes (replay-identity assertions)."""
        return [(step.vgroup, step.kind, step.status, step.keys_moved)
                for report in self.migrations for step in report.steps]

    def consistent(self) -> bool:
        """No invariant violation, no lost key, a linearizable history."""
        if self.invariant_violations or self.lost_keys:
            return False
        if self.linearizability is None:
            return True
        return self.linearizability.ok \
            and not self.linearizability.exhausted_keys()

    def signature(self) -> List[Tuple]:
        """A hashable per-operation trace for replay-identity assertions.

        Two runs of the same spec+workload+seed must produce *identical*
        signatures -- operation order, values, outcomes and timestamps --
        whether the history was buffered in memory or spilled to NDJSON
        (operations are ordered by invocation id, which both recording
        modes assign identically).
        """
        if self.history is None:
            return []
        if hasattr(self.history, "ops"):
            ops = self.history.ops
        else:  # spilled: NDJSON order is completion order; re-sort
            ops = sorted(self.history.iter_ops(), key=lambda op: op.op_id)
        return [(op.client, op.op, op.key, op.value, op.output, op.ok,
                 op.invoked_at, op.returned_at) for op in ops]


def run_scenario(spec: DeploymentSpec,
                 workload: Optional[WorkloadSpec] = None,
                 checks: Optional[ScenarioChecks] = None,
                 deployment: Optional[Deployment] = None,
                 schedule_builder: Optional[Callable] = None) -> ScenarioResult:
    """Run one workload against one deployment spec and check the outcome.

    This is the single scenario entry point: the fault harness
    (:func:`repro.experiments.failures.run_fault_scenario`) and the
    reconfiguration harness
    (:func:`repro.experiments.elasticity.run_reconfig_scenario`) are thin
    wrappers over it, and :mod:`repro.deploy.matrix` workers reconstruct
    its three inputs from JSON alone.  Planned membership changes ride
    ``spec.options["reconfig"]`` (``{"changes": [(at, joins, leaves),
    ...], "config": ReconfigConfig | field dict, "link_new_to": [...]}``)
    and a failure detector config rides ``spec.options["detector_config"]``
    -- both serializable, so a fault/reconfig cell is still a plain spec.

    Args:
        spec: the declarative deployment (validated eagerly).
        workload: the load to drive; defaults to a small mixed workload.
        checks: which checks to apply; defaults to linearizability +
            progress.
        deployment: reuse an already-built deployment instead of building
            ``spec`` (the spec is still used for seeds and fault events).
        schedule_builder: escape hatch for fault schedules that need live
            objects (trigger predicates over the cluster):
            ``schedule_builder(schedule)`` or ``schedule_builder(schedule,
            cluster)`` receives the un-armed :class:`FaultSchedule` --
            with ``spec.faults`` already added -- and returns it with its
            events added.  Not serializable; matrix cells use
            ``spec.faults`` instead.
    """
    workload = (workload or WorkloadSpec()).validate()
    checks = (checks or ScenarioChecks()).validate()
    if spec.store_size < 1:
        raise ValueError(
            "run_scenario needs a preloaded store (store_size >= 1): the "
            "workload targets the preloaded keys, so an empty store would "
            "measure nothing but KEY_NOT_FOUND failures")
    if deployment is None:
        deployment = build_deployment(spec)
    sim = deployment.sim

    # The NetChain-family control plane, where the chain-invariant and
    # lost-key checks (and live reconfiguration) live.
    cluster = getattr(deployment, "cluster", None)
    controller = getattr(cluster, "controller", None)
    reconfig = spec.options.get("reconfig") or {}
    if reconfig and not deployment.capabilities.supports_reconfig:
        raise ValueError(f"backend {deployment.backend_name!r} does not "
                         f"support reconfiguration")
    if (checks.chain_invariants or checks.no_lost_keys) and controller is None:
        raise ValueError(
            f"chain_invariants/no_lost_keys checks need a backend exposing "
            f"a chain controller; {deployment.backend_name!r} does not")

    plane: Optional[TelemetryPlane] = None
    telemetry_config = TelemetryConfig.coerce(spec.telemetry)
    if telemetry_config is not None:
        telemetry_dir = Path(telemetry_config.run_dir) \
            if telemetry_config.run_dir is not None \
            else Path(tempfile.mkdtemp(prefix="telemetry-run-"))
        plane = TelemetryPlane(
            sim, telemetry_config, telemetry_dir,
            meta={"backend": spec.backend, "seed": spec.seed,
                  "sample_interval": telemetry_config.sample_interval,
                  "trace_sample": telemetry_config.trace_sample})
        deployment.attach_telemetry(plane)
        plane.start()

    initial = deployment.initial_values() if checks.linearizability else None
    history: Optional[Union[History, SpillingHistory]] = None
    run_dir: Optional[Path] = None
    if checks.linearizability:
        if checks.history_mode == "spill":
            run_dir = Path(checks.run_dir) if checks.run_dir is not None \
                else Path(tempfile.mkdtemp(prefix="scenario-run-"))
            history = SpillingHistory(
                sim, run_dir, initial=initial,
                meta={"backend": spec.backend, "seed": spec.seed})
        else:
            history = History(sim)

    clients = deployment.clients(workload.num_clients)
    load_clients: List[LoadClient] = []
    for index, client in enumerate(clients):
        tag = f"c{index}"
        generator = KeyValueWorkload(
            WorkloadConfig(store_size=spec.store_size,
                           value_size=spec.value_size,
                           write_ratio=workload.write_ratio,
                           zipf_theta=workload.zipf_theta,
                           key_prefix=spec.key_prefix,
                           unique_values=workload.unique_values),
            rng=random.Random((spec.seed << 8) + index + 1), tag=tag)
        load_clients.append(LoadClient(client, generator,
                                       concurrency=workload.concurrency,
                                       history=history,
                                       think_time=workload.think_time,
                                       name=tag))

    schedule: Optional[FaultSchedule] = None
    injector = None
    if spec.faults or schedule_builder is not None:
        if not deployment.capabilities.supports_fault_injection:
            raise ValueError(f"backend {deployment.backend_name!r} does not "
                             f"support fault injection")
        schedule = deployment.fault_schedule()
        for event in spec.faults:
            schedule.at(event[0], event[1], *event[2:])
        if schedule_builder is not None:
            if len(inspect.signature(schedule_builder).parameters) >= 2:
                schedule = schedule_builder(
                    schedule, cluster if cluster is not None else deployment)
            else:
                schedule = schedule_builder(schedule)
        injector = schedule.injector

    violations: List[str] = []
    observer = None
    if checks.chain_invariants \
            and deployment.capabilities.supports_fault_injection:
        from repro.core.invariants import invariant_observer
        if injector is None:
            injector = deployment.fault_injector
        observer = invariant_observer(controller, violations)
        injector.observers.append(observer)

    if schedule is not None:
        schedule.arm()
    if (schedule is not None or reconfig
            or "detector_config" in spec.options):
        deployment.start_fault_reaction(spec.options)

    migrations: List[Any] = []
    if reconfig.get("changes"):
        from repro.core.invariants import sample_chain_invariants
        from repro.core.reconfig import ReconfigConfig
        reconfig_config = reconfig.get("config")
        if isinstance(reconfig_config, dict):
            reconfig_config = ReconfigConfig(**reconfig_config)
        link_new_to = reconfig.get("link_new_to")

        def start_change(joins: List[str], leaves: List[str]) -> None:
            for name in joins:
                if name not in cluster.topology.switches:
                    cluster.add_switch(name, link_to=link_new_to)
            target = [m for m in controller.ring.switch_names
                      if m not in leaves]
            target += [j for j in joins if j not in target and j not in leaves]
            coordinator = cluster.migrate(target, config=reconfig_config)
            if checks.chain_invariants:
                coordinator.observers.append(
                    lambda _step: violations.extend(sample_chain_invariants(
                        controller, raise_on_violation=False)))
            migrations.append(coordinator.report)

        for change in reconfig["changes"]:
            at, joins, leaves = change[0], change[1], change[2]
            sim.schedule_at(
                at, lambda j=list(joins), l=list(leaves): start_change(j, l))

    start = sim.now
    window_start = start + workload.warmup
    window_end = window_start + workload.duration
    for load_client in load_clients:
        load_client.start()
    sim.run(until=window_end)
    for load_client in load_clients:
        load_client.stop()
    sim.run(until=window_end + workload.drain)
    if schedule is not None:
        schedule.cancel()
    telemetry_summary: Optional[dict] = None
    if plane is not None:
        telemetry_summary = plane.finish()

    result = ScenarioResult(spec=spec, workload=workload,
                            backend=deployment.backend_name,
                            capabilities=deployment.capabilities,
                            history=history, deployment=deployment,
                            hotkey_tier_active=getattr(
                                deployment, "hotkey_tier_active", False))
    result.completed_ops = sum(c.completions.total() for c in load_clients)
    result.failed_ops = sum(c.failed_queries for c in load_clients)
    result.qps = sum(c.completions.rate_between(window_start, window_end)
                     for c in load_clients)
    result.success_qps = sum(c.successes.rate_between(window_start, window_end)
                             for c in load_clients)
    result.scaled_qps = result.success_qps * (
        deployment.scale if deployment.capabilities.scaled_throughput else 1.0)
    read_latency = LatencyRecorder()
    write_latency = LatencyRecorder()
    for load_client in load_clients:
        read_latency.merge(load_client.read_latency)
        write_latency.merge(load_client.write_latency)
    result.read_latency = read_latency
    result.write_latency = write_latency
    result.read_ops = read_latency.count()
    result.write_ops = write_latency.count()
    if result.read_ops:
        result.mean_read_latency = read_latency.mean()
        result.read_latency_p99 = read_latency.percentile(99.0)
    if result.write_ops:
        result.mean_write_latency = write_latency.mean()
    if injector is not None:
        result.fault_trace = list(injector.trace)
        result.drop_report = injector.drop_report()
    result.migrations = migrations
    if observer is not None:
        # Detach this run's observer so a reused deployment does not keep
        # appending later runs' findings into this (already returned) result.
        injector.observers.remove(observer)
    if plane is not None:
        result.metrics = telemetry_summary
        result.telemetry_dir = plane.run_dir

    # -- checks ---------------------------------------------------------- #

    if checks.require_progress:
        # Per-client and success-based, not aggregate completions: a
        # wedged client, or one whose every operation fails, must not
        # hide behind the other clients' throughput.
        for load_client in load_clients:
            if load_client.successes.total() == 0:
                result.failures.append(
                    f"client {load_client.name} completed no successful "
                    f"operations")
    # completed_ops counts every completion, failed ones included, so it
    # is the denominator -- not completed + failed, which double-counts.
    if (result.completed_ops
            and result.failed_ops / result.completed_ops > checks.max_failed_fraction):
        result.failures.append(
            f"{result.failed_ops}/{result.completed_ops} operations failed "
            f"(max_failed_fraction={checks.max_failed_fraction})")
    if checks.chain_invariants:
        from repro.core.invariants import sample_chain_invariants
        violations.extend(sample_chain_invariants(
            controller, raise_on_violation=False))
        result.invariant_violations = violations
        if violations:
            result.failures.append(
                f"{len(violations)} chain invariant violation(s): "
                f"{violations[0]}")
    if checks.no_lost_keys:
        # Zero lost keys: every key registered in the directory is
        # readable from its current chain tail.
        for key in deployment.keys:
            vgroup = controller.ring.vgroup_for_key(key)
            info = controller.chain_table.get(vgroup)
            store = controller.stores.get(info.switches[-1]) \
                if info is not None else None
            item = store.read(key) if store is not None else None
            if item is None:
                result.lost_keys.append(key)
        if result.lost_keys:
            result.failures.append(
                f"{len(result.lost_keys)} key(s) unreadable after the run: "
                f"{result.lost_keys[:5]}")
    if checks.linearizability and history is not None:
        if checks.history_mode == "spill":
            store = history.finish()
            cache = checks.verdict_cache
            if cache == "default":
                cache = default_verdict_cache()
            elif cache is not None and not isinstance(cache, VerdictCache):
                raise TypeError(f"verdict_cache must be 'default', None or a "
                                f"VerdictCache, got {type(cache).__name__}")
            report = check_linearizable_streaming(
                store, initial=initial, workers=checks.verify_workers,
                cache=cache)
            result.run_dir = run_dir
            result.verdict_cache_hits = report.cache_hits
        else:
            report = check_linearizable(history, initial=initial)
        result.linearizability = report
        if not report.ok:
            result.failures.append(report.summary())
        elif report.exhausted_keys():
            result.failures.append(
                f"linearizability check exhausted on "
                f"{[r.key for r in report.exhausted_keys()]}")
    for check in checks.custom:
        message = check(result)
        if message:
            result.failures.append(message)

    # The process high-water mark, read after verification so spill-mode
    # runs report what the pipeline peaked at.
    result.peak_rss_bytes = peak_rss_bytes()

    deployment.teardown()
    return result
