"""The declarative deployment specification.

A :class:`DeploymentSpec` is a plain, serializable description of one
deployment of *any* registered backend: topology scale, membership sizes,
preloaded store, loss rate, a declarative fault schedule, and a single
seed from which every stochastic choice in the deployment derives.  The
same spec (same seed) always builds the same deployment; sweeping the
evaluation matrix is editing fields, not writing a new builder.

Backend-specific knobs that do not generalize (a custom
``ControllerConfig``, the hybrid tier policy, the ZooKeeper commit delay)
ride in ``options``; each backend documents the keys it reads.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple


def json_safe(value: Any, where: str) -> Any:
    """Recursively convert ``value`` to JSON-safe types.

    Dataclass config objects (``ControllerConfig``, ``DetectorConfig``,
    ``ReconfigConfig``, ...) become plain field dicts and tuples become
    lists, so a spec built in-process serializes without callers
    flattening anything by hand.  Anything else non-JSON raises a
    :class:`ValueError` naming the offending field path (``where``).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [json_safe(item, f"{where}[{index}]")
                for index, item in enumerate(value)]
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise ValueError(
                    f"{where} has a non-string key {key!r}; JSON objects "
                    f"need string keys")
        return {key: json_safe(item, f"{where}[{key!r}]")
                for key, item in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: json_safe(getattr(value, f.name), f"{where}.{f.name}")
                for f in dataclasses.fields(value)}
    raise ValueError(
        f"{where} is not JSON-serializable: {type(value).__name__} "
        f"({value!r}); task descriptors must be constructible from JSON "
        f"alone -- pass plain values or dataclass configs")


def check_unknown_fields(cls, data: Dict, what: str) -> None:
    """Reject dict keys that are not fields of ``cls``, naming them."""
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown {what} field(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})")


@dataclass
class DeploymentSpec:
    """Declarative description of one deployment on the simulated testbed.

    Attributes:
        backend: registered backend name (``netchain``, ``zookeeper``,
            ``server-chain``, ``primary-backup``, ``hybrid``).
        scale: the scale model's capacity divisor (see DESIGN.md).
        num_hosts: client/server machines attached to the testbed.
        replication: chain length / ensemble size / replica count --
            whatever "number of replicas" means for the backend.
        vnodes_per_switch: virtual groups per switch (NetChain-family).
        store_size: keys preloaded before the workload starts.
        value_size: size of every preloaded value, in bytes.
        store_slots: per-switch key slots; ``None`` sizes them from
            ``store_size``.
        loss_rate: uniform packet-loss probability on every link.
        retry_timeout: client retry timeout (NetChain-family).
        unlimited_capacity: drop the scaled capacity ceilings
            (latency-bound experiments).
        hotkey_tier: enable the adaptive hot-key tier
            (:mod:`repro.core.hotkeys`) on backends whose capabilities set
            ``supports_hotkey_tier``; others ignore the flag, so the same
            skewed scenario runs across the whole matrix.  Tier knobs ride
            ``options["hotkey_tier"]`` (a ``HotKeyTierConfig`` field dict).
        seed: the single seed every stochastic choice derives from.
        key_prefix: prefix of the preloaded key names.
        extra_keys: additional keys to preload (e.g. lock keys).
        faults: declarative fault schedule, one ``(at, action, *args)``
            tuple per event, armed on the deployment's fault injector
            when a scenario runs (e.g. ``(0.5, "fail_switch", "S1")``).
        telemetry: the deterministic telemetry plane.  ``None``/``False``
            (default) keeps every hot path on its untraced branch;
            ``True`` enables tracing + metrics + the control event log
            with defaults; a dict or
            :class:`repro.netsim.telemetry.TelemetryConfig` sets the
            knobs (``run_dir``, ``sample_interval``, ``trace``,
            ``metrics``, ``events``, ``trace_sample``).  The scenario
            runner spills a ``trace/v1`` run directory and stores the
            summary on ``ScenarioResult.metrics``.
        options: backend-specific knobs (documented per backend).
    """

    backend: str = "netchain"
    scale: float = 1000.0
    num_hosts: int = 4
    replication: int = 3
    vnodes_per_switch: int = 4
    store_size: int = 0
    value_size: int = 64
    store_slots: Optional[int] = None
    loss_rate: float = 0.0
    retry_timeout: float = 500e-6
    unlimited_capacity: bool = False
    hotkey_tier: bool = False
    seed: int = 0
    key_prefix: str = "k"
    extra_keys: List[str] = field(default_factory=list)
    faults: List[Tuple] = field(default_factory=list)
    telemetry: Any = None
    options: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Validation (eager: fail where the spec was written).
    # ------------------------------------------------------------------ #

    def validate(self) -> "DeploymentSpec":
        """Raise :class:`ValueError` on an invalid spec; returns ``self``.

        Backend-specific constraints (e.g. replication versus member
        count) are checked by the backend's own ``check()`` when the
        deployment is built; this method covers everything a spec can get
        wrong on its own.
        """
        if not self.backend:
            raise ValueError("spec needs a backend name")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.num_hosts < 1:
            raise ValueError(f"num_hosts must be at least 1, got {self.num_hosts}")
        if self.replication < 1:
            raise ValueError(
                f"replication must be at least 1, got {self.replication}")
        if self.vnodes_per_switch < 1:
            raise ValueError(f"vnodes_per_switch must be at least 1, "
                             f"got {self.vnodes_per_switch}")
        if self.store_size < 0:
            raise ValueError(f"store_size must be >= 0, got {self.store_size}")
        if self.value_size < 0:
            raise ValueError(f"value_size must be >= 0, got {self.value_size}")
        if self.store_slots is not None and self.store_slots < self.store_size:
            raise ValueError(
                f"store_slots ({self.store_slots}) cannot hold store_size "
                f"({self.store_size}) keys")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.retry_timeout <= 0:
            raise ValueError(
                f"retry_timeout must be positive, got {self.retry_timeout}")
        for event in self.faults:
            if len(event) < 2:
                raise ValueError(f"fault events are (at, action, *args) tuples, "
                                 f"got {event!r}")
            at, action = event[0], event[1]
            if not isinstance(action, str):
                raise ValueError(f"fault action must be a string, got {action!r}")
            if at < 0:
                raise ValueError(f"fault time must be >= 0, got {at}")
        if self.telemetry is not None and self.telemetry is not False:
            from repro.netsim.telemetry import TelemetryConfig
            TelemetryConfig.coerce(self.telemetry).validate()
        return self

    # ------------------------------------------------------------------ #
    # Serialization (matrix cells are JSON task descriptors).
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict from which :meth:`from_dict` rebuilds the spec.

        Dataclass configs riding ``options`` (``controller_config``,
        ``detector_config``, a ``reconfig`` config) are flattened to field
        dicts -- the consuming backends coerce them back.  Values that
        cannot cross a process boundary as JSON (live objects, open
        handles) raise :class:`ValueError` naming the offending field.
        """
        self.validate()
        data: Dict[str, Any] = {}
        for f in dataclasses.fields(self):
            name = f.name
            value = getattr(self, name)
            if name == "telemetry" and value is not None \
                    and not isinstance(value, (bool, dict)):
                from repro.netsim.telemetry import TelemetryConfig
                value = TelemetryConfig.coerce(value)
            data[name] = json_safe(value, f"DeploymentSpec.{name}")
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DeploymentSpec":
        """Rebuild a validated spec from :meth:`to_dict` output.

        Unknown keys raise :class:`ValueError` naming them; fault events
        round-trip from JSON lists back to ``(at, action, *args)`` tuples.
        """
        if not isinstance(data, dict):
            raise ValueError(f"DeploymentSpec.from_dict needs a dict, "
                             f"got {type(data).__name__}")
        check_unknown_fields(cls, data, "DeploymentSpec")
        kwargs = dict(data)
        if "faults" in kwargs:
            faults = kwargs["faults"]
            if not isinstance(faults, (list, tuple)):
                raise ValueError(f"DeploymentSpec.faults must be a list of "
                                 f"(at, action, *args) events, got {faults!r}")
            kwargs["faults"] = [tuple(event) for event in faults]
        if "extra_keys" in kwargs:
            kwargs["extra_keys"] = list(kwargs["extra_keys"])
        return cls(**kwargs).validate()

    # ------------------------------------------------------------------ #
    # Convenience.
    # ------------------------------------------------------------------ #

    def with_backend(self, backend: str, **overrides) -> "DeploymentSpec":
        """A copy of this spec targeting another backend.

        This is how one scenario sweeps the backend matrix: the workload
        knobs stay identical and only the backend (plus any
        backend-specific overrides) changes.
        """
        return replace(self, backend=backend, **overrides)

    def key_names(self) -> List[str]:
        """The preloaded key names (prefix + index, plus ``extra_keys``)."""
        from repro.workloads.generators import standard_key_names
        return standard_key_names(self.store_size, self.key_prefix) \
            + list(self.extra_keys)
