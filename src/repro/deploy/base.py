"""The deployment protocol and the pluggable backend registry.

Every way of running a key-value service in this repository -- the
in-network NetChain cluster, the ZooKeeper ensemble, the server-hosted
chain and primary-backup baselines, and the hybrid network/server tiering
-- is packaged as a :class:`Backend` that turns one declarative
:class:`~repro.deploy.spec.DeploymentSpec` into a :class:`Deployment`.
Deployments all expose the same surface: the simulator, clients speaking
the unified :class:`repro.core.client.KVClient` protocol, a fault
injector, capability flags and a ``teardown``.  Everything downstream
(scenario runner, experiments, benchmarks, examples) composes against
this surface, so a new backend or workload combination is a config
change, not a new builder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.client import KVClient
from repro.deploy.spec import DeploymentSpec
from repro.netsim.faults import FaultInjector, FaultSchedule


@dataclass(frozen=True)
class Capabilities:
    """What a deployment can do, for scenario/check gating.

    Checks and schedules consult these flags instead of special-casing
    backend names: a scenario that wants live reconfiguration simply
    requires ``supports_reconfig`` and runs on anything that sets it.
    """

    #: Live membership changes with key migration (:mod:`repro.core.reconfig`).
    supports_reconfig: bool = False
    #: Server-pushed change notifications (ZooKeeper watches).
    supports_watch: bool = False
    #: Atomic compare-and-swap.
    supports_cas: bool = True
    #: Distinct create operation (control-plane insert on NetChain).
    supports_insert: bool = True
    #: Seeded fault injection over the deployment's topology.
    supports_fault_injection: bool = True
    #: Throughput numbers are scaled back by ``deployment.scale``.
    scaled_throughput: bool = True
    #: The adaptive hot-key tier (:mod:`repro.core.hotkeys`): sketch
    #: detection, chain widening, epoch-invalidated client caching.
    supports_hotkey_tier: bool = False

    def as_dict(self) -> Dict[str, bool]:
        return {name: getattr(self, name) for name in (
            "supports_reconfig", "supports_watch", "supports_cas",
            "supports_insert", "supports_fault_injection", "scaled_throughput",
            "supports_hotkey_tier")}


class Deployment:
    """The common surface of a built deployment.

    Concrete deployments (one class per backend) fill in the attributes
    and override the client factory; the base class provides the shared
    fault-injection plumbing and bookkeeping.
    """

    #: Set by subclasses / the builder.
    backend_name: str = "kv"
    capabilities: Capabilities = Capabilities()
    spec: Optional[DeploymentSpec] = None
    #: Preloaded key names (subclasses assign their own list).
    keys: List[str] = ()  # type: ignore[assignment]
    #: Scale factor for mapping measured throughput to absolute units.
    scale: float = 1.0

    # -- simulation ------------------------------------------------------ #

    # Subclasses provide ``sim`` (a property) and ``topology`` (a field or
    # property); the base class deliberately defines neither, so dataclass
    # subclasses can declare them as fields.

    def run(self, until: float) -> None:
        """Advance the simulation to absolute time ``until``."""
        self.sim.run(until=until)

    # -- clients --------------------------------------------------------- #

    def clients(self, count: Optional[int] = None) -> List[KVClient]:
        """``count`` clients speaking the unified :class:`KVClient` protocol.

        ``None`` asks for the backend's natural client population (one per
        client host, typically); larger counts are served by additional
        sessions, spread round-robin over hosts/servers.
        """
        raise NotImplementedError

    def client(self, index: int = 0) -> KVClient:
        """One client (see :meth:`clients`)."""
        return self.clients(index + 1)[index]

    # -- faults ---------------------------------------------------------- #

    _fault_injector: Optional[FaultInjector] = None

    @property
    def fault_injector(self) -> FaultInjector:
        """The deployment's seeded fault injector (created on first use)."""
        if self._fault_injector is None:
            seed = self.spec.seed if self.spec is not None else 0
            self._fault_injector = FaultInjector(self.topology, seed=seed)
        return self._fault_injector

    def fault_schedule(self, poll_interval: float = 1e-3) -> FaultSchedule:
        """A new un-armed :class:`FaultSchedule` over the injector."""
        return FaultSchedule(self.fault_injector, poll_interval=poll_interval)

    def start_fault_reaction(self, options: Dict) -> None:
        """Start whatever control-plane machinery reacts to injected
        faults (a failure detector, a health prober).

        Called by the scenario runner after arming a spec's fault
        schedule; the default is a no-op so backends without reaction
        machinery need nothing.  ``options`` is the spec's backend
        options (e.g. ``detector_config``).
        """

    # -- telemetry ------------------------------------------------------- #

    def attach_telemetry(self, plane) -> None:
        """Wire a :class:`repro.core.trace.TelemetryPlane` into this
        deployment.

        The default instruments the topology (hosts, switches, links),
        which every backend has; backends with richer surfaces (agents,
        switch programs, a controller event log) override and extend.
        """
        plane.attach_topology(self.topology)

    # -- state ----------------------------------------------------------- #

    def initial_values(self) -> Dict[bytes, Optional[bytes]]:
        """Preloaded ``key -> value`` as raw bytes (linearizability initial
        state).  Defaults to ``value_size`` zero bytes per preloaded key."""
        if self.spec is None:
            return {}
        value = bytes(self.spec.value_size)
        return {key.encode("utf-8"): value for key in self.keys}

    def teardown(self) -> None:
        """Stop background machinery (detectors, schedules).

        Deployments are simulated objects, so there is nothing to free;
        teardown exists so scenarios leave no probes or schedules running
        when several deployments share a test process.
        """


class Backend:
    """A registered way of building deployments from specs."""

    #: Registry key; subclasses override.
    name: str = "kv"
    capabilities: Capabilities = Capabilities()

    def check(self, spec: DeploymentSpec) -> None:
        """Raise :class:`ValueError` for spec combinations this backend
        cannot build.  Called before :meth:`build`; the default accepts
        everything the generic :meth:`DeploymentSpec.validate` accepts."""

    def build(self, spec: DeploymentSpec) -> Deployment:
        """Build a deployment; every stochastic choice derives from
        ``spec.seed``."""
        raise NotImplementedError


# --------------------------------------------------------------------- #
# The registry.
# --------------------------------------------------------------------- #

_REGISTRY: Dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Register (or replace) a backend under ``backend.name``."""
    if not backend.name:
        raise ValueError("a backend needs a non-empty name")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a registered backend; raises with the available names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown backend {name!r}; registered: "
                         f"{', '.join(sorted(_REGISTRY)) or '(none)'}") from None


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def build_deployment(spec: DeploymentSpec) -> Deployment:
    """Validate ``spec`` and build it with its backend."""
    spec.validate()
    backend = get_backend(spec.backend)
    backend.check(spec)
    deployment = backend.build(spec)
    deployment.spec = spec
    deployment.backend_name = backend.name
    deployment.capabilities = backend.capabilities
    return deployment
