"""The five registered deployment backends.

Each backend builds the paper's evaluation testbed (Figure 8) for one
system under test and hands back a :class:`~repro.deploy.base.Deployment`
whose clients all speak the unified :class:`repro.core.client.KVClient`
protocol:

* ``netchain``       -- the in-network store: 4-switch ring, DPDK hosts,
  chains in the switch data plane (supports live reconfiguration).
* ``zookeeper``      -- the ZAB ensemble on the first ``replication``
  hosts, clients on the rest (supports watches).
* ``server-chain``   -- chain replication on kernel-TCP servers
  (Van Renesse & Schneider / FAWN-KV style).
* ``primary-backup`` -- the classical primary-backup protocol of
  Figure 1(a).
* ``hybrid``         -- NetChain as an accelerator tier in front of a
  server-based store (Section 6).

The deployment classes double as the (deprecated) dataclasses the
experiment drivers historically received from
:mod:`repro.experiments.setup`; field layout and construction order are
preserved so same-seed runs through either path are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.chain_server import ServerChainCluster
from repro.baselines.primary_backup import PrimaryBackupCluster
from repro.baselines.zk_client import ZooKeeperClient, ZooKeeperKVClient
from repro.baselines.zookeeper import ZooKeeperConfig, ZooKeeperEnsemble, build_zookeeper_ensemble
from repro.core.client import KVClient
from repro.core.cluster import ClusterConfig, NetChainCluster
from repro.core.hybrid import DictBackend, HybridKVClient, HybridPolicy, HybridStore
from repro.core.protocol import MAX_PROTOTYPE_VALUE_BYTES
from repro.deploy.base import Backend, Capabilities, Deployment, register_backend
from repro.deploy.spec import DeploymentSpec
from repro.netsim.faults import FaultInjector
from repro.netsim.host import HostConfig
from repro.netsim.link import LinkConfig
from repro.netsim.topology import Topology, build_testbed
from repro.perfmodel.devices import KERNEL_STACK_DELAY, ZOOKEEPER_COMMIT_DELAY, scaled_testbed

#: Message-processing capacity used for the ZooKeeper servers, calibrated to
#: the measured ensemble throughput (see repro.baselines.zookeeper).
ZOOKEEPER_SERVER_MSGS_PER_SEC = 160e3


def _default_slots(spec: DeploymentSpec) -> int:
    if spec.store_slots is not None:
        return spec.store_slots
    return max(1024, spec.store_size + len(spec.extra_keys) + 1024)


# --------------------------------------------------------------------- #
# NetChain.
# --------------------------------------------------------------------- #

class _NetChainFamilyDeployment(Deployment):
    """Shared surface of deployments carrying a :class:`NetChainCluster`
    (``netchain`` itself and the ``hybrid`` accelerator): the cluster's
    fault injector, its failure detector as the fault-reaction machinery,
    the optional hot-key tier, and its teardown."""

    #: The running :class:`repro.core.hotkeys.HotKeyManager` when the spec
    #: enabled the adaptive hot-key tier (set by the backend's build).
    hotkey_manager = None

    @property
    def sim(self):
        return self.cluster.sim

    @property
    def topology(self):
        return self.cluster.topology

    @property
    def hotkey_tier_active(self) -> bool:
        """Whether the adaptive hot-key tier is running on this deployment."""
        return self.hotkey_manager is not None

    @property
    def fault_injector(self) -> FaultInjector:
        return self.cluster.faults()

    def fault_schedule(self, poll_interval: float = 1e-3):
        return self.cluster.fault_schedule(poll_interval=poll_interval)

    def start_fault_reaction(self, options: Dict) -> None:
        config = options.get("detector_config")
        if isinstance(config, dict):
            # Specs that crossed a process boundary as JSON (matrix cells)
            # carry the detector config as a plain field dict.
            from repro.core.detector import DetectorConfig
            config = DetectorConfig(**config)
        self.cluster.start_failure_detector(config)

    def attach_telemetry(self, plane) -> None:
        """Topology plus the NetChain-specific surfaces: agents (per-query
        spans + latency histograms), switch programs (chain-stage spans,
        op mix) and the controller's structured event log."""
        plane.attach_topology(self.topology)
        plane.attach_netchain(self.cluster)

    def teardown(self) -> None:
        if self.hotkey_manager is not None:
            self.hotkey_manager.stop()
            self.hotkey_manager = None
        if self.cluster.detector is not None:
            self.cluster.detector.stop()


def _scaled_cluster_parts(spec: DeploymentSpec):
    """The shared NetChain-family build scaffolding: the spec-derived
    :class:`ClusterConfig`, an (optional) unlimited-capacity topology,
    and the effective reporting scale."""
    config = ClusterConfig(scale=spec.scale, num_hosts=spec.num_hosts,
                           replication=spec.replication,
                           vnodes_per_switch=spec.vnodes_per_switch,
                           store_slots=_default_slots(spec),
                           retry_timeout=spec.retry_timeout, seed=spec.seed)
    topology = None
    scale = spec.scale
    if spec.unlimited_capacity:
        topology = scaled_testbed(num_hosts=spec.num_hosts, seed=spec.seed,
                                  unlimited_capacity=True)
        scale = 1.0
        config.scale = 1.0
    return config, topology, scale


@dataclass
class NetChainDeployment(_NetChainFamilyDeployment):
    """A NetChain cluster plus the knobs the experiment fixed."""

    cluster: NetChainCluster
    scale: float
    keys: List[str] = field(default_factory=list)

    backend_name = "netchain"

    def clients(self, count: Optional[int] = None) -> List[KVClient]:
        agents = self.cluster.agent_list()
        if count is None:
            return agents
        return [agents[i % len(agents)] for i in range(count)]

    def initial_values(self) -> Dict[bytes, Optional[bytes]]:
        controller = self.cluster.controller
        initial: Dict[bytes, Optional[bytes]] = {}
        for key in self.keys:
            info = controller.chain_for_key(key)
            item = controller.stores[info.switches[-1]].read(key)
            initial[key.encode("utf-8")] = (
                item.value if item is not None and item.valid else None)
        return initial


class NetChainBackend(Backend):
    """Builds :class:`NetChainDeployment` from a spec.

    ``options``: ``controller_config`` (a full
    :class:`repro.core.controller.ControllerConfig`, overriding the
    spec-derived one), ``member_switches``.
    """

    name = "netchain"
    capabilities = Capabilities(supports_reconfig=True, supports_watch=False,
                                supports_cas=True, supports_insert=True,
                                supports_fault_injection=True,
                                scaled_throughput=True,
                                supports_hotkey_tier=True)

    def check(self, spec: DeploymentSpec) -> None:
        members = spec.options.get("member_switches")
        member_count = len(members) if members is not None else 4
        if spec.replication > member_count:
            raise ValueError(
                f"replication {spec.replication} exceeds the {member_count} "
                f"member switches of the testbed")

    def build(self, spec: DeploymentSpec) -> NetChainDeployment:
        config, topology, scale = _scaled_cluster_parts(spec)
        controller_config = spec.options.get("controller_config")
        if isinstance(controller_config, dict):
            # JSON-deserialized specs (matrix cells) carry the controller
            # config as a plain field dict.
            from repro.core.controller import ControllerConfig
            controller_config = ControllerConfig(**controller_config)
        cluster = NetChainCluster(
            config, topology=topology,
            member_switches=spec.options.get("member_switches"),
            controller_config=controller_config)
        keys = cluster.populate(spec.store_size, value_size=spec.value_size,
                                key_prefix=spec.key_prefix)
        if spec.extra_keys:
            cluster.controller.populate(list(spec.extra_keys))
            keys = keys + list(spec.extra_keys)
        if spec.loss_rate:
            cluster.topology.set_loss_rate(spec.loss_rate)
        deployment = NetChainDeployment(cluster=cluster, scale=scale, keys=keys)
        if spec.hotkey_tier:
            deployment.hotkey_manager = cluster.enable_hotkey_tier(
                spec.options.get("hotkey_tier"))
        return deployment


# --------------------------------------------------------------------- #
# ZooKeeper.
# --------------------------------------------------------------------- #

@dataclass
class ZooKeeperDeployment(Deployment):
    """A ZooKeeper ensemble on the testbed plus its client host(s)."""

    topology: Topology
    ensemble: ZooKeeperEnsemble
    client_host_names: List[str]
    scale: float
    paths: List[str] = field(default_factory=list)
    keys: List[str] = field(default_factory=list)
    path_prefix: str = "/kv/"

    backend_name = "zookeeper"

    def __post_init__(self) -> None:
        self._kv_clients: List[ZooKeeperKVClient] = []

    @property
    def sim(self):
        return self.topology.sim

    def new_client(self, index: int = 0) -> ZooKeeperClient:
        """A new client session on one of the client hosts, spread over the
        live servers round-robin."""
        host_name = self.client_host_names[index % len(self.client_host_names)]
        host = self.topology.hosts[host_name]
        live = self.ensemble.live_servers()
        server = live[index % len(live)]
        return ZooKeeperClient(host, self.ensemble, server_id=server.server_id)

    def new_kv_client(self, index: int = 0,
                      prefix: Optional[str] = None) -> ZooKeeperKVClient:
        """A new session adapted to the unified :class:`KVClient` protocol,
        keyed under the same path prefix the deployment preloaded."""
        return ZooKeeperKVClient(self.new_client(index),
                                 prefix=prefix or self.path_prefix)

    def clients(self, count: Optional[int] = None) -> List[KVClient]:
        if count is None:
            count = len(self.client_host_names)
        while len(self._kv_clients) < count:
            self._kv_clients.append(self.new_kv_client(len(self._kv_clients)))
        return list(self._kv_clients[:count])


class ZooKeeperBackendImpl(Backend):
    """Builds :class:`ZooKeeperDeployment` from a spec.

    ``spec.replication`` is the ensemble size; the remaining
    ``num_hosts - replication`` hosts run the client processes.
    ``options``: ``path_prefix``.
    """

    name = "zookeeper"
    capabilities = Capabilities(supports_reconfig=False, supports_watch=True,
                                supports_cas=True, supports_insert=True,
                                supports_fault_injection=True,
                                scaled_throughput=True)

    def check(self, spec: DeploymentSpec) -> None:
        if spec.replication >= spec.num_hosts:
            raise ValueError(
                f"the ensemble needs at least one client host: replication "
                f"{spec.replication} leaves none of the {spec.num_hosts} hosts")

    def build(self, spec: DeploymentSpec) -> ZooKeeperDeployment:
        num_servers = spec.replication
        topology = _server_topology(spec)
        scale = spec.scale
        server_rate = (None if spec.unlimited_capacity
                       else ZOOKEEPER_SERVER_MSGS_PER_SEC / scale)
        if spec.unlimited_capacity:
            scale = 1.0
        config = ZooKeeperConfig(server_msgs_per_sec=server_rate,
                                 log_sync_delay=ZOOKEEPER_COMMIT_DELAY)
        server_hosts = [topology.hosts[f"H{i}"] for i in range(num_servers)]
        ensemble = build_zookeeper_ensemble(server_hosts, config)
        prefix = spec.options.get("path_prefix", "/kv/")
        keys = spec.key_names()
        paths = [f"{prefix}{key}" for key in keys]
        ensemble.preload({path: bytes(spec.value_size) for path in paths})
        client_hosts = [f"H{i}" for i in range(num_servers, len(topology.hosts))]
        return ZooKeeperDeployment(topology=topology, ensemble=ensemble,
                                   client_host_names=client_hosts, scale=scale,
                                   paths=paths, keys=keys, path_prefix=prefix)


# --------------------------------------------------------------------- #
# Server-hosted baselines (chain replication and primary-backup).
# --------------------------------------------------------------------- #

class _ServerBaselineDeployment(Deployment):
    """Shared surface of the server-hosted baselines: kernel-TCP hosts,
    one cached ``kv_client`` per requested client, spread round-robin
    over the client hosts."""

    def __post_init__(self) -> None:
        self._kv_clients: List[KVClient] = []

    @property
    def sim(self):
        return self.topology.sim

    def clients(self, count: Optional[int] = None) -> List[KVClient]:
        if count is None:
            count = len(self.client_host_names)
        while len(self._kv_clients) < count:
            name = self.client_host_names[len(self._kv_clients)
                                          % len(self.client_host_names)]
            self._kv_clients.append(
                self.cluster.kv_client(self.topology.hosts[name]))
        return list(self._kv_clients[:count])


@dataclass
class ServerChainDeployment(_ServerBaselineDeployment):
    """Chain replication on kernel-TCP servers, clients on the rest."""

    topology: Topology
    cluster: ServerChainCluster
    client_host_names: List[str]
    scale: float = 1.0
    keys: List[str] = field(default_factory=list)

    backend_name = "server-chain"


@dataclass
class PrimaryBackupDeployment(_ServerBaselineDeployment):
    """Primary-backup replication on kernel-TCP servers."""

    topology: Topology
    cluster: PrimaryBackupCluster
    client_host_names: List[str]
    scale: float = 1.0
    keys: List[str] = field(default_factory=list)

    backend_name = "primary-backup"


def _server_topology(spec: DeploymentSpec) -> Topology:
    """The shared substrate of the server-hosted baselines: the testbed
    with kernel-TCP hosts (NIC ceilings off -- server CPUs and protocol
    round trips are the bottleneck, not packet IO)."""
    host_config = HostConfig(
        stack_delay=spec.options.get("stack_delay", KERNEL_STACK_DELAY),
        nic_pps=None)
    topology = build_testbed(host_config=host_config, link_config=LinkConfig(),
                             num_hosts=spec.num_hosts, seed=spec.seed)
    from repro.netsim.routing import install_shortest_path_routes
    install_shortest_path_routes(topology)
    if spec.loss_rate:
        topology.set_loss_rate(spec.loss_rate)
    return topology


class _ServerBaselineBackend(Backend):
    """Shared spec checking for the two server-hosted baselines.

    ``spec.replication`` servers occupy the first hosts; the remaining
    hosts run clients.  Throughput is unscaled (``scale`` is ignored
    beyond validation): these baselines exist for latency and
    message-count comparisons.  ``options``: ``stack_delay``.
    """

    capabilities = Capabilities(supports_reconfig=False, supports_watch=False,
                                supports_cas=True, supports_insert=True,
                                supports_fault_injection=True,
                                scaled_throughput=False)

    def check(self, spec: DeploymentSpec) -> None:
        if spec.replication >= spec.num_hosts:
            raise ValueError(
                f"the {self.name} baseline needs at least one client host: "
                f"replication {spec.replication} leaves none of the "
                f"{spec.num_hosts} hosts")


class ServerChainBackend(_ServerBaselineBackend):
    name = "server-chain"

    def build(self, spec: DeploymentSpec) -> ServerChainDeployment:
        topology = _server_topology(spec)
        hosts = [topology.hosts[f"H{i}"] for i in range(spec.num_hosts)]
        cluster = ServerChainCluster(hosts[:spec.replication])
        keys = spec.key_names()
        cluster.preload({key: bytes(spec.value_size) for key in keys})
        client_hosts = [f"H{i}" for i in range(spec.replication, spec.num_hosts)]
        return ServerChainDeployment(topology=topology, cluster=cluster,
                                     client_host_names=client_hosts, keys=keys)


class PrimaryBackupBackend(_ServerBaselineBackend):
    name = "primary-backup"

    def build(self, spec: DeploymentSpec) -> PrimaryBackupDeployment:
        topology = _server_topology(spec)
        hosts = [topology.hosts[f"H{i}"] for i in range(spec.num_hosts)]
        cluster = PrimaryBackupCluster(hosts[:spec.replication])
        keys = spec.key_names()
        cluster.preload({key: bytes(spec.value_size) for key in keys})
        client_hosts = [f"H{i}" for i in range(spec.replication, spec.num_hosts)]
        return PrimaryBackupDeployment(topology=topology, cluster=cluster,
                                       client_host_names=client_hosts, keys=keys)


# --------------------------------------------------------------------- #
# Hybrid (NetChain accelerator in front of a server tier, Section 6).
# --------------------------------------------------------------------- #

@dataclass
class HybridDeployment(_NetChainFamilyDeployment):
    """A NetChain cluster fronting a server-tier store."""

    cluster: NetChainCluster
    store: HybridStore
    scale: float
    keys: List[str] = field(default_factory=list)
    server_delay: float = 80e-6

    backend_name = "hybrid"

    def clients(self, count: Optional[int] = None) -> List[KVClient]:
        agents = self.cluster.agent_list()
        if count is None:
            count = len(agents)
        return [HybridKVClient(self.store, agent=agents[i % len(agents)],
                               server_delay=self.server_delay)
                for i in range(count)]


class HybridBackend(Backend):
    """Builds :class:`HybridDeployment` from a spec.

    The first ``network_fraction`` of the preloaded keys are pinned into
    the network tier (hot data), the rest start on the server tier and
    are promoted by the read-popularity policy.  ``options``:
    ``network_fraction`` (default 0.5), ``promote_after_reads``,
    ``max_network_value_bytes``, ``server_delay``, ``pinned`` (extra
    keys to pin).
    """

    name = "hybrid"
    capabilities = Capabilities(supports_reconfig=False, supports_watch=False,
                                supports_cas=True, supports_insert=True,
                                supports_fault_injection=True,
                                scaled_throughput=True,
                                supports_hotkey_tier=True)

    def check(self, spec: DeploymentSpec) -> None:
        fraction = spec.options.get("network_fraction", 0.5)
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"network_fraction must be in [0, 1], got {fraction}")
        # Replication-vs-members is checked eagerly (and authoritatively)
        # by NetChainCluster itself.

    def build(self, spec: DeploymentSpec) -> HybridDeployment:
        options = spec.options
        config, topology, scale = _scaled_cluster_parts(spec)
        cluster = NetChainCluster(config, topology=topology)
        policy = HybridPolicy(
            max_network_value_bytes=options.get("max_network_value_bytes",
                                                MAX_PROTOTYPE_VALUE_BYTES),
            promote_after_reads=options.get("promote_after_reads", 16))
        store = HybridStore(cluster.agent("H0"), DictBackend(), policy=policy)
        keys = spec.key_names()
        value = bytes(spec.value_size)
        network_keys: List[str] = []
        if policy.fits_in_network(value):
            split = int(round(len(keys) * options.get("network_fraction", 0.5)))
            network_keys = keys[:split]
        for key in network_keys:
            policy.pin(key)
        if network_keys:
            cluster.controller.populate(network_keys, default_value=value)
            store._network_keys.update(k.encode("utf-8") for k in network_keys)
        for key in keys[len(network_keys):]:
            store.backend.write(key, value)
        for key in options.get("pinned", ()):
            policy.pin(key)
        if spec.loss_rate:
            cluster.topology.set_loss_rate(spec.loss_rate)
        deployment = HybridDeployment(cluster=cluster, store=store, scale=scale,
                                      keys=keys,
                                      server_delay=options.get("server_delay",
                                                               80e-6))
        if spec.hotkey_tier:
            # The tier manages the network-resident keys; the server tier's
            # promotion policy already rides the same sketch structure
            # (``store.popularity``).
            deployment.hotkey_manager = cluster.enable_hotkey_tier(
                spec.options.get("hotkey_tier"))
        return deployment


# --------------------------------------------------------------------- #
# Registration.
# --------------------------------------------------------------------- #

register_backend(NetChainBackend())
register_backend(ZooKeeperBackendImpl())
register_backend(ServerChainBackend())
register_backend(PrimaryBackupBackend())
register_backend(HybridBackend())
