"""``python -m repro.deploy`` -- the scenario-matrix CLI.

Thin shim over :func:`repro.deploy.matrix.main`; a separate module so the
package ``__init__`` can re-export the matrix API without tripping
runpy's double-import warning.
"""

from repro.deploy.matrix import main

if __name__ == "__main__":
    raise SystemExit(main())
