"""The parallel scenario-matrix runner.

Every subsystem in this repository is gated on the same sweep: one
workload over the seed x backend x fault-profile grid.  The engine is a
single-threaded discrete-event simulator, so one cell can never go
faster -- but cells are independent *by construction* (everything
stochastic in a cell derives from its spec's seed), which makes the grid
embarrassingly parallel.  This module makes that sweep a first-class,
multi-core object:

* :class:`MatrixSpec` -- the declarative grid: a base
  :class:`~repro.deploy.spec.DeploymentSpec` swept over seeds, backends,
  named fault profiles and named workloads.  :meth:`MatrixSpec.cells`
  enumerates **fully serializable task descriptors**: plain dicts of
  spec/workload/checks fields, no live objects, so any worker process can
  reconstruct and run a cell from its JSON alone.
* :func:`run_cell` -- one cell, JSON in, JSON-safe summary out: replay
  signature (sha256 over the per-operation history), check verdicts,
  throughput, merged latency-recorder state and the worker's peak RSS.
* :func:`run_matrix` -- fans cells across a ``multiprocessing`` pool,
  streams per-cell summaries back as they finish, and merges them into
  one report.  The merge is deterministic (cells sorted by id, latency
  recorders folded with :meth:`~repro.netsim.stats.LatencyRecorder.merge`,
  peak RSS aggregated with ``max`` across workers -- RSS is a per-process
  high-water mark, not an additive quantity), so ``workers=1`` and
  ``workers=N`` produce identical reports modulo the wall-clock fields
  listed in :data:`WALL_CLOCK_FIELDS`.

Usage::

    matrix = default_matrix(seeds=(0, 1, 2))
    report = run_matrix(matrix, workers=4)
    assert not report["totals"]["failed_cells"]

    # CLI (CI runs this with workers from nproc):
    #   python -m repro.deploy.matrix run --workers auto -o report.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import os
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.deploy.base import available_backends
from repro.deploy.scenario import (
    ScenarioChecks,
    ScenarioResult,
    WorkloadSpec,
    run_scenario,
)
from repro.deploy.spec import DeploymentSpec, json_safe
from repro.netsim.stats import LatencyRecorder

#: Report fields that legitimately differ between runs (wall clock,
#: worker count, per-process memory).  ``canonical_report`` strips them;
#: everything else must be byte-identical for the same :class:`MatrixSpec`
#: regardless of worker count.
WALL_CLOCK_FIELDS = {
    "wall_clock_s": "seconds of real time",
    "cell_wall_clock_s": "summed per-cell real time",
    "cells_per_sec": "cells / wall_clock_s",
    "speedup": "serial cell time / wall clock",
    "workers": "pool size",
    "peak_rss_bytes": "per-process high-water mark",
}

MATRIX_SCHEMA = "netchain-matrix-report/v1"


@dataclass
class MatrixSpec:
    """A declarative seed x backend x fault-profile x workload grid.

    Attributes:
        base: the spec every cell starts from; each cell replaces
            ``backend``, ``seed``, ``faults`` and merges profile options.
        seeds: the seed axis.
        backends: the backend axis (registered backend names).
        workloads: named :class:`WorkloadSpec` variants (the workload
            axis).
        fault_profiles: named fault profiles.  Each value is a dict with
            optional keys ``faults`` (a list of ``(at, action, *args)``
            events for ``spec.faults``) and ``options`` (spec options to
            merge in, e.g. a ``detector_config`` field dict).  Profiles
            with no events (``{}``) run on every backend; profiles with
            events run only on ``fault_backends``.
        fault_backends: backends that take the non-empty fault profiles
            and the chain-invariant / lost-key checks (the NetChain
            family -- other backends have no chain controller to sample).
        checks: checks applied to every cell.  ``chain_invariants`` /
            ``no_lost_keys`` are switched off automatically for backends
            outside ``fault_backends``.
    """

    base: DeploymentSpec = field(default_factory=lambda: DeploymentSpec(
        store_size=24, value_size=32))
    seeds: List[int] = field(default_factory=lambda: [0])
    backends: List[str] = field(default_factory=lambda: ["netchain"])
    workloads: Dict[str, WorkloadSpec] = field(
        default_factory=lambda: {"mixed": WorkloadSpec()})
    fault_profiles: Dict[str, Dict[str, Any]] = field(
        default_factory=lambda: {"none": {}})
    fault_backends: List[str] = field(default_factory=lambda: ["netchain"])
    checks: ScenarioChecks = field(default_factory=ScenarioChecks)

    def validate(self) -> "MatrixSpec":
        """Eager validation: every axis value and every derived cell spec."""
        if not self.seeds:
            raise ValueError("MatrixSpec.seeds must not be empty")
        if not self.backends:
            raise ValueError("MatrixSpec.backends must not be empty")
        if not self.workloads:
            raise ValueError("MatrixSpec.workloads must not be empty")
        if not self.fault_profiles:
            raise ValueError("MatrixSpec.fault_profiles must not be empty")
        registered = set(available_backends())
        for name in list(self.backends) + list(self.fault_backends):
            if name not in registered:
                raise ValueError(
                    f"MatrixSpec.backends: {name!r} is not a registered "
                    f"backend (have: {', '.join(sorted(registered))})")
        for name, profile in self.fault_profiles.items():
            if not isinstance(profile, dict):
                raise ValueError(
                    f"MatrixSpec.fault_profiles[{name!r}] must be a dict "
                    f"with optional 'faults'/'options' keys, got "
                    f"{type(profile).__name__}")
            unknown = sorted(set(profile) - {"faults", "options"})
            if unknown:
                raise ValueError(
                    f"MatrixSpec.fault_profiles[{name!r}] has unknown "
                    f"key(s): {', '.join(unknown)}")
        self.cells()  # builds + validates every cell spec eagerly
        return self

    # ------------------------------------------------------------------ #
    # Cell enumeration.
    # ------------------------------------------------------------------ #

    def cells(self) -> List[Dict[str, Any]]:
        """Serializable task descriptors, one per grid cell.

        Deterministic enumeration order (backend, then profile, then
        workload, then seed); every descriptor is JSON-safe -- workers
        reconstruct the spec/workload/checks triple from it alone.
        """
        descriptors: List[Dict[str, Any]] = []
        base_checks = self.checks.to_dict()
        for backend in self.backends:
            cell_checks = dict(base_checks)
            if backend not in self.fault_backends:
                # No chain controller to sample outside the NetChain
                # family; the remaining checks still apply.
                cell_checks["chain_invariants"] = False
                cell_checks["no_lost_keys"] = False
            for profile_name, profile in self.fault_profiles.items():
                faults = profile.get("faults") or []
                if faults and backend not in self.fault_backends:
                    continue
                options = dict(self.base.options)
                options.update(profile.get("options") or {})
                for workload_name, workload in self.workloads.items():
                    for seed in self.seeds:
                        spec = replace(self.base, backend=backend, seed=seed,
                                       faults=[tuple(e) for e in faults],
                                       options=options)
                        descriptors.append({
                            "cell_id": f"{backend}/{profile_name}/"
                                       f"{workload_name}/s{seed}",
                            "backend": backend,
                            "seed": seed,
                            "fault_profile": profile_name,
                            "workload": workload_name,
                            "spec": spec.to_dict(),
                            "workload_spec": workload.to_dict(),
                            "checks": cell_checks,
                        })
        return descriptors

    # ------------------------------------------------------------------ #
    # Serialization.
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict; :meth:`from_dict` round-trips it."""
        return {
            "base": self.base.to_dict(),
            "seeds": list(self.seeds),
            "backends": list(self.backends),
            "workloads": {name: w.to_dict()
                          for name, w in self.workloads.items()},
            "fault_profiles": json_safe(self.fault_profiles,
                                        "MatrixSpec.fault_profiles"),
            "fault_backends": list(self.fault_backends),
            "checks": self.checks.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MatrixSpec":
        """Rebuild a validated matrix; unknown keys raise
        :class:`ValueError` naming them."""
        if not isinstance(data, dict):
            raise ValueError(f"MatrixSpec.from_dict needs a dict, "
                             f"got {type(data).__name__}")
        known = {"base", "seeds", "backends", "workloads", "fault_profiles",
                 "fault_backends", "checks"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown MatrixSpec field(s): "
                             f"{', '.join(unknown)} "
                             f"(known: {', '.join(sorted(known))})")
        kwargs: Dict[str, Any] = {}
        if "base" in data:
            kwargs["base"] = DeploymentSpec.from_dict(data["base"])
        if "workloads" in data:
            kwargs["workloads"] = {
                name: WorkloadSpec.from_dict(w)
                for name, w in data["workloads"].items()}
        if "checks" in data:
            kwargs["checks"] = ScenarioChecks.from_dict(data["checks"])
        for name in ("seeds", "backends", "fault_profiles", "fault_backends"):
            if name in data:
                kwargs[name] = data[name]
        return cls(**kwargs).validate()


def default_matrix(seeds: Sequence[int] = (0, 1, 2),
                   backends: Optional[Sequence[str]] = None,
                   duration: float = 0.6,
                   store_size: int = 24,
                   history_mode: str = "memory") -> MatrixSpec:
    """The CI grid: every backend x ``seeds`` on a mixed workload, plus
    three fault profiles (middle-switch failure, head failure,
    fail-then-recover) on the NetChain backend.

    With the default three seeds and five backends this is a 24-cell
    grid: ``5 backends x 3 seeds`` fault-free plus ``3 profiles x 3
    seeds`` on ``netchain``.
    """
    detector = {"probe_interval": 50e-3, "suspicion_threshold": 2}
    return MatrixSpec(
        base=DeploymentSpec(store_size=store_size, value_size=32,
                            vnodes_per_switch=2, retry_timeout=200e-6),
        seeds=list(seeds),
        backends=list(backends) if backends is not None
        else list(available_backends()),
        workloads={"mixed": WorkloadSpec(num_clients=2, concurrency=2,
                                         write_ratio=0.4, think_time=1e-3,
                                         duration=duration, drain=0.3)},
        fault_profiles={
            "none": {},
            "fail-s1": {
                "faults": [(0.3, "fail_switch", "S1")],
                "options": {"detector_config": detector},
            },
            "fail-s0": {
                "faults": [(0.35, "fail_switch", "S0")],
                "options": {"detector_config": detector},
            },
            "flap-s1": {
                "faults": [(0.25, "fail_switch", "S1"),
                           (0.45, "recover_switch", "S1")],
                "options": {"detector_config": detector},
            },
        },
        checks=ScenarioChecks(history_mode=history_mode,
                              chain_invariants=True, no_lost_keys=True),
    )


# --------------------------------------------------------------------- #
# Per-cell execution (this is what worker processes run).
# --------------------------------------------------------------------- #

def run_cell(cell: Union[str, bytes, Dict[str, Any]]) -> Dict[str, Any]:
    """Run one cell descriptor and summarize it as a JSON-safe dict.

    Accepts the descriptor as a dict or as its JSON encoding -- the
    executor always hands workers the JSON string, so the "constructible
    from JSON alone" property is exercised on every run, serial included.
    """
    if isinstance(cell, (str, bytes)):
        cell = json.loads(cell)
    spec = DeploymentSpec.from_dict(cell["spec"])
    workload = WorkloadSpec.from_dict(cell["workload_spec"])
    checks = ScenarioChecks.from_dict(cell["checks"])
    started = time.perf_counter()  # detlint: disable=DET001 -- harness wall-clock is the measurement, not sim state
    result = run_scenario(spec, workload, checks)
    wall = time.perf_counter() - started  # detlint: disable=DET001 -- harness wall-clock is the measurement, not sim state
    return summarize_cell(cell, result, wall)


def summarize_cell(cell: Dict[str, Any], result: ScenarioResult,
                   wall_clock_s: float) -> Dict[str, Any]:
    """The per-cell summary shipped back from a worker.

    Everything here is JSON-safe and -- except ``wall_clock_s`` and
    ``peak_rss_bytes`` -- a pure function of the cell descriptor, so the
    summary is identical no matter which process ran the cell.
    """
    lin = result.linearizability
    return {
        "cell_id": cell["cell_id"],
        "backend": result.backend,
        "seed": cell["seed"],
        "fault_profile": cell.get("fault_profile", "none"),
        "workload": cell.get("workload", "default"),
        "ok": result.ok(),
        "failures": list(result.failures),
        "completed_ops": result.completed_ops,
        "failed_ops": result.failed_ops,
        "read_ops": result.read_ops,
        "write_ops": result.write_ops,
        "qps": result.qps,
        "success_qps": result.success_qps,
        "scaled_qps": result.scaled_qps,
        "mean_read_latency": result.mean_read_latency,
        "mean_write_latency": result.mean_write_latency,
        "read_latency_p99": result.read_latency_p99,
        "signature_sha256": signature_digest(result),
        "fault_signature": [list(sig) for sig in result.trace_signature()],
        "invariant_violations": list(result.invariant_violations),
        "lost_keys": list(result.lost_keys),
        "linearizable": bool(lin.ok) if lin is not None else None,
        "verdict_cache_hits": result.verdict_cache_hits,
        "read_latency": result.read_latency.state_dict()
        if result.read_latency is not None else None,
        "write_latency": result.write_latency.state_dict()
        if result.write_latency is not None else None,
        "peak_rss_bytes": result.peak_rss_bytes,
        "wall_clock_s": wall_clock_s,
    }


def signature_digest(result: ScenarioResult) -> str:
    """sha256 over the per-operation replay signature.

    The signature tuples carry every float timestamp verbatim through
    ``repr``, so two cells hash identically exactly when their operation
    histories are byte-identical.
    """
    payload = repr(result.signature()).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


# --------------------------------------------------------------------- #
# The executor.
# --------------------------------------------------------------------- #

def run_matrix(matrix: MatrixSpec,
               workers: int = 1,
               on_result: Optional[Callable[[Dict[str, Any], int, int],
                                            None]] = None) -> Dict[str, Any]:
    """Run every cell of ``matrix`` and merge the summaries into one report.

    Args:
        matrix: the grid (validated eagerly).
        workers: worker processes.  ``1`` runs in-process but still
            round-trips every cell through JSON, so the two modes execute
            identical descriptors; ``>1`` fans cells over a
            ``multiprocessing`` pool and streams summaries back in
            completion order.
        on_result: optional progress callback ``(summary, done, total)``,
            invoked as each cell finishes (completion order, which under
            a pool is nondeterministic -- the merged report is not).

    Returns the merged ``netchain-matrix-report/v1`` dict; identical for
    any ``workers`` value modulo :data:`WALL_CLOCK_FIELDS`.
    """
    matrix.validate()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    cells = matrix.cells()
    payloads = [json.dumps(cell, sort_keys=True) for cell in cells]
    started = time.perf_counter()  # detlint: disable=DET001 -- harness wall-clock is the measurement, not sim state
    summaries: List[Dict[str, Any]] = []
    if workers == 1 or len(payloads) == 1:
        for payload in payloads:
            summary = run_cell(payload)
            summaries.append(summary)
            if on_result is not None:
                on_result(summary, len(summaries), len(payloads))
    else:
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        with context.Pool(processes=min(workers, len(payloads))) as pool:
            for summary in pool.imap_unordered(run_cell, payloads):
                summaries.append(summary)
                if on_result is not None:
                    on_result(summary, len(summaries), len(payloads))
    wall = time.perf_counter() - started  # detlint: disable=DET001 -- harness wall-clock is the measurement, not sim state
    return merge_summaries(summaries, matrix=matrix, workers=workers,
                           wall_clock_s=wall)


def merge_summaries(summaries: Sequence[Dict[str, Any]],
                    matrix: Optional[MatrixSpec] = None,
                    workers: int = 1,
                    wall_clock_s: float = 0.0) -> Dict[str, Any]:
    """Deterministically merge per-cell summaries into one report.

    Cells are sorted by id (completion order under a pool is arbitrary),
    latency recorders are folded with
    :meth:`~repro.netsim.stats.LatencyRecorder.merge` from their shipped
    state, and ``peak_rss_bytes`` is aggregated with ``max`` across
    workers: each value is a per-process high-water mark, so summing
    them would fabricate memory nobody allocated.
    """
    cells = sorted(summaries, key=lambda c: c["cell_id"])
    read = LatencyRecorder()
    write = LatencyRecorder()
    for summary in cells:
        if summary.get("read_latency") is not None:
            read.merge(LatencyRecorder.from_state(summary["read_latency"]))
        if summary.get("write_latency") is not None:
            write.merge(LatencyRecorder.from_state(summary["write_latency"]))
    lines = [f"{c['cell_id']} {c['signature_sha256']}" for c in cells]
    digest = hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()
    cell_wall = sum(c["wall_clock_s"] for c in cells)
    totals = {
        "cells": len(cells),
        "ok_cells": sum(1 for c in cells if c["ok"]),
        "failed_cells": [c["cell_id"] for c in cells if not c["ok"]],
        "completed_ops": sum(c["completed_ops"] for c in cells),
        "failed_ops": sum(c["failed_ops"] for c in cells),
        "read_ops": sum(c["read_ops"] for c in cells),
        "write_ops": sum(c["write_ops"] for c in cells),
        "mean_read_latency": read.mean(),
        "read_latency_p99": read.percentile(99.0),
        "mean_write_latency": write.mean(),
        "peak_rss_bytes": max((c["peak_rss_bytes"] for c in cells),
                              default=0),
        "wall_clock_s": wall_clock_s,
        "cell_wall_clock_s": cell_wall,
        "cells_per_sec": len(cells) / wall_clock_s if wall_clock_s else 0.0,
        "speedup": cell_wall / wall_clock_s if wall_clock_s else 0.0,
    }
    report = {
        "schema": MATRIX_SCHEMA,
        "workers": workers,
        "signature_sha256": digest,
        "totals": totals,
        "cells": cells,
    }
    if matrix is not None:
        report["matrix"] = matrix.to_dict()
    return report


def canonical_report(report: Dict[str, Any]) -> Dict[str, Any]:
    """The report minus :data:`WALL_CLOCK_FIELDS` (recursively).

    Two runs of the same :class:`MatrixSpec` must produce equal canonical
    reports whatever their worker counts -- this is the serial == parallel
    determinism contract and what the tests compare.
    """
    def strip(value: Any) -> Any:
        if isinstance(value, dict):
            return {key: strip(item) for key, item in value.items()
                    if key not in WALL_CLOCK_FIELDS}
        if isinstance(value, list):
            return [strip(item) for item in value]
        return value

    return strip(report)


def summarize_report(report: Dict[str, Any]) -> str:
    """A GitHub-flavoured markdown summary of a merged matrix report."""
    totals = report["totals"]
    lines = [
        "## Scenario matrix",
        "",
        f"- **cells**: {totals['cells']} "
        f"({totals['ok_cells']} ok, {len(totals['failed_cells'])} failed)",
        f"- **workers**: {report['workers']}",
        f"- **wall clock**: {totals['wall_clock_s']:.1f}s "
        f"(sum of cells: {totals['cell_wall_clock_s']:.1f}s, "
        f"speedup {totals['speedup']:.2f}x)",
        f"- **operations**: {totals['completed_ops']:,} completed, "
        f"{totals['failed_ops']:,} failed",
        f"- **read latency**: mean {totals['mean_read_latency'] * 1e6:.1f}us, "
        f"p99 {totals['read_latency_p99'] * 1e6:.1f}us",
        f"- **grid signature**: `{report['signature_sha256'][:16]}`",
        "",
        "| cell | ok | ops | p99 read (us) | wall (s) |",
        "|---|---|---:|---:|---:|",
    ]
    for cell in report["cells"]:
        ok = "yes" if cell["ok"] else "**FAILED**"
        lines.append(
            f"| `{cell['cell_id']}` | {ok} | {cell['completed_ops']:,} "
            f"| {cell['read_latency_p99'] * 1e6:.1f} "
            f"| {cell['wall_clock_s']:.2f} |")
    failed = [c for c in report["cells"] if not c["ok"]]
    if failed:
        lines.append("")
        lines.append("### Failures")
        for cell in failed:
            for failure in cell["failures"]:
                lines.append(f"- `{cell['cell_id']}`: {failure}")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# CLI.
# --------------------------------------------------------------------- #

def _parse_workers(value: str) -> int:
    if value == "auto":
        return max(1, os.cpu_count() or 1)
    return int(value)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.deploy.matrix",
        description="Run the seed x backend x fault-profile scenario "
                    "matrix across a worker pool.")
    sub = parser.add_subparsers(dest="command", required=True)
    run_parser = sub.add_parser("run", help="run a matrix and merge the report")
    run_parser.add_argument("--workers", type=_parse_workers, default=1,
                            help="worker processes, or 'auto' for one per CPU")
    run_parser.add_argument("--seeds", default="0,1,2",
                            help="comma-separated seed axis")
    run_parser.add_argument("--backends", default="all",
                            help="comma-separated backend axis, or 'all'")
    run_parser.add_argument("--duration", type=float, default=0.6,
                            help="measured seconds of simulated load per cell")
    run_parser.add_argument("--store-size", type=int, default=24,
                            help="preloaded keys per cell")
    run_parser.add_argument("--spec", default=None,
                            help="JSON file holding a MatrixSpec dict "
                                 "(overrides the axis flags)")
    run_parser.add_argument("-o", "--out", default=None,
                            help="write the merged report JSON here")
    run_parser.add_argument("--summary", action="store_true",
                            help="print a markdown summary to stdout")
    run_parser.add_argument("--compare-serial", action="store_true",
                            help="rerun with workers=1 and assert the "
                                 "canonical reports are identical")
    args = parser.parse_args(argv)

    if args.spec is not None:
        with open(args.spec, "r", encoding="utf-8") as handle:
            matrix = MatrixSpec.from_dict(json.load(handle))
    else:
        backends = None if args.backends == "all" \
            else [name.strip() for name in args.backends.split(",")]
        seeds = [int(seed) for seed in args.seeds.split(",")]
        matrix = default_matrix(seeds=seeds, backends=backends,
                                duration=args.duration,
                                store_size=args.store_size)

    def progress(summary: Dict[str, Any], done: int, total: int) -> None:
        status = "ok" if summary["ok"] else "FAILED"
        print(f"[{done}/{total}] {summary['cell_id']}: {status} "
              f"({summary['completed_ops']} ops, "
              f"{summary['wall_clock_s']:.2f}s)", file=sys.stderr)

    report = run_matrix(matrix, workers=args.workers, on_result=progress)

    if args.compare_serial:
        print("rerunning serially for the determinism check...",
              file=sys.stderr)
        serial = run_matrix(matrix, workers=1, on_result=progress)
        if canonical_report(serial) != canonical_report(report):
            print("FAIL: serial and parallel reports differ beyond "
                  "wall-clock fields", file=sys.stderr)
            return 1
        parallel_wall = report["totals"]["wall_clock_s"]
        serial_wall = serial["totals"]["wall_clock_s"]
        print(f"serial == parallel (canonical); speedup "
              f"{serial_wall / parallel_wall:.2f}x at "
              f"{report['workers']} workers", file=sys.stderr)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.summary:
        print(summarize_report(report))
    return 0 if not report["totals"]["failed_cells"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
