"""Declarative deployments and scenarios over one pluggable backend registry.

The paper's evaluation sweeps one workload over NetChain, ZooKeeper and
server-based chain variants.  This package makes that matrix a first-class
object:

* :class:`DeploymentSpec` -- a declarative description of a deployment
  (topology scale, membership, preloaded store, fault schedule, seed).
* :class:`Backend` / :func:`register_backend` -- the pluggable registry;
  ``netchain``, ``zookeeper``, ``server-chain``, ``primary-backup`` and
  ``hybrid`` are registered on import.
* :func:`build_deployment` -- spec in, :class:`Deployment` out: a
  simulator, unified-protocol clients, a fault injector, capability
  flags and a teardown.
* :func:`run_scenario` -- compose any backend with any workload,
  declarative fault schedule and history/linearizability checks.
* :class:`MatrixSpec` / :func:`run_matrix` -- the whole seed x backend x
  fault-profile grid as serializable task descriptors, fanned across a
  ``multiprocessing`` pool and merged into one deterministic report.

Every future workload/backend combination is a config change, not a new
builder.
"""

from repro.deploy.backends import (
    HybridDeployment,
    NetChainDeployment,
    PrimaryBackupDeployment,
    ServerChainDeployment,
    ZooKeeperDeployment,
)
from repro.deploy.base import (
    Backend,
    Capabilities,
    Deployment,
    available_backends,
    build_deployment,
    get_backend,
    register_backend,
)
from repro.deploy.matrix import (
    MatrixSpec,
    canonical_report,
    default_matrix,
    merge_summaries,
    run_cell,
    run_matrix,
)
from repro.deploy.scenario import ScenarioChecks, ScenarioResult, WorkloadSpec, run_scenario
from repro.deploy.spec import DeploymentSpec

__all__ = [
    "DeploymentSpec",
    "Backend",
    "Capabilities",
    "Deployment",
    "available_backends",
    "build_deployment",
    "get_backend",
    "register_backend",
    "NetChainDeployment",
    "ZooKeeperDeployment",
    "ServerChainDeployment",
    "PrimaryBackupDeployment",
    "HybridDeployment",
    "ScenarioChecks",
    "ScenarioResult",
    "WorkloadSpec",
    "run_scenario",
    "MatrixSpec",
    "canonical_report",
    "default_matrix",
    "merge_summaries",
    "run_cell",
    "run_matrix",
]
