#!/usr/bin/env python3
"""Distributed locking and 2PL transactions on NetChain vs ZooKeeper.

This is the paper's motivating application (Sections 1 and 8.5): fast
distributed transactions need a fast lock service.  The example runs the
same two-phase-locking workload -- ten locks per transaction, one drawn from
a small set of hot items -- against

* NetChain locks (a compare-and-swap on a switch-resident key), and
* ZooKeeper-style locks (ephemeral znodes through a ZAB ensemble),

and prints the transaction throughput of each, together with the abort rate
as contention increases.

Run:  python examples/distributed_locking.py
"""

from __future__ import annotations

from repro.experiments import netchain_transactions, zookeeper_transactions


def main() -> None:
    print("== 2PL transactions over a lock service (Section 8.5) ==")
    print(f"{'contention':>11} {'clients':>8} | {'NetChain txn/s':>15} {'abort rate':>11} "
          f"| {'ZooKeeper txn/s':>16} {'abort rate':>11}")
    for contention_index in (0.01, 0.1, 1.0):
        netchain = netchain_transactions(contention_index=contention_index,
                                         num_clients=20, cold_items=200,
                                         duration=0.01, warmup=0.002)
        zookeeper = zookeeper_transactions(contention_index=contention_index,
                                           num_clients=5, cold_items=200,
                                           duration=1.0, warmup=0.2)
        print(f"{contention_index:>11} {netchain.num_clients:>8} | "
              f"{netchain.txns_per_sec:>15.0f} {netchain.abort_rate():>11.3f} | "
              f"{zookeeper.txns_per_sec:>16.1f} {zookeeper.abort_rate():>11.3f}")
    print()
    print("NetChain sustains orders of magnitude more transactions per client because")
    print("each lock operation costs ~10 us (half an RTT) instead of a multi-millisecond")
    print("quorum write; at contention index 1.0 every client fights for one hot lock and")
    print("both systems lose throughput to aborts, as in Figure 11.")


if __name__ == "__main__":
    main()
