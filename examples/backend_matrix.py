#!/usr/bin/env python3
"""One seeded scenario, every registered backend.

The paper's evaluation is a matrix: one workload swept over NetChain,
ZooKeeper and server-based chain variants.  With the declarative
deployment API (:mod:`repro.deploy`) that matrix is a loop: a single
:class:`DeploymentSpec` plus :func:`run_scenario` drives the *same*
seeded mixed read/write workload -- the same keys, the same operation
stream, the same linearizability checks -- against all five registered
backends, varying nothing but the spec's ``backend`` field.

Run:  PYTHONPATH=src python examples/backend_matrix.py
"""

from __future__ import annotations

from repro.deploy import DeploymentSpec, WorkloadSpec, available_backends, get_backend, run_scenario


def main() -> None:
    spec = DeploymentSpec(store_size=24, value_size=32, seed=11)
    workload = WorkloadSpec(num_clients=2, concurrency=2, write_ratio=0.5,
                            duration=0.3)

    print("== One seeded scenario on every registered backend ==")
    print(f"{'backend':<15} {'ok':<5} {'ops':>7} {'qps(sim)':>10} "
          f"{'read us':>9} {'write us':>9}  capabilities")
    for name in available_backends():
        caps = get_backend(name).capabilities
        result = run_scenario(spec.with_backend(name), workload)
        flags = ",".join(flag.replace("supports_", "")
                         for flag, on in caps.as_dict().items()
                         if on and flag.startswith("supports_"))
        print(f"{name:<15} {str(result.ok()):<5} {result.completed_ops:>7} "
              f"{result.success_qps:>10.0f} "
              f"{result.mean_read_latency * 1e6:>9.1f} "
              f"{result.mean_write_latency * 1e6:>9.1f}  {flags}")
        for failure in result.failures:
            print(f"   FAILED CHECK: {failure}")

    print()
    print("Every run used the identical workload stream (same seed) and passed")
    print("the same per-key linearizability check; only the spec's `backend`")
    print("field changed.  Latencies differ by orders of magnitude -- that gap")
    print("is the paper's argument for moving coordination into the network.")


if __name__ == "__main__":
    main()
