#!/usr/bin/env python3
"""Scale-free scale-out: live elastic growth and fabric-level throughput.

Two parts:

1. **Live scale-out.**  Starts a 4-switch NetChain cluster serving a
   closed-loop read/write workload, then grows it to 8 switches *while the
   traffic flows*: the reconfiguration planner diffs the consistent-hash
   ring against the target membership and the migration coordinator moves
   one virtual group at a time (pre-sync, a millisecond-scale per-group
   write freeze, an atomic chain-table/epoch commit, then garbage
   collection).  The demo prints the plan, the per-group freeze windows,
   the number of keys moved, and throughput before/during/after.

2. **Fabric throughput (Figure 9(f)).**  Uses the spine-leaf scalability
   model to show read and write throughput growing linearly from 6 to 96
   switches, into the billions of queries per second.

Run:  PYTHONPATH=src python examples/scale_out.py
"""

from __future__ import annotations

from repro.experiments import scalability_experiment
from repro.experiments.elasticity import elasticity_experiment


def live_scale_out_demo() -> None:
    print("== Live scale-out: 4 -> 8 switches under load ==")
    timeline = elasticity_experiment(joins=["S4", "S5", "S6", "S7"],
                                     store_size=200, write_ratio=0.5,
                                     migrate_at=1.0, run_after=1.0)
    report = timeline.report
    assert report is not None and report.done
    print(f"migration window: {timeline.migration_started:.3f}s -> "
          f"{timeline.migration_finished:.3f}s "
          f"({report.duration() * 1e3:.0f}ms of simulated time)")
    print(f"groups migrated:  {timeline.groups_migrated} "
          f"({len(report.skipped_steps())} skipped)")
    print(f"keys moved:       {timeline.keys_moved} "
          f"({timeline.items_copied} item copies)")
    print(f"write freezes:    total {timeline.total_freeze_time * 1e3:.2f}ms, "
          f"max per group {timeline.max_freeze_window * 1e3:.2f}ms")
    print("per-group freeze windows (committed groups):")
    for step in report.committed_steps():
        print(f"  vgroup {step.vgroup:>3} [{step.kind:<12}] "
              f"chain -> {'-'.join(step.target_chain)}  "
              f"freeze {step.freeze_window * 1e3:5.2f}ms  "
              f"{step.keys_moved} keys in")
    print(f"throughput (scaled): before {timeline.scaled(timeline.before_qps):,.0f} "
          f"qps, during {timeline.scaled(timeline.during_qps):,.0f} qps, "
          f"after {timeline.scaled(timeline.after_qps):,.0f} qps")
    print(f"dip during migration: {timeline.during_drop_fraction():.1%} "
          f"(only one group's writes are ever frozen at a time)")


def scalability_demo() -> None:
    print("\n== Spine-leaf scalability (Figure 9(f)) ==")
    print(f"{'switches':>9} {'read BQPS':>10} {'write BQPS':>11} "
          f"{'passes/read':>12} {'passes/write':>13}")
    for point in scalability_experiment(samples=1500):
        print(f"{point.num_switches:>9} {point.read_bqps:>10.1f} {point.write_bqps:>11.1f} "
              f"{point.avg_read_passes:>12.2f} {point.avg_write_passes:>13.2f}")
    print("\nThroughput grows linearly with the number of switches because the average")
    print("number of switch traversals per query is independent of the fabric size;")
    print("writes sit below reads because they visit all f+1 chain switches.")
    print("Part 1 showed the same property dynamically: growing the membership is")
    print("an online operation whose only client-visible cost is a millisecond-scale")
    print("per-group write freeze.")


def main() -> None:
    live_scale_out_demo()
    scalability_demo()


if __name__ == "__main__":
    main()
