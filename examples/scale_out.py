#!/usr/bin/env python3
"""Scale-free scale-out: partitioning and fabric-level throughput.

Two parts:

1. **Partitioning.**  Builds a consistent-hash ring over a larger set of
   NetChain switches and shows how keys map to chains of f+1 distinct
   switches, how evenly virtual nodes spread the load, and what fraction of
   chains one switch participates in (which is what failover has to fix).

2. **Fabric throughput (Figure 9(f)).**  Uses the spine-leaf scalability
   model to show read and write throughput growing linearly from 6 to 96
   switches, into the billions of queries per second.

Run:  python examples/scale_out.py
"""

from __future__ import annotations

from collections import Counter

from repro.core.ring import ConsistentHashRing
from repro.experiments import scalability_experiment


def partitioning_demo() -> None:
    switches = [f"sw{i}" for i in range(8)]
    ring = ConsistentHashRing(switches, vnodes_per_switch=100, replication=3)
    print("== Consistent hashing over 8 switches (100 virtual nodes each) ==")
    keys = [f"lock:{i}" for i in range(20000)]
    head_load = Counter(ring.chain_for_key(key)[0] for key in keys)
    print("keys whose chain HEAD lands on each switch (20000 keys):")
    for switch in switches:
        count = head_load[switch]
        print(f"  {switch}: {count:5d}  {'#' * (count // 100)}")
    sample = "lock:42"
    print(f"example chain for {sample!r}: {ring.chain_for_key(sample)}")
    affected = len(ring.vgroups_involving("sw3"))
    print(f"virtual groups that include sw3 (chains to repair if it fails): "
          f"{affected} of {len(ring.vnodes)}")


def scalability_demo() -> None:
    print("\n== Spine-leaf scalability (Figure 9(f)) ==")
    print(f"{'switches':>9} {'read BQPS':>10} {'write BQPS':>11} "
          f"{'passes/read':>12} {'passes/write':>13}")
    for point in scalability_experiment(samples=1500):
        print(f"{point.num_switches:>9} {point.read_bqps:>10.1f} {point.write_bqps:>11.1f} "
              f"{point.avg_read_passes:>12.2f} {point.avg_write_passes:>13.2f}")
    print("\nThroughput grows linearly with the number of switches because the average")
    print("number of switch traversals per query is independent of the fabric size;")
    print("writes sit below reads because they visit all f+1 chain switches.")


def main() -> None:
    partitioning_demo()
    scalability_demo()


if __name__ == "__main__":
    main()
