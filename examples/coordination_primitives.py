#!/usr/bin/env python3
"""Coordination-service recipes on the unified key-value client protocol.

Coordination services are used for configuration management, group
membership, distributed locking and barriers (Section 1).  This example
exercises each recipe from :mod:`repro.core.coordination` on a simulated
NetChain deployment -- and, because the recipes are written against the
backend-agnostic :class:`repro.core.client.KVClient` protocol, the same
code then runs the lock recipe against a ZooKeeper ensemble for an
apples-to-apples latency comparison.

Run:  python examples/coordination_primitives.py
"""

from __future__ import annotations

from repro.core.coordination import Barrier, ConfigurationStore, DistributedLock, GroupMembership
from repro.deploy import DeploymentSpec, build_deployment


def main() -> None:
    deployment = build_deployment(DeploymentSpec(
        backend="netchain", store_slots=2048, vnodes_per_switch=8))
    cluster = deployment.cluster
    controller = cluster.controller
    # Pre-create the keys the recipes use (inserts are control-plane ops).
    controller.populate(["cfg:replicas", "cfg:leader", "lock:shard-7",
                         "barrier:epoch-3", "group:frontends"])

    print("== Configuration management ==")
    config_h0 = ConfigurationStore(cluster.agent("H0"))
    config_h1 = ConfigurationStore(cluster.agent("H1"))
    config_h0.set("replicas", b"3")
    config_h0.set("leader", b"H0")
    print(f"H1 reads replicas={config_h1.get('replicas')!r} leader={config_h1.get('leader')!r}")
    swapped = config_h1.compare_and_set("leader", b"H0", b"H1")
    stale = config_h0.compare_and_set("leader", b"H0", b"H2")
    print(f"H1 takes leadership atomically: {swapped}; H0's stale CAS fails: {not stale}")

    print("\n== Distributed locking ==")
    lock_a = DistributedLock(cluster.agent("H0"), "lock:shard-7", owner="worker-A")
    lock_b = DistributedLock(cluster.agent("H1"), "lock:shard-7", owner="worker-B")
    print(f"worker-A acquires: {lock_a.try_acquire()}")
    print(f"worker-B acquires while held: {lock_b.try_acquire()}")
    print(f"worker-B steals release: {lock_b.release()} (only the owner can release)")
    print(f"worker-A releases: {lock_a.release()}")
    print(f"worker-B acquires after release: {lock_b.try_acquire()} "
          f"(after {lock_b.cas_conflicts} CAS conflicts)")
    lock_b.release()

    print("\n== Barrier ==")
    parties = [Barrier(cluster.agent(f"H{i}"), "barrier:epoch-3", parties=3)
               for i in range(3)]
    for index, barrier in enumerate(parties):
        arrival = barrier.arrive()
        print(f"H{index} arrived at position {arrival}; barrier complete: "
              f"{barrier.is_complete()}")

    print("\n== Group membership ==")
    membership = GroupMembership(cluster.agent("H0"), "group:frontends")
    for node in ("fe-1", "fe-2", "fe-3"):
        membership.join(node)
    print(f"members after joins : {membership.members()}")
    membership.leave("fe-2")
    print(f"members after leave : {GroupMembership(cluster.agent('H2'), 'group:frontends').members()}")

    print("\nAll of the above ran as data-plane queries against switch registers;")
    print(f"total queries completed: {cluster.total_completed()}, "
          f"mean latency {cluster.agent('H0').latency.mean() * 1e6:.1f} us.")

    # ------------------------------------------------------------------ #
    # The same lock recipe, unmodified, against the ZooKeeper baseline.
    # ------------------------------------------------------------------ #

    print("\n== Same lock recipe on the ZooKeeper baseline ==")
    deployment = build_deployment(DeploymentSpec(
        backend="zookeeper", store_size=0, unlimited_capacity=True))
    deployment.ensemble.preload({"/kv/lock:shard-7": b""})
    zk_a = DistributedLock(deployment.new_kv_client(0), "lock:shard-7", owner="worker-A")
    zk_b = DistributedLock(deployment.new_kv_client(1), "lock:shard-7", owner="worker-B")
    start = deployment.sim.now
    acquired = zk_a.try_acquire(deadline=10.0)
    zk_latency = deployment.sim.now - start
    print(f"worker-A acquires: {acquired}  (took {zk_latency * 1e6:.0f} us of simulated time)")
    print(f"worker-B acquires while held: {zk_b.try_acquire(deadline=10.0)}")
    print(f"worker-A releases: {zk_a.release(deadline=10.0)}")
    print("The recipe is identical; only the backend -- and the latency -- changed.")


if __name__ == "__main__":
    main()
