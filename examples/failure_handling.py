#!/usr/bin/env python3
"""Switch failure, fast failover and failure recovery (Section 5 / Figure 10).

The example runs a 50% write workload against the chain [S0, S1, S2],
fail-stops the middle switch S1, and prints a per-half-second throughput
time series while the controller

1. performs **fast failover** -- it installs destination-IP rewrite rules on
   S1's neighbours so every affected chain keeps operating with two
   switches, and
2. performs **failure recovery** -- it synchronizes state onto the spare
   switch S3 and splices it into the chains, one virtual group at a time.

After recovery the example verifies that no data was lost and that the
chain invariant (Invariant 1 of the paper) holds on every chain.

Run:  python examples/failure_handling.py
"""

from __future__ import annotations

from repro.experiments import failure_experiment


def main() -> None:
    print("== Failure handling on the 4-switch testbed ==")
    timeline = failure_experiment(
        virtual_groups=1,          # one virtual group per switch, as in Figure 10(a)
        write_ratio=0.5,
        store_size=600,
        scale=50000.0,
        fail_at=4.0,
        detection_delay=1.0,       # the paper injects 1 s so the dip is visible
        recovery_start_delay=4.0,
        run_after_recovery=4.0,
        sync_items_per_sec=100.0,
        bin_width=1.0,
    )

    print(f"switch S1 fails at t={timeline.fail_time:.0f}s; failover completes at "
          f"t={timeline.failover_complete_time:.0f}s; recovery runs "
          f"t={timeline.recovery_start_time:.0f}s..{timeline.recovery_end_time:.1f}s "
          f"({timeline.groups_recovered} virtual groups restored onto S3)")
    print()
    print("time   queries/s (one client server, simulated units)")
    for time, rate in timeline.series:
        bar = "#" * int(60 * rate / max(r for _, r in timeline.series))
        print(f"{time:5.1f}s {rate:9.1f}  {bar}")
    print()
    print(f"baseline throughput            : {timeline.scaled(timeline.baseline_qps) / 1e6:7.2f} MQPS")
    print(f"during failover window (1 s)   : {timeline.scaled(timeline.failover_window_qps) / 1e6:7.2f} MQPS")
    print(f"during failure recovery        : {timeline.scaled(timeline.recovery_window_qps) / 1e6:7.2f} MQPS "
          f"({timeline.recovery_drop_fraction() * 100:.0f}% drop: writes to the recovering "
          f"group are paused)")
    print(f"after recovery                 : {timeline.scaled(timeline.post_recovery_qps) / 1e6:7.2f} MQPS")
    print()
    print("Re-running with 100 virtual groups per switch (Figure 10(b)) shrinks the")
    print("recovery-time drop to well under a percent, because only one group's writes")
    print("are paused at any moment -- see benchmarks/test_fig10_failure_handling.py.")


if __name__ == "__main__":
    main()
