#!/usr/bin/env python3
"""Quickstart: an in-network key-value store in a few lines.

Builds the paper's 4-switch testbed (Figure 8), installs the NetChain
program on the switches, and drives it through the unified client API
(:mod:`repro.core.client`): every operation returns a future, and a
session batches operations back-to-back with a pipelined in-flight window.
Every query is processed entirely by the simulated switch data plane --
note the ~10 microsecond latencies, versus the hundreds of microseconds a
server-based store pays.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.deploy import DeploymentSpec, build_deployment


def main() -> None:
    # A NetChain deployment, declaratively: 4 Tofino-like switches in a
    # ring, 4 client hosts, chains of 3 switches (f+1 = 3 tolerates 2
    # failures with the help of the controller's reconfiguration
    # protocol).  scale=1 keeps the full device capacities so per-query
    # latency matches the paper.  Swapping `backend` for "zookeeper",
    # "server-chain", "primary-backup" or "hybrid" builds the comparison
    # systems with the same client protocol.
    deployment = build_deployment(DeploymentSpec(
        backend="netchain", scale=1.0, store_slots=4096, vnodes_per_switch=8))
    cluster = deployment.cluster
    controller = cluster.controller
    session = cluster.session("H0")

    print("== NetChain quickstart ==")
    print(f"member switches : {sorted(controller.members)}")

    # Insert goes through the control plane (the controller installs the
    # key's index entry on every switch of its chain), then the value is
    # written through the data plane.  .result() drives the simulation
    # until the reply arrives.
    session.insert("hello", b"world").result()
    info = controller.chain_for_key("hello")
    print(f"chain for 'hello': {info.switches} (head -> tail)")

    # Reads and writes are pure data-plane operations returning futures.
    result = session.read("hello").result()
    print(f"read  'hello' -> {result.value!r}   latency {result.latency * 1e6:.1f} us")

    result = session.write("hello", b"netchain").result()
    print(f"write 'hello' <- b'netchain'        latency {result.latency * 1e6:.1f} us "
          f"(version {result.raw.version()})")

    result = session.read("hello").result()
    print(f"read  'hello' -> {result.value!r}   version {result.raw.version()}")

    # Compare-and-swap: the primitive used to build locks (Section 8.5).
    ok = session.cas("hello", b"netchain", b"swapped").result()
    failed = session.cas("hello", b"netchain", b"nope").result()
    print(f"cas expecting current value  -> ok={ok.ok}")
    print(f"cas expecting stale value    -> ok={failed.ok} "
          f"(value stays {session.read('hello').result().value!r})")

    # Batched pipelined submission: operations go out back-to-back with a
    # bounded in-flight window instead of one round-trip gap per op.
    keys = [f"bulk{i}" for i in range(8)]
    controller.populate(keys)
    batch = session.batch()
    for key in keys:
        batch.write(key, key.encode())
    start = cluster.sim.now
    results = batch.results()
    elapsed = cluster.sim.now - start
    print(f"batched 8 writes in {elapsed * 1e6:.1f} us total "
          f"({'all ok' if all(r.ok for r in results) else 'failures!'}) -- "
          f"~{elapsed / len(keys) * 1e6:.1f} us/op pipelined")

    # Reads from another host observe the same data (strong consistency).
    other = cluster.session("H1")
    print(f"read from H1 -> {other.read('hello').result().value!r}")

    # Delete invalidates the item in the data plane; the controller
    # garbage-collects the slot afterwards.
    session.delete("hello").result()
    result = session.read("hello").result()
    print(f"read after delete -> ok={result.ok} (not_found={result.not_found})")

    stats = [(name, program.stats.reads, program.stats.writes_applied)
             for name, program in sorted(controller.programs.items())]
    print("per-switch data-plane counters (reads, writes):")
    for name, reads, writes in stats:
        print(f"  {name}: reads={reads:3d} writes={writes:3d}")


if __name__ == "__main__":
    main()
