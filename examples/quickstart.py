#!/usr/bin/env python3
"""Quickstart: an in-network key-value store in a few lines.

Builds the paper's 4-switch testbed (Figure 8), installs the NetChain
program on the switches, and uses the client agent's key-value API:
insert, write, read, compare-and-swap and delete.  Every query is processed
entirely by the simulated switch data plane -- note the ~10 microsecond
latencies, versus the hundreds of microseconds a server-based store pays.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import ClusterConfig, NetChainCluster


def main() -> None:
    # A NetChain deployment: 4 Tofino-like switches in a ring, 4 client
    # hosts, chains of 3 switches (f+1 = 3 tolerates 2 failures with the
    # help of the controller's reconfiguration protocol).
    cluster = NetChainCluster(ClusterConfig(store_slots=4096, vnodes_per_switch=8))
    controller = cluster.controller
    agent = cluster.agent("H0")

    print("== NetChain quickstart ==")
    print(f"member switches : {sorted(controller.members)}")

    # Insert goes through the control plane (the controller installs the
    # key's index entry on every switch of its chain), then the value is
    # written through the data plane.
    agent.insert_sync("hello", b"world")
    info = controller.chain_for_key("hello")
    print(f"chain for 'hello': {info.switches} (head -> tail)")

    # Reads and writes are pure data-plane operations.
    result = agent.read_sync("hello")
    print(f"read  'hello' -> {result.value!r}   latency {result.latency * 1e6:.1f} us")

    result = agent.write_sync("hello", b"netchain")
    print(f"write 'hello' <- b'netchain'        latency {result.latency * 1e6:.1f} us "
          f"(version {result.version()})")

    result = agent.read_sync("hello")
    print(f"read  'hello' -> {result.value!r}   version {result.version()}")

    # Compare-and-swap: the primitive used to build locks (Section 8.5).
    ok = agent.cas_sync("hello", b"netchain", b"swapped")
    failed = agent.cas_sync("hello", b"netchain", b"nope")
    print(f"cas expecting current value  -> status {ok.status.name}")
    print(f"cas expecting stale value    -> status {failed.status.name} "
          f"(value stays {agent.read_sync('hello').value!r})")

    # Reads from another host observe the same data (strong consistency).
    other = cluster.agent("H1")
    print(f"read from H1 -> {other.read_sync('hello').value!r}")

    # Delete invalidates the item in the data plane; the controller
    # garbage-collects the slot afterwards.
    agent.delete_sync("hello")
    result = agent.read_sync("hello")
    print(f"read after delete -> status {result.status.name}")

    stats = [(name, program.stats.reads, program.stats.writes_applied)
             for name, program in sorted(controller.programs.items())]
    print("per-switch data-plane counters (reads, writes):")
    for name, reads, writes in stats:
        print(f"  {name}: reads={reads:3d} writes={writes:3d}")


if __name__ == "__main__":
    main()
