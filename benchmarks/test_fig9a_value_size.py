"""Figure 9(a): throughput vs value size.

Paper result: NetChain(4) stays flat at 82 MQPS for values from 0 to 128
bytes (the four client servers are the bottleneck, and the switch chain
could serve up to 2 BQPS); ZooKeeper stays flat around 140 KQPS.  Neither
system's throughput depends on the value size in this range.
"""

from __future__ import annotations

import pytest

from bench_utils import full_mode, record_result
from repro.experiments import netchain_max_throughput_qps, netchain_throughput, zookeeper_throughput

VALUE_SIZES = [16, 64, 128] if not full_mode() else [16, 32, 64, 96, 128]
NETCHAIN_SCALE = 50000.0
SERVER_COUNTS = (1, 2, 4)


def run_sweep():
    rows = []
    for value_size in VALUE_SIZES:
        entry = {"value_size": value_size}
        for servers in SERVER_COUNTS:
            result = netchain_throughput(num_servers=servers, value_size=value_size,
                                         store_size=1000, write_ratio=0.01,
                                         scale=NETCHAIN_SCALE, duration=0.25, warmup=0.05)
            entry[f"netchain_{servers}"] = result.mqps
        zookeeper = zookeeper_throughput(num_clients=60, value_size=value_size,
                                         store_size=1000, write_ratio=0.01,
                                         scale=1000.0, duration=1.5, warmup=0.5)
        entry["zookeeper"] = zookeeper.kqps
        rows.append(entry)
    return rows


def test_fig9a_throughput_vs_value_size(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    max_mqps = netchain_max_throughput_qps() / 1e6
    lines = [f"{'value size (B)':>14} | {'NetChain(1)':>11} {'NetChain(2)':>11} "
             f"{'NetChain(4)':>11} {'NetChain(max)':>13} | {'ZooKeeper':>10}",
             f"{'':>14} | {'MQPS':>11} {'MQPS':>11} {'MQPS':>11} {'MQPS':>13} | {'KQPS':>10}"]
    for row in rows:
        lines.append(f"{row['value_size']:>14} | {row['netchain_1']:>11.1f} "
                     f"{row['netchain_2']:>11.1f} {row['netchain_4']:>11.1f} "
                     f"{max_mqps:>13.0f} | {row['zookeeper']:>10.1f}")
    record_result("fig9a_value_size", "Figure 9(a): throughput vs value size", lines)

    # Shape checks against the paper.
    for row in rows:
        # NetChain(4) ~82 MQPS, bottlenecked by the client servers.
        assert row["netchain_4"] == pytest.approx(82.0, rel=0.25)
        # Scales with the number of client servers.
        assert row["netchain_4"] > 2.5 * row["netchain_1"]
        # Orders of magnitude above ZooKeeper (MQPS vs KQPS).
        assert row["netchain_4"] * 1e3 > 50 * row["zookeeper"]
    # Value size does not change NetChain throughput in the supported range.
    netchain4 = [row["netchain_4"] for row in rows]
    assert max(netchain4) < 1.2 * min(netchain4)
    zk = [row["zookeeper"] for row in rows]
    assert max(zk) < 1.5 * min(zk)
