"""Figure 11: application performance — distributed transactions with 2PL.

Paper result: with NetChain as the lock server the system sustains orders of
magnitude more transactions per second than with ZooKeeper; with one client
the curve is flat across contention (no conflicts), with many clients the
throughput is higher at low contention and falls as the contention index
approaches 1 (all clients fight over a single hot lock), dropping to around
or below the single-client line.
"""

from __future__ import annotations

from bench_utils import full_mode, record_result
from repro.experiments import netchain_transactions, zookeeper_transactions

CONTENTION = [0.001, 0.01, 0.1, 1.0] if not full_mode() else [0.001, 0.003, 0.01, 0.03,
                                                              0.1, 0.3, 1.0]
NETCHAIN_CLIENTS = (1, 10, 50)
ZOOKEEPER_CLIENTS = (1, 5)


def run_sweep():
    rows = []
    for contention_index in CONTENTION:
        entry = {"contention": contention_index}
        for clients in NETCHAIN_CLIENTS:
            result = netchain_transactions(contention_index=contention_index,
                                           num_clients=clients, cold_items=500,
                                           duration=0.012, warmup=0.003)
            entry[f"netchain_{clients}"] = result.txns_per_sec
        for clients in ZOOKEEPER_CLIENTS:
            result = zookeeper_transactions(contention_index=contention_index,
                                            num_clients=clients, cold_items=500,
                                            duration=1.2, warmup=0.3)
            entry[f"zookeeper_{clients}"] = result.txns_per_sec
        rows.append(entry)
    return rows


def test_fig11_transaction_throughput(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    header = (f"{'contention':>10} | "
              + " ".join(f"{'NC(' + str(c) + ')':>10}" for c in NETCHAIN_CLIENTS)
              + " | "
              + " ".join(f"{'ZK(' + str(c) + ')':>9}" for c in ZOOKEEPER_CLIENTS)
              + "   (txns/sec)")
    lines = [header]
    for row in rows:
        lines.append(f"{row['contention']:>10} | "
                     + " ".join(f"{row[f'netchain_{c}']:>10.0f}" for c in NETCHAIN_CLIENTS)
                     + " | "
                     + " ".join(f"{row[f'zookeeper_{c}']:>9.1f}" for c in ZOOKEEPER_CLIENTS))
    record_result("fig11_transactions", "Figure 11: transaction throughput", lines)

    by_contention = {row["contention"]: row for row in rows}
    low = by_contention[CONTENTION[0]]
    high = by_contention[1.0]

    # Orders of magnitude between NetChain and ZooKeeper at equal client count.
    assert low["netchain_1"] > 50 * low["zookeeper_1"]
    # The single-client NetChain line is roughly flat across contention.
    netchain_1 = [row["netchain_1"] for row in rows]
    assert max(netchain_1) < 2.0 * min(netchain_1)
    # More clients help at low contention...
    assert low["netchain_50"] > 5 * low["netchain_1"]
    # ...but contention erodes the advantage: at contention index 1 the
    # 50-client throughput collapses towards (or below) the low-contention value.
    assert high["netchain_50"] < 0.3 * low["netchain_50"]
    # ZooKeeper transactions are in the tens-to-hundreds per second range.
    assert low["zookeeper_1"] < 1000
