"""Figure 9(c): throughput vs write ratio.

Paper result: NetChain(4) stays at 82 MQPS for any write ratio (in the
3-switch chain every switch processes the same number of packets for reads
and writes), while ZooKeeper collapses from 230 KQPS (read-only) to 140 KQPS
at 1% writes and 27 KQPS at 100% writes, because every write crosses the
ZAB leader and its log.
"""

from __future__ import annotations

import pytest

from bench_utils import full_mode, record_result
from repro.experiments import netchain_throughput, zookeeper_throughput

WRITE_RATIOS = [0.0, 0.01, 0.5, 1.0] if not full_mode() else [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 1.0]
NETCHAIN_SCALE = 50000.0


def run_sweep():
    rows = []
    for write_ratio in WRITE_RATIOS:
        netchain = netchain_throughput(num_servers=4, store_size=1000, value_size=64,
                                       write_ratio=write_ratio, scale=NETCHAIN_SCALE,
                                       duration=0.25, warmup=0.05)
        zookeeper = zookeeper_throughput(num_clients=60, store_size=1000, value_size=64,
                                         write_ratio=write_ratio, scale=1000.0,
                                         duration=1.5, warmup=0.5)
        rows.append({"write_ratio": write_ratio, "netchain_4": netchain.mqps,
                     "zookeeper": zookeeper.kqps})
    return rows


def test_fig9c_throughput_vs_write_ratio(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [f"{'write ratio':>11} | {'NetChain(4) MQPS':>16} | {'ZooKeeper KQPS':>14}"]
    for row in rows:
        lines.append(f"{row['write_ratio']:>11.2f} | {row['netchain_4']:>16.1f} | "
                     f"{row['zookeeper']:>14.1f}")
    record_result("fig9c_write_ratio", "Figure 9(c): throughput vs write ratio", lines)

    by_ratio = {row["write_ratio"]: row for row in rows}
    netchain = [row["netchain_4"] for row in rows]
    # NetChain is insensitive to the write ratio.
    assert max(netchain) < 1.2 * min(netchain)
    assert netchain[0] == pytest.approx(82.0, rel=0.25)
    # ZooKeeper degrades sharply as the write ratio grows.
    assert by_ratio[1.0]["zookeeper"] < 0.3 * by_ratio[0.0]["zookeeper"]
    # Read-only ZooKeeper lands near the paper's 230 KQPS.
    assert by_ratio[0.0]["zookeeper"] == pytest.approx(230.0, rel=0.5)
    # Write-only ZooKeeper lands in the tens of KQPS.
    assert by_ratio[1.0]["zookeeper"] < 60.0
