"""Figure 9(f): scalability on spine-leaf networks (simulation).

Paper result: on non-blocking spine-leaf fabrics of 64-port, 4 BQPS switches
the maximum NetChain throughput grows linearly from 6 to 96 switches,
reaching tens of BQPS; the write curve sits below the read curve because a
write traverses all f+1 chain switches while a read only visits the tail.
"""

from __future__ import annotations

from bench_utils import full_mode, record_result
from repro.experiments import scalability_experiment

SIZES = [(2, 4), (8, 16), (16, 32), (24, 48), (32, 64)]
SAMPLES = 1500 if not full_mode() else 6000


def test_fig9f_scalability(benchmark):
    points = benchmark.pedantic(scalability_experiment,
                                kwargs={"sizes": SIZES, "samples": SAMPLES},
                                rounds=1, iterations=1)
    lines = [f"{'switches':>9} | {'read BQPS':>10} {'write BQPS':>11} | "
             f"{'passes/read':>11} {'passes/write':>12}"]
    for point in points:
        lines.append(f"{point.num_switches:>9} | {point.read_bqps:>10.1f} "
                     f"{point.write_bqps:>11.1f} | {point.avg_read_passes:>11.2f} "
                     f"{point.avg_write_passes:>12.2f}")
    record_result("fig9f_scalability", "Figure 9(f): spine-leaf scalability", lines)

    reads = [p.read_bqps for p in points]
    writes = [p.write_bqps for p in points]
    sizes = [p.num_switches for p in points]
    # Monotonic, roughly linear growth for both series.
    assert all(b > a for a, b in zip(reads, reads[1:], strict=False))
    assert all(b > a for a, b in zip(writes, writes[1:], strict=False))
    growth = reads[-1] / reads[0]
    size_growth = sizes[-1] / sizes[0]
    assert growth > 0.6 * size_growth
    # Reads above writes everywhere; both in the tens of BQPS at ~100 switches
    # (paper: ~80 read / ~40 write BQPS at 96 switches).
    assert all(r > w for r, w in zip(reads, writes, strict=True))
    assert 40 < reads[-1] < 160
    assert 25 < writes[-1] < 100
