"""Verification-at-scale benchmark: spill and check a ~1M-op history.

The out-of-core pipeline's contract is "bounded memory at any run size":
completed operations stream to NDJSON (``repro.core.history_store``), and
the Wing & Gong checker runs per-key over the derived offset index, so
peak RSS tracks the largest single key stream -- never the run length.
This harness proves that contract at the million-operation scale the
in-memory path cannot reach, and emits the measurement as JSON
(``netchain-verify-report/v1``)::

    PYTHONPATH=src python benchmarks/verify_at_scale.py \\
        --ops 1000000 --workers 4 --max-rss-mb 400 -o verify.json

Phases (each timed separately):

* **record** -- a seeded synthetic concurrent history
  (:mod:`repro.core.history_gen`: linearizable by construction, so the
  expected verdict is known) streams through :class:`HistoryWriter`;
  nothing is ever buffered beyond in-flight operations.
* **verify** -- :func:`check_linearizable_streaming` over the run
  directory, optionally with a worker pool; reports checked-ops/sec.

Determinism: everything derives from ``--seed``.  The report includes the
sha256 of the spilled ``ops.ndjson``; two runs with the same parameters
must produce the same hash and the same verdict (asserted by
``--replay-check``, which records and hashes the run a second time).

``--max-rss-mb`` turns the report into a gate: exit non-zero when the
process peak RSS exceeds the budget (run this in a fresh process --
ru_maxrss is a process-lifetime high-water mark).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.history_gen import initial_values, iter_history  # noqa: E402
from repro.core.history_store import (  # noqa: E402
    HistoryStore,
    HistoryWriter,
    check_linearizable_streaming,
)
from repro.netsim.telemetry import peak_rss_bytes  # noqa: E402

SCHEMA = "netchain-verify-report/v1"


def sha256_of(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def record_run(run_dir: Path, args) -> dict:
    """Stream the seeded history into a spilled run directory."""
    start = time.perf_counter()
    with HistoryWriter(run_dir, meta={"seed": args.seed,
                                      "generator": "history_gen"}) as writer:
        for op in iter_history(args.seed, clients=args.clients,
                               keys=args.keys, ops=args.ops,
                               timeout_rate=args.timeout_rate):
            writer.append(op)
    wall = time.perf_counter() - start
    ops_path = run_dir / "ops.ndjson"
    return {
        "wall_clock_s": wall,
        "ops_per_sec": args.ops / wall if wall > 0 else 0.0,
        "data_bytes": ops_path.stat().st_size,
        "ndjson_sha256": sha256_of(ops_path),
    }


def build_report(args) -> dict:
    run_dir = Path(args.run_dir) if args.run_dir else \
        Path(tempfile.mkdtemp(prefix="verify-at-scale-"))
    created_tmp = args.run_dir is None

    record = record_run(run_dir, args)
    if args.replay_check:
        replay_dir = Path(tempfile.mkdtemp(prefix="verify-replay-"))
        replay = record_run(replay_dir, args)
        record["replay_identical"] = \
            replay["ndjson_sha256"] == record["ndjson_sha256"]
        shutil.rmtree(replay_dir, ignore_errors=True)

    store = HistoryStore(run_dir)
    start = time.perf_counter()
    verdict = check_linearizable_streaming(
        store, initial=initial_values(args.keys), workers=args.workers)
    verify_wall = time.perf_counter() - start
    store.close()

    report = {
        "schema": SCHEMA,
        "config": {
            "seed": args.seed, "ops": args.ops, "keys": args.keys,
            "clients": args.clients, "timeout_rate": args.timeout_rate,
            "workers": args.workers,
        },
        "record": record,
        "verify": {
            "wall_clock_s": verify_wall,
            "checked_ops_per_sec":
                args.ops / verify_wall if verify_wall > 0 else 0.0,
            "keys_checked": len(verdict.keys),
            "cache_hits": verdict.cache_hits,
            "linearizable": verdict.ok,
            "exhausted_keys": len(verdict.exhausted_keys()),
        },
        "peak_rss_bytes": peak_rss_bytes(),
    }
    if created_tmp and not args.keep_run_dir:
        shutil.rmtree(run_dir, ignore_errors=True)
    else:
        report["run_dir"] = str(run_dir)
    return report


def summarize(report: dict) -> str:
    verify = report["verify"]
    record = report["record"]
    rss_mib = report["peak_rss_bytes"] / (1 << 20)
    lines = [
        "## Verify at scale",
        "",
        f"| ops | checked ops/sec | verify wall (s) | record ops/sec "
        f"| peak RSS (MiB) | linearizable |",
        "|---|---|---|---|---|---|",
        f"| {report['config']['ops']:,} "
        f"| {verify['checked_ops_per_sec']:,.0f} "
        f"| {verify['wall_clock_s']:.1f} "
        f"| {record['ops_per_sec']:,.0f} "
        f"| {rss_mib:.0f} "
        f"| {verify['linearizable']} |",
        "",
        f"spilled {record['data_bytes']:,} bytes; ndjson sha256 "
        f"`{record['ndjson_sha256'][:16]}...`",
    ]
    if "replay_identical" in record:
        lines.append(f"replay byte-identical: {record['replay_identical']}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=1_000_000)
    parser.add_argument("--keys", type=int, default=512)
    parser.add_argument("--clients", type=int, default=32)
    parser.add_argument("--timeout-rate", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--workers", type=int, default=0,
                        help="checker worker processes (0 = in-process)")
    parser.add_argument("--run-dir", default=None,
                        help="spill here instead of a temporary directory")
    parser.add_argument("--keep-run-dir", action="store_true",
                        help="keep the temporary run directory")
    parser.add_argument("--replay-check", action="store_true",
                        help="record twice and assert byte-identical NDJSON")
    parser.add_argument("--max-rss-mb", type=float, default=None,
                        help="fail when peak RSS exceeds this budget")
    parser.add_argument("-o", "--output", default=None,
                        help="write the JSON report here")
    parser.add_argument("--summary", action="store_true",
                        help="print the markdown summary to stdout")
    args = parser.parse_args(argv)

    report = build_report(args)
    if args.output:
        Path(args.output).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
    print(summarize(report) if args.summary
          else json.dumps(report, indent=2, sort_keys=True))

    failures = []
    if not report["verify"]["linearizable"]:
        failures.append("history was NOT linearizable (generator produces "
                        "linearizable-by-construction histories)")
    if report["verify"]["exhausted_keys"]:
        failures.append(f"{report['verify']['exhausted_keys']} keys "
                        f"exhausted the state budget")
    if report["record"].get("replay_identical") is False:
        failures.append("replay produced different NDJSON bytes")
    if args.max_rss_mb is not None:
        rss_mb = report["peak_rss_bytes"] / (1 << 20)
        if rss_mb > args.max_rss_mb:
            failures.append(f"peak RSS {rss_mb:.0f} MiB exceeds the "
                            f"{args.max_rss_mb:.0f} MiB budget")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
