"""Pytest configuration for the benchmark suite."""

from __future__ import annotations

import sys
from pathlib import Path

# Make the sibling ``bench_utils`` module importable regardless of how pytest
# sets up rootdir/importmode.
sys.path.insert(0, str(Path(__file__).resolve().parent))
