"""Figure 10: failure handling (fast failover + failure recovery).

Paper result (S1 fails in the chain [S0, S1, S2], 50% writes):

* the throughput dip at the failure lasts only as long as the injected
  1-second detection delay -- fast failover then restores full throughput
  with the 2-switch chain;
* during failure recovery (synchronizing S3 and splicing it in) write
  queries to the group being recovered cannot be served: with a single
  virtual group the drop is large and lasts the whole synchronization, with
  100 virtual groups only ~0.5% of queries are affected.

The timeline here is compressed (smaller store, faster sync) but preserves
the phases and their relative effects.
"""

from __future__ import annotations

from bench_utils import full_mode, record_result
from repro.experiments import failure_experiment

FEW_GROUPS = 1
MANY_GROUPS = 25 if not full_mode() else 100
SCALE = 50000.0


def run_both():
    few = failure_experiment(virtual_groups=FEW_GROUPS, write_ratio=0.5, store_size=600,
                             scale=SCALE, fail_at=4.0, detection_delay=1.0,
                             recovery_start_delay=4.0, run_after_recovery=4.0,
                             sync_items_per_sec=100.0, bin_width=1.0, max_duration=90.0)
    many = failure_experiment(virtual_groups=MANY_GROUPS, write_ratio=0.5, store_size=600,
                              scale=SCALE, fail_at=4.0, detection_delay=1.0,
                              recovery_start_delay=4.0, run_after_recovery=4.0,
                              sync_items_per_sec=100.0, bin_width=1.0, max_duration=150.0)
    return few, many


def test_fig10_failover_and_recovery(benchmark):
    few, many = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = []
    for label, timeline in ((f"{FEW_GROUPS} virtual group/switch", few),
                            (f"{MANY_GROUPS} virtual groups/switch", many)):
        lines.append(f"-- {label} (fail at t={timeline.fail_time:.0f}s, recovery "
                     f"t={timeline.recovery_start_time:.0f}..{timeline.recovery_end_time:.1f}s, "
                     f"{timeline.groups_recovered} groups) --")
        lines.append(f"{'phase':<28} {'throughput (MQPS, scaled)':>26}")
        lines.append(f"{'baseline':<28} {timeline.scaled(timeline.baseline_qps) / 1e6:>26.2f}")
        lines.append(f"{'failover window (1s)':<28} "
                     f"{timeline.scaled(timeline.failover_window_qps) / 1e6:>26.2f}")
        lines.append(f"{'during failure recovery':<28} "
                     f"{timeline.scaled(timeline.recovery_window_qps) / 1e6:>26.2f}")
        lines.append(f"{'after recovery':<28} "
                     f"{timeline.scaled(timeline.post_recovery_qps) / 1e6:>26.2f}")
        lines.append(f"{'recovery throughput drop':<28} "
                     f"{timeline.recovery_drop_fraction() * 100:>25.1f}%")
        lines.append("time series (s, qps in simulated units): "
                     + ", ".join(f"{t:.0f}:{rate:.0f}" for t, rate in timeline.series))
        lines.append("")
    record_result("fig10_failure_handling", "Figure 10: failure handling", lines)

    for timeline in (few, many):
        # The failover window loses most throughput (the injected detection
        # delay makes the dip visible, as in the paper).
        assert timeline.failover_window_qps < 0.5 * timeline.baseline_qps
        # Fast failover restores full service before recovery starts, and the
        # cluster is back to baseline after recovery.
        assert timeline.post_recovery_qps > 0.85 * timeline.baseline_qps
    # Recovery with a single virtual group costs a large fraction of
    # throughput; with many virtual groups the drop is small (Figure 10(b)).
    assert few.recovery_drop_fraction() > 0.25
    assert many.recovery_drop_fraction() < 0.5 * few.recovery_drop_fraction()
    assert many.recovery_drop_fraction() < 0.15
