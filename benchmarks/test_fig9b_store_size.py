"""Figure 9(b): throughput vs store size.

Paper result: neither system's throughput depends on the number of stored
items (NetChain(4) flat at 82 MQPS up to 100K items; ZooKeeper flat around
140 KQPS); the store size is limited only by the allocated switch SRAM.
"""

from __future__ import annotations

import pytest

from bench_utils import full_mode, record_result
from repro.experiments import netchain_throughput, zookeeper_throughput

STORE_SIZES = [1000, 5000, 20000] if not full_mode() else [1000, 20000, 40000, 100000]
NETCHAIN_SCALE = 50000.0


def run_sweep():
    rows = []
    for store_size in STORE_SIZES:
        netchain = netchain_throughput(num_servers=4, store_size=store_size,
                                       value_size=64, write_ratio=0.01,
                                       scale=NETCHAIN_SCALE, duration=0.25, warmup=0.05)
        zookeeper = zookeeper_throughput(num_clients=60, store_size=min(store_size, 5000),
                                         value_size=64, write_ratio=0.01,
                                         scale=1000.0, duration=1.5, warmup=0.5)
        rows.append({"store_size": store_size, "netchain_4": netchain.mqps,
                     "zookeeper": zookeeper.kqps})
    return rows


def test_fig9b_throughput_vs_store_size(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [f"{'store size':>10} | {'NetChain(4) MQPS':>16} | {'ZooKeeper KQPS':>14}"]
    for row in rows:
        lines.append(f"{row['store_size']:>10} | {row['netchain_4']:>16.1f} | "
                     f"{row['zookeeper']:>14.1f}")
    record_result("fig9b_store_size", "Figure 9(b): throughput vs store size", lines)

    netchain = [row["netchain_4"] for row in rows]
    zookeeper = [row["zookeeper"] for row in rows]
    # Flat in store size for both systems.
    assert max(netchain) < 1.2 * min(netchain)
    assert max(zookeeper) < 1.5 * min(zookeeper)
    # Absolute levels as in the paper.
    assert netchain[-1] == pytest.approx(82.0, rel=0.25)
    assert netchain[-1] * 1e3 > 50 * zookeeper[-1]
