"""Machine-readable performance report for the simulator hot path.

The NetChain paper's headline claim is performance; this harness makes the
*simulator's* performance a first-class, tracked artifact.  It runs a fixed
seeded macro-workload on every registered backend through ``repro.deploy``,
times a small set of figure-style scenarios, and emits a JSON report in a
stable schema (``netchain-perf-report/v1``)::

    PYTHONPATH=src python benchmarks/perf_report.py            # BENCH_PR5.json
    PYTHONPATH=src python benchmarks/perf_report.py --quick -o report.json

Schema (stable; additions are allowed, renames/removals are a new version):

* ``schema``       -- the literal ``"netchain-perf-report/v1"``.
* ``environment``  -- python/platform/cpu info for the record.
* ``calibration``  -- a pure engine event-churn loop timed on this machine.
  Dividing scenario throughput by the calibration throughput gives
  machine-independent "calibrated" metrics, which is what the CI gate
  compares so a slower runner does not read as a code regression.
* ``macro``        -- the headline macro-workload: a seeded closed-loop
  NetChain scenario; reports processed events, wall clock, events/sec
  (raw + calibrated) and peak RSS.
* ``macro_skewed`` -- the same macro shape under Zipf-0.99 skew, with the
  adaptive hot-key tier off and on, plus the (seed-deterministic)
  ``tier_speedup_sim_qps`` ratio between the two.
* ``backends``     -- the same scenario shape on every registered backend.
* ``verify``       -- the out-of-core verification pipeline
  (``benchmarks/verify_at_scale.py`` in a fresh subprocess, so its peak
  RSS is the pipeline's own high-water mark, not this harness's): seeded
  spill + streaming linearizability check; reports checked-ops/sec
  (raw + calibrated), the spilled byte count and its sha256 (both
  seed-deterministic), and the subprocess peak RSS.
* ``matrix``       -- a fixed seed x backend x fault-profile grid run
  through :func:`repro.deploy.run_matrix` with a worker pool sized to the
  machine: cell count, ok cells, total completed ops and the grid replay
  digest are seed-deterministic (gated exactly); cells/sec follows the
  usual calibration rules.
* ``figures``      -- one timed point per figure-style workload (value
  size, write ratio, loss rate, latency, failover), each with wall clock
  and a calibrated cost (wall clock x calibration events/sec; lower is
  better and machine-independent).
* ``observability`` -- the macro scenario re-run with the deterministic
  telemetry plane enabled (``trace/v1`` run dir): spilled span/metrics/
  event byte counts and their sha256 (seed-deterministic), traced-run
  events/sec (raw + calibrated), and the tracing overhead ratio against
  the untraced macro wall clock.

Determinism: everything stochastic derives from the fixed seeds below, so
``processed_events`` and ``completed_ops`` are bit-stable across runs and
machines; only wall-clock-derived numbers vary.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.deploy import (  # noqa: E402  (path bootstrap above)
    DeploymentSpec,
    ScenarioChecks,
    WorkloadSpec,
    available_backends,
    build_deployment,
    default_matrix,
    run_matrix,
    run_scenario,
)
from repro.netsim.engine import Simulator  # noqa: E402
from repro.netsim.telemetry import peak_rss_bytes  # noqa: E402

SCHEMA = "netchain-perf-report/v1"

#: Seed for every scenario in the report (fixed: the report must replay).
SEED = 11

#: Events in the calibration spin (pure engine churn, no network model).
CALIBRATION_EVENTS = 200_000


def calibrate(events: int = CALIBRATION_EVENTS) -> dict:
    """Time a pure engine event-churn loop.

    A self-rescheduling callback ladder: measures the per-event cost of the
    discrete-event kernel alone on this machine, which anchors the
    machine-independent "calibrated" metrics.
    """
    sim = Simulator()
    remaining = [events]
    # Fall back to the handle-returning API so the harness also runs on
    # pre-overhaul engines (used to produce before/after comparisons).
    submit = getattr(sim, "call_after", sim.schedule)

    def tick() -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            submit(1e-6, tick)

    for _ in range(64):  # a realistically wide heap
        submit(0.0, tick)
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    return {
        "events": sim.processed_events,
        "wall_clock_s": wall,
        "events_per_sec": sim.processed_events / wall if wall > 0 else 0.0,
    }


def _macro_workload(quick: bool) -> WorkloadSpec:
    return WorkloadSpec(num_clients=4, concurrency=8, write_ratio=0.3,
                        duration=0.1 if quick else 0.5, drain=0.1)


def _skewed_workload(quick: bool) -> WorkloadSpec:
    """The skewed macro-workload of the hot-key tier ablation.

    Zipf 0.99 at a concurrency just past the scaled client-NIC knee: the
    operating point where the adaptive tier's read coalescing rescues the
    deployment from retry-driven congestion collapse (see
    ``benchmarks/test_hotkey_tier.py`` for the full theta sweep).
    """
    return WorkloadSpec(num_clients=4, concurrency=12, write_ratio=0.1,
                        zipf_theta=0.99, duration=0.1 if quick else 0.2,
                        drain=0.1)


def _skewed_spec(hotkey_tier: bool) -> DeploymentSpec:
    return DeploymentSpec(backend="netchain", store_size=64, value_size=64,
                          seed=SEED, hotkey_tier=hotkey_tier,
                          options={"hotkey_tier": {"hot_threshold": 16}})


def _timed_scenario(spec: DeploymentSpec, workload: WorkloadSpec,
                    calibration_eps: float,
                    checks: ScenarioChecks | None = None,
                    repeats: int = 1) -> dict:
    """Run one scenario and package its timing into report fields.

    Deployment construction is excluded from the timed window (the report
    tracks the *hot path*, not setup), garbage collection is paused during
    it, and ``repeats`` runs keep the best wall clock -- standard timing
    hygiene so the CI gate sees the code's speed, not scheduler noise.
    """
    checks = checks or ScenarioChecks(linearizability=False,
                                      require_progress=False)
    best_wall = None
    result = None
    events = 0
    for _ in range(max(1, repeats)):
        deployment = build_deployment(spec)
        baseline_events = deployment.sim.processed_events
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = run_scenario(spec, workload, checks, deployment=deployment)
            wall = time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()
        events = deployment.sim.processed_events - baseline_events
        if best_wall is None or wall < best_wall:
            best_wall = wall
    eps = events / best_wall if best_wall > 0 else 0.0
    return {
        "backend": spec.backend,
        "seed": spec.seed,
        "processed_events": events,
        "completed_ops": result.completed_ops,
        "wall_clock_s": best_wall,
        "events_per_sec": eps,
        "events_per_sec_calibrated": eps / calibration_eps if calibration_eps else 0.0,
        "sim_qps": result.qps,
    }


def _figure_specs(quick: bool):
    """One representative timed point per figure-style workload."""
    duration = 0.1 if quick else 0.3
    base = dict(num_clients=2, concurrency=4, duration=duration, drain=0.1)
    yield ("fig9a_value_size_128",
           DeploymentSpec(backend="netchain", store_size=64, value_size=128,
                          seed=SEED),
           WorkloadSpec(write_ratio=0.5, **base))
    yield ("fig9c_write_ratio_100",
           DeploymentSpec(backend="netchain", store_size=64, value_size=64,
                          seed=SEED),
           WorkloadSpec(write_ratio=1.0, **base))
    yield ("fig9d_loss_rate_2pct",
           DeploymentSpec(backend="netchain", store_size=64, value_size=64,
                          loss_rate=0.02, seed=SEED),
           WorkloadSpec(write_ratio=0.5, **base))
    # Unlimited capacity removes the scaled throughput ceiling, so event
    # counts explode; a much shorter window keeps the point comparable
    # without dominating the report's runtime.
    yield ("fig9e_latency_unlimited",
           DeploymentSpec(backend="netchain", store_size=64, value_size=64,
                          unlimited_capacity=True, seed=SEED),
           WorkloadSpec(num_clients=2, concurrency=2, write_ratio=0.5,
                        duration=duration / 10, drain=0.02))
    yield ("fig10_failover",
           DeploymentSpec(backend="netchain", store_size=32, value_size=64,
                          seed=SEED, vnodes_per_switch=2,
                          faults=[(duration / 2, "fail_switch", "S1")]),
           WorkloadSpec(write_ratio=0.4, think_time=1e-3, **base))


def _matrix_section(quick: bool, calibration_eps: float) -> dict:
    """Run the scenario matrix through the parallel executor.

    The grid itself is fixed (seeds are offsets of :data:`SEED`), so the
    per-cell replay signatures and their merged digest are
    seed-deterministic and gated exactly; only the wall-clock-derived
    cells/sec varies with the machine and the worker count.
    """
    matrix = default_matrix(seeds=(SEED,) if quick else (SEED, SEED + 1),
                            duration=0.15 if quick else 0.4)
    workers = max(1, min(4, os.cpu_count() or 1))
    report = run_matrix(matrix, workers=workers)
    totals = report["totals"]
    cells_per_sec = totals["cells_per_sec"]
    return {
        "cells": totals["cells"],
        "ok_cells": totals["ok_cells"],
        "workers": report["workers"],
        "completed_ops": totals["completed_ops"],
        "wall_clock_s": totals["wall_clock_s"],
        "cells_per_sec": cells_per_sec,
        "cells_per_sec_calibrated":
            cells_per_sec / calibration_eps if calibration_eps else 0.0,
        "signature_sha256": report["signature_sha256"],
        "peak_rss_bytes": totals["peak_rss_bytes"],
    }


def _verify_section(quick: bool, calibration_eps: float) -> dict:
    """Run the verification-at-scale harness in a fresh subprocess.

    A subprocess keeps the RSS measurement honest: ru_maxrss is a
    process-lifetime high-water mark, and this harness's own macro
    scenarios would otherwise set it.  The op count here is a tracking
    point, not the full-scale run -- CI's ``verify-at-scale`` job drives
    the ~1M-op version of the same harness.
    """
    ops = 20_000 if quick else 100_000
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        out_path = Path(handle.name)
    try:
        subprocess.run(
            [sys.executable, str(REPO_ROOT / "benchmarks" / "verify_at_scale.py"),
             "--ops", str(ops), "--keys", "256", "--clients", "16",
             "--seed", str(SEED), "-o", str(out_path)],
            check=True, stdout=subprocess.DEVNULL)
        sub = json.loads(out_path.read_text(encoding="utf-8"))
    finally:
        out_path.unlink(missing_ok=True)
    checked_ops_per_sec = sub["verify"]["checked_ops_per_sec"]
    return {
        "ops": ops,
        "record_ops_per_sec": sub["record"]["ops_per_sec"],
        "wall_clock_s": sub["verify"]["wall_clock_s"],
        "checked_ops_per_sec": checked_ops_per_sec,
        "checked_ops_per_sec_calibrated":
            checked_ops_per_sec / calibration_eps if calibration_eps else 0.0,
        "data_bytes": sub["record"]["data_bytes"],
        "ndjson_sha256": sub["record"]["ndjson_sha256"],
        "linearizable": sub["verify"]["linearizable"],
        "peak_rss_bytes": sub["peak_rss_bytes"],
    }


def _observability_section(workload: WorkloadSpec, macro: dict,
                           calibration_eps: float) -> dict:
    """Time the macro scenario with the telemetry plane enabled.

    The spilled ``trace/v1`` artifacts are seed-deterministic, so their
    byte counts and digest are gateable exactly (like ``verify``'s NDJSON
    fingerprint); the wall-clock overhead ratio against the untraced
    macro is calibrated-noise territory and only reported.
    """
    with tempfile.TemporaryDirectory(prefix="perf-trace-") as tmp:
        run_dir = Path(tmp) / "trace-run"
        spec = DeploymentSpec(backend="netchain", store_size=64, value_size=64,
                              seed=SEED, telemetry={"run_dir": str(run_dir)})
        timing = _timed_scenario(spec, workload, calibration_eps)
        digest = hashlib.sha256()
        trace_bytes = 0
        files = {}
        for name in ("spans.ndjson", "metrics.ndjson", "events.ndjson"):
            data = (run_dir / name).read_bytes()
            trace_bytes += len(data)
            files[name] = len(data)
            digest.update(data)
    macro_wall = macro["wall_clock_s"]
    return {
        **timing,
        "trace_bytes": trace_bytes,
        "trace_files": files,
        "trace_sha256": digest.hexdigest(),
        "overhead_ratio": (timing["wall_clock_s"] / macro_wall
                           if macro_wall else 0.0),
    }


def build_report(quick: bool = False) -> dict:
    """Run every benchmark and assemble the report dict."""
    calibration = calibrate(CALIBRATION_EVENTS // (10 if quick else 1))
    calibration_eps = calibration["events_per_sec"]
    workload = _macro_workload(quick)

    macro = _timed_scenario(
        DeploymentSpec(backend="netchain", store_size=64, value_size=64,
                       seed=SEED),
        workload, calibration_eps, repeats=1 if quick else 3)

    # Skewed macro-workload, adaptive hot-key tier off vs on.  sim_qps is
    # simulated (seed-deterministic), so the speedup is bit-stable and
    # gateable; the wall-clock metrics follow the usual calibration rules.
    skewed_workload = _skewed_workload(quick)
    macro_skewed = {
        "tier_off": _timed_scenario(_skewed_spec(False), skewed_workload,
                                    calibration_eps),
        "tier_on": _timed_scenario(_skewed_spec(True), skewed_workload,
                                   calibration_eps),
    }
    off_qps = macro_skewed["tier_off"]["sim_qps"]
    macro_skewed["tier_speedup_sim_qps"] = (
        macro_skewed["tier_on"]["sim_qps"] / off_qps if off_qps else 0.0)

    backends = {}
    for name in available_backends():
        spec = DeploymentSpec(backend=name, store_size=20, value_size=32,
                              seed=SEED)
        backends[name] = _timed_scenario(spec, workload, calibration_eps)

    figures = {}
    for name, spec, figure_workload in _figure_specs(quick):
        timing = _timed_scenario(spec, figure_workload, calibration_eps)
        timing["calibrated_cost"] = timing["wall_clock_s"] * calibration_eps
        figures[name] = timing

    matrix = _matrix_section(quick, calibration_eps)

    verify = _verify_section(quick, calibration_eps)

    observability = _observability_section(workload, macro, calibration_eps)

    return {
        "schema": SCHEMA,
        "generated_by": "benchmarks/perf_report.py",
        "config": {"seed": SEED, "quick": quick},
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "calibration": calibration,
        "macro": macro,
        "macro_skewed": macro_skewed,
        "backends": backends,
        "figures": figures,
        "matrix": matrix,
        "verify": verify,
        "observability": observability,
        "peak_rss_bytes": peak_rss_bytes(),
    }


def summarize(report: dict) -> str:
    """Human-readable summary (also used for the CI step summary)."""
    macro = report["macro"]
    lines = [
        f"# Perf report ({report['schema']})",
        "",
        f"macro ({macro['backend']}, seed {macro['seed']}): "
        f"{macro['events_per_sec']:,.0f} events/sec "
        f"({macro['processed_events']:,} events in {macro['wall_clock_s']:.2f}s, "
        f"{macro['completed_ops']:,} ops)",
        f"calibration: {report['calibration']['events_per_sec']:,.0f} "
        f"engine events/sec; calibrated macro throughput "
        f"{macro['events_per_sec_calibrated']:.3f}",
        f"peak RSS: {report['peak_rss_bytes'] / (1024 * 1024):.0f} MiB",
    ]
    skewed = report.get("macro_skewed")
    if skewed:
        lines.append(
            f"skewed macro (zipf 0.99): tier off "
            f"{skewed['tier_off']['sim_qps']:,.0f} qps, tier on "
            f"{skewed['tier_on']['sim_qps']:,.0f} qps "
            f"({skewed['tier_speedup_sim_qps']:.2f}x)")
    matrix = report.get("matrix")
    if matrix:
        lines.append(
            f"matrix ({matrix['cells']} cells, {matrix['workers']} workers): "
            f"{matrix['ok_cells']}/{matrix['cells']} ok, "
            f"{matrix['completed_ops']:,} ops in {matrix['wall_clock_s']:.1f}s "
            f"({matrix['cells_per_sec']:.2f} cells/sec, calibrated "
            f"{matrix['cells_per_sec_calibrated'] * 1e6:.3f}e-6), "
            f"digest {matrix['signature_sha256'][:12]}")
    verify = report.get("verify")
    if verify:
        lines.append(
            f"verify ({verify['ops']:,} ops spilled): "
            f"{verify['checked_ops_per_sec']:,.0f} checked ops/sec "
            f"(calibrated {verify['checked_ops_per_sec_calibrated']:.3f}), "
            f"pipeline peak RSS "
            f"{verify['peak_rss_bytes'] / (1024 * 1024):.0f} MiB, "
            f"linearizable={verify['linearizable']}")
    observability = report.get("observability")
    if observability:
        lines.append(
            f"observability (traced macro): "
            f"{observability['events_per_sec']:,.0f} events/sec "
            f"(calibrated {observability['events_per_sec_calibrated']:.3f}, "
            f"{observability['overhead_ratio']:.2f}x untraced wall), "
            f"{observability['trace_bytes']:,} trace bytes, "
            f"sha256 {observability['trace_sha256'][:12]}")
    lines += [
        "",
        "| backend | events/sec | calibrated | wall (s) | ops |",
        "|---|---|---|---|---|",
    ]
    for name, entry in sorted(report["backends"].items()):
        lines.append(f"| {name} | {entry['events_per_sec']:,.0f} "
                     f"| {entry['events_per_sec_calibrated']:.3f} "
                     f"| {entry['wall_clock_s']:.2f} "
                     f"| {entry['completed_ops']:,} |")
    lines += ["", "| figure | wall (s) | calibrated cost |", "|---|---|---|"]
    for name, entry in sorted(report["figures"].items()):
        lines.append(f"| {name} | {entry['wall_clock_s']:.2f} "
                     f"| {entry['calibrated_cost']:,.0f} |")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default=str(REPO_ROOT / "BENCH_PR5.json"),
                        help="where to write the JSON report")
    parser.add_argument("--quick", action="store_true",
                        help="shorter workloads (CI smoke / local sanity)")
    parser.add_argument("--summary", action="store_true",
                        help="print the markdown summary to stdout")
    args = parser.parse_args(argv)

    report = build_report(quick=args.quick)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")
    print(f"wrote {output}")
    print(summarize(report) if args.summary else
          f"macro: {report['macro']['events_per_sec']:,.0f} events/sec")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
