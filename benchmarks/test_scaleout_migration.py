"""Migration cost of online scale-out/scale-in.

The elasticity subsystem's operational price is state movement and the
per-virtual-group write freeze.  This benchmark measures two membership
changes on fresh testbed clusters under closed-loop load -- a pure grow
(4 -> 8 switches) and a combined join+leave landing on 6 members -- and
records the cost of each: keys and item-copies moved, migration duration,
effective key-move rate, and the total/max write-freeze windows.

The ``smoke`` marker in the name keeps this in the fast CI benchmark job.
"""

from __future__ import annotations

from bench_utils import full_mode, record_result
from repro.experiments.elasticity import ElasticityTimeline, elasticity_experiment

STORE_SIZE = 200 if not full_mode() else 2000
SYNC_RATE = 20000.0 if not full_mode() else 50000.0


def _row(label: str, timeline: ElasticityTimeline) -> str:
    report = timeline.report
    duration = report.duration() if report is not None else 0.0
    keys_per_sec = timeline.keys_moved / duration if duration > 0 else 0.0
    return (f"{label:>12} | {timeline.groups_migrated:>6} | "
            f"{timeline.keys_moved:>10} | {duration * 1e3:>11.1f} | "
            f"{keys_per_sec:>11.0f} | {timeline.total_freeze_time * 1e3:>12.2f} | "
            f"{timeline.max_freeze_window * 1e3:>12.2f} | "
            f"{timeline.during_drop_fraction() * 100:>7.1f}")


def run_elasticity():
    grow = elasticity_experiment(joins=["S4", "S5", "S6", "S7"],
                                 store_size=STORE_SIZE,
                                 sync_items_per_sec=SYNC_RATE,
                                 migrate_at=1.0, run_after=0.5)
    shrink = elasticity_experiment(joins=["S4", "S5", "S6", "S7"],
                                   leaves=["S1", "S4"],
                                   store_size=STORE_SIZE,
                                   sync_items_per_sec=SYNC_RATE,
                                   migrate_at=1.0, run_after=0.5)
    return grow, shrink


def test_scaleout_migration_cost_smoke(benchmark):
    grow, shrink = benchmark.pedantic(run_elasticity, rounds=1, iterations=1)
    lines = [(f"{'change':>12} | {'groups':>6} | {'keys moved':>10} | "
              f"{'duration ms':>11} | {'keys/s':>11} | {'freeze ms':>12} | "
              f"{'max frz ms':>12} | {'dip %':>7}")]
    lines.append(_row("grow 4->8", grow))
    lines.append(_row("mixed ->6", shrink))
    record_result("scaleout_migration",
                  f"Live migration cost ({STORE_SIZE} keys, "
                  f"sync {SYNC_RATE:.0f} items/s)", lines)

    for timeline in (grow, shrink):
        report = timeline.report
        assert report is not None and report.done
        assert not report.skipped_steps()
        assert timeline.keys_moved > 0
        # The freeze windows stay in the low-millisecond range: growing the
        # cluster never takes a group's writes away for long.
        assert timeline.max_freeze_window < 0.05
        # Availability: the dip while migrating stays small because only
        # one virtual group is frozen at a time.
        assert timeline.during_drop_fraction() < 0.5
    # Scale-out must not lose throughput: post-migration rate is at least
    # the pre-migration rate (more switches, same hosts driving them).
    assert grow.after_qps >= 0.8 * grow.before_qps
