"""Figure 9(d): throughput vs packet loss rate.

Paper result: NetChain(4) keeps ~82 MQPS for loss rates between 0.001% and
1% and still delivers 48 MQPS at 10% loss (UDP queries are simply retried
by clients), while ZooKeeper falls to 50 KQPS at 1% loss and 3 KQPS at 10%
loss because its TCP connections spend their time in retransmission
timeouts.
"""

from __future__ import annotations

from bench_utils import full_mode, record_result
from repro.experiments import netchain_throughput, zookeeper_throughput
from repro.experiments.throughput import zookeeper_loss_degradation

LOSS_RATES = [0.0, 0.0001, 0.01, 0.1] if not full_mode() else [0.0, 1e-5, 1e-4, 1e-3, 1e-2, 0.1]
NETCHAIN_SCALE = 50000.0


def run_sweep():
    # ZooKeeper's number at each loss rate composes its loss-free
    # (capacity-bound) throughput with the per-connection degradation factor
    # caused by TCP retransmission stalls -- see
    # repro.experiments.throughput.zookeeper_loss_degradation for why the
    # two regimes are measured separately under the scale model.
    zk_baseline = zookeeper_throughput(num_clients=60, store_size=1000, value_size=64,
                                       write_ratio=0.01, scale=1000.0,
                                       duration=1.5, warmup=0.5)
    zk_factors = zookeeper_loss_degradation(LOSS_RATES, num_clients=10,
                                            duration=0.6, warmup=0.2)
    rows = []
    for loss_rate in LOSS_RATES:
        netchain = netchain_throughput(num_servers=4, store_size=1000, value_size=64,
                                       write_ratio=0.01, loss_rate=loss_rate,
                                       scale=NETCHAIN_SCALE, duration=0.4, warmup=0.1,
                                       concurrency=64)
        rows.append({"loss_rate": loss_rate, "netchain_4": netchain.mqps,
                     "zookeeper": zk_baseline.kqps * zk_factors[loss_rate]})
    return rows


def test_fig9d_throughput_vs_loss_rate(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [f"{'loss rate':>10} | {'NetChain(4) MQPS':>16} | {'ZooKeeper KQPS':>14}"]
    for row in rows:
        lines.append(f"{row['loss_rate']:>10.4%} | {row['netchain_4']:>16.1f} | "
                     f"{row['zookeeper']:>14.1f}")
    record_result("fig9d_loss_rate", "Figure 9(d): throughput vs packet loss rate", lines)

    by_loss = {row["loss_rate"]: row for row in rows}
    clean = by_loss[0.0]
    heavy = by_loss[0.1]
    # NetChain degrades gracefully: at 10% per-switch loss it retains a large
    # fraction of its loss-free throughput (paper: 48 of 82 MQPS).
    assert heavy["netchain_4"] > 0.4 * clean["netchain_4"]
    # Small loss rates barely affect NetChain.
    assert by_loss[0.0001]["netchain_4"] > 0.85 * clean["netchain_4"]
    # ZooKeeper collapses by an order of magnitude or more at 10% loss.
    assert heavy["zookeeper"] < 0.25 * clean["zookeeper"]
    # The gap between the systems widens under loss.
    assert heavy["netchain_4"] * 1e3 > 200 * heavy["zookeeper"]
