"""Ablation benchmarks for the design choices DESIGN.md calls out.

These do not correspond to a numbered figure; they quantify the paper's
design arguments on the same simulated substrate:

* **Chain replication vs primary-backup** (Section 2.2): a write costs
  n+1 messages on a chain versus 2n with primary-backup, and the switch
  needs no per-query bookkeeping.
* **In-network vs server-hosted chain replication** (Section 2.1): moving
  the same chain protocol from servers into switches removes the per-hop
  host stack and drops query latency by an order of magnitude.
* **Sequence-number ordering** (Section 4.3): disabling the ordering check
  (an ablated switch program) lets reordered writes leave replicas
  inconsistent, which the shipped protocol never does.

Every deployment is built through the declarative backend registry
(:mod:`repro.deploy`), so the three systems under comparison differ only
in the spec's ``backend`` field.
"""

from __future__ import annotations

import random

from bench_utils import record_result
from repro.core.protocol import QueryStatus
from repro.deploy import DeploymentSpec, build_deployment
from repro.netsim.link import LinkConfig
from repro.netsim.switch import PipelineAction

#: The per-hop host stack of the server-hosted baselines in this ablation.
SERVER_STACK_DELAY = 40e-6


def make_netchain(seed: int = 0):
    """A small testbed deployment (mirrors the unit-test helper)."""
    return build_deployment(DeploymentSpec(
        backend="netchain", store_slots=2048, vnodes_per_switch=4, seed=seed))


def make_server_baseline(backend: str, seed: int = 0):
    """A server-hosted baseline: 3 replicas + 1 client host, kernel stacks."""
    return build_deployment(DeploymentSpec(
        backend=backend, replication=3, num_hosts=4, seed=seed,
        options={"stack_delay": SERVER_STACK_DELAY}))


def test_ablation_chain_vs_primary_backup_messages(benchmark):
    def run():
        chain = make_server_baseline("server-chain")
        pb = make_server_baseline("primary-backup")
        chain_client = chain.clients(1)[0]
        pb_client = pb.clients(1)[0]
        chain_latency = sum(chain_client.write("k", b"v").result().latency
                            for _ in range(20)) / 20
        pb_latency = sum(pb_client.write("k", b"v").result().latency
                         for _ in range(20)) / 20
        return {
            "chain_messages": chain.cluster.messages_per_write(),
            "pb_messages": pb.cluster.messages_per_write(),
            "chain_latency_us": chain_latency * 1e6,
            "pb_latency_us": pb_latency * 1e6,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"messages per write  : chain replication {result['chain_messages']}  "
        f"primary-backup {result['pb_messages']}",
        f"write latency (us)  : chain replication {result['chain_latency_us']:.1f}  "
        f"primary-backup {result['pb_latency_us']:.1f}",
    ]
    record_result("ablation_chain_vs_pb", "Ablation: chain replication vs primary-backup",
                  lines)
    assert result["chain_messages"] < result["pb_messages"]


def test_ablation_in_network_vs_server_chain_latency(benchmark):
    def run():
        # Server-hosted chain replication over kernel-TCP hosts.
        server_chain = make_server_baseline("server-chain")
        client = server_chain.clients(1)[0]
        server_latency = sum(client.write(f"k{i}", b"v").result().latency
                             for i in range(20)) / 20
        # The same chain inside the switches, DPDK client.
        deployment = make_netchain()
        deployment.cluster.populate(20)
        agent = deployment.clients(1)[0]
        netchain_samples = []
        for i in range(20):
            netchain_samples.append(agent.write_sync(f"k{i:08d}", b"v").latency)
            # Per-query latency on an idle client: let the scaled NIC finish
            # serializing this query before issuing the next.
            deployment.run(until=deployment.sim.now + 1e-3)
        netchain_latency = sum(netchain_samples) / len(netchain_samples)
        return {"server_us": server_latency * 1e6, "netchain_us": netchain_latency * 1e6}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"server-hosted chain write latency : {result['server_us']:.1f} us",
        f"in-network chain write latency    : {result['netchain_us']:.1f} us",
        f"speedup                            : {result['server_us'] / result['netchain_us']:.1f}x",
    ]
    record_result("ablation_in_network", "Ablation: in-network vs server chain replication",
                  lines)
    assert result["netchain_us"] * 5 < result["server_us"]


def test_ablation_sequence_numbers_prevent_inconsistency(benchmark):
    """Disable the version check (Algorithm 1 lines 10-13) and show replicas
    diverge under reordering, while the real protocol stays consistent."""

    def run():
        outcomes = {}
        for ordered in (True, False):
            cluster = make_netchain(seed=7).cluster
            # Aggressive reordering between hops: far larger than the ~50 us
            # spacing at which the (scaled) client emits writes.
            for link in cluster.topology.links:
                link.config = LinkConfig(delay=200e-9, reorder_jitter=400e-6)
            keys = [f"key{i}" for i in range(4)]
            cluster.controller.populate(keys)
            if not ordered:
                # Ablation: replicas apply every write regardless of its
                # version, i.e. Algorithm 1 without lines 10-13.
                for program in cluster.controller.programs.values():
                    if program.kvstore is None:
                        continue

                    def process_write_no_check(switch, packet, header, loc,
                                               prog=program):
                        stored = prog.kvstore.read_loc(loc)
                        if header.seq == 0 and header.session == 0:
                            header.session = stored.session
                            header.seq = stored.seq + 1
                        prog.kvstore.write_loc(loc, header.value, header.seq,
                                               header.session)
                        if header.chain:
                            packet.ip.dst_ip = header.chain.pop(0)
                            return PipelineAction.FORWARD
                        prog._make_reply(switch, packet, header, QueryStatus.OK)
                        return PipelineAction.FORWARD

                    program._process_write = process_write_no_check
            agents = cluster.agent_list()
            rng = random.Random(3)
            for i in range(150):
                agent = agents[rng.randrange(len(agents))]
                agent.write(rng.choice(keys), f"v{i}")
            cluster.run(until=cluster.sim.now + 0.3)
            divergent = 0
            for key in keys:
                chain = cluster.controller.chain_for_key(key).switches
                stores = [cluster.controller.stores[s] for s in chain]
                values = {store.read(key).value for store in stores}
                if len(values) > 1:
                    divergent += 1
            outcomes["with ordering" if ordered else "without ordering"] = divergent
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"keys with divergent replicas ({label}): {count}"
             for label, count in outcomes.items()]
    record_result("ablation_sequence_numbers",
                  "Ablation: sequence-number ordering under reordering", lines)
    assert outcomes["with ordering"] == 0
    assert outcomes["without ordering"] >= outcomes["with ordering"]
